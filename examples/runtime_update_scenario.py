#!/usr/bin/env python
"""Runtime update scenario: a day of tenant churn through the SFC controller.

20 tenants are admitted from a 50-candidate pool; over several epochs some
leave, new ones arrive, and one tenant modifies its chain in place.  The
controller screens every request (admission control), keeps survivors
untouched, installs each accepted chain on the behavioural data plane with
two-phase make-before-break updates, and a drift threshold triggers a full
reconfiguration when incremental churn wastes too much backplane bandwidth.
The script ends by checking the controller's incremental resource accounting
against a from-scratch recomputation — the churn invariant.

Run:  python examples/runtime_update_scenario.py
"""

import numpy as np

from repro.controller import SfcController
from repro.core.state import PipelineState
from repro.core.verify import check_placement
from repro.experiments.config import PAPER_SWITCH
from repro.traffic import WorkloadConfig, make_instance


def main() -> None:
    rng = np.random.default_rng(2022)
    config = WorkloadConfig(num_sfcs=50, num_types=10, avg_chain_length=5)
    instance = make_instance(config, switch=PAPER_SWITCH, max_recirculations=2, rng=rng)
    candidates = list(instance.sfcs)

    controller = SfcController.for_instance(instance, reconfigure_threshold=0.25)

    # Epoch 0: only the first 20 tenants exist yet.
    controller.admit_many(candidates[:20])
    controller.install_catalog()
    print(f"epoch 0: {len(controller.tenants)} tenants admitted, "
          f"objective {controller.placement.objective:.0f}")

    arrivals = iter(candidates[20:])
    for epoch in range(1, 6):
        # A few tenants leave...
        live = sorted(controller.tenants)
        leavers = [int(t) for t in rng.choice(live, size=min(3, len(live)), replace=False)]
        for t in leavers:
            controller.evict(t)
        # ...and a few new ones arrive (some may be refused admission).
        added = []
        for sfc in (next(arrivals) for _ in range(4)):
            result = controller.admit(sfc)
            if result.ok:
                added.append(result.tenant_id)
        reconfigured = controller.maybe_reconfigure()
        placement = controller.placement
        assert check_placement(placement, require_all_types=False) == []
        flag = " [full reconfiguration]" if reconfigured else ""
        print(
            f"epoch {epoch}: -{leavers} +{added} -> "
            f"{len(controller.tenants)} tenants, objective {placement.objective:.0f}, "
            f"backplane {placement.backplane_gbps:.0f}/{PAPER_SWITCH.capacity_gbps:.0f} Gbps{flag}"
        )

    # One tenant renegotiates its chain: a hitless make-before-break swap.
    victim = sorted(controller.tenants)[0]
    new_chain = controller.tenants[victim].sfc
    new_chain = type(new_chain)(
        name=f"{new_chain.name}-v2",
        nf_types=tuple(reversed(new_chain.nf_types)),
        rules=tuple(reversed(new_chain.rules)),
        bandwidth_gbps=new_chain.bandwidth_gbps,
        tenant_id=victim,
    )
    result = controller.modify(victim, new_chain)
    print(f"tenant {victim} modified its chain: ok={result.ok}, "
          f"hitless={result.hitless}, rules +{result.rules_added}/-{result.rules_deleted}")

    # The churn invariant: incremental accounting == from-scratch recompute.
    reference = PipelineState.from_placement(
        controller.placement,
        reserve_physical_block=controller.reserve_physical_block,
    )
    ok = (
        np.array_equal(controller.state.entries, reference.entries)
        and np.array_equal(controller.state.nf_blocks, reference.nf_blocks)
        and controller.state.backplane_gbps == reference.backplane_gbps
    )
    assert ok
    print(f"invariant {'OK' if ok else 'VIOLATED'}: incremental accounting "
          f"matches a from-scratch recomputation bit for bit")


if __name__ == "__main__":
    main()
