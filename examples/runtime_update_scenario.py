#!/usr/bin/env python
"""Runtime update scenario (§V-E): a day of tenant churn on one switch.

20 tenants are allocated from a 50-candidate pool; over several epochs some
leave, new ones arrive, and one tenant modifies its chain.  The updater keeps
survivors untouched, re-fills freed resources, and a drift threshold triggers
a full reconfiguration when the incremental placement falls too far behind a
fresh global solve.

Run:  python examples/runtime_update_scenario.py
"""

import numpy as np

from repro.core import RuntimeUpdater, check_placement, greedy_place
from repro.experiments.config import PAPER_SWITCH
from repro.traffic import WorkloadConfig, make_instance


def main() -> None:
    rng = np.random.default_rng(2022)
    config = WorkloadConfig(num_sfcs=50, num_types=10, avg_chain_length=5)
    instance = make_instance(config, switch=PAPER_SWITCH, max_recirculations=2, rng=rng)

    # Initial allocation: only the first 20 tenants exist yet.
    initial = set(range(20))
    origin = greedy_place(instance, skip=set(range(50)) - initial)
    print(f"epoch 0: {origin} (objective {origin.objective:.0f})")

    updater = RuntimeUpdater(
        origin,
        reconfigure_threshold=0.25,
        reference_solver=lambda inst: greedy_place(inst),
    )

    arrivals = iter(range(20, 50))
    for epoch in range(1, 6):
        # A few tenants leave...
        placed = list(updater.placement.assignments)
        leavers = [int(l) for l in rng.choice(placed, size=min(3, len(placed)), replace=False)]
        updater.remove(leavers)
        # ...and a few new ones arrive.
        new = [next(arrivals) for _ in range(4)]
        result = updater.admit(candidates=set(updater.placement.assignments) | set(new) | set(placed))
        placement = updater.placement
        assert check_placement(placement) == []
        flag = " [full reconfiguration]" if result.reconfigured else ""
        print(
            f"epoch {epoch}: -{leavers} +{result.added} -> "
            f"{placement.num_placed} placed, objective {placement.objective:.0f}, "
            f"backplane {placement.backplane_gbps:.0f}/{PAPER_SWITCH.capacity_gbps:.0f} Gbps{flag}"
        )

    # One tenant adjusts its chain: modeled as departure + arrival (§V-E).
    victim = next(iter(updater.placement.assignments))
    result = updater.modify(victim, victim)
    print(f"tenant {victim} modified its chain: removed={result.removed}, "
          f"re-admitted={result.added}")
    assert check_placement(updater.placement) == []


if __name__ == "__main__":
    main()
