#!/usr/bin/env python
"""Multi-tenant data plane walkthrough (the paper's §IV / Fig. 3 scenario).

Builds a 3-stage pipeline hosting physical NFs (firewall, traffic
classifier, load balancer), then installs two tenants' logical SFCs:

* tenant 1: FW -> TC -> LB  — matches the physical order, fits one pass,
* tenant 2: FW -> LB -> TC  — out of order, folds into two passes with the
  last NF of pass 1 setting the REC argument.

Sends both tenants' traffic and shows isolation: each tenant's packets are
processed only by its own rules (tenant 2's firewall deny does not affect
tenant 1), and recirculation happens exactly for tenant 2.

Run:  python examples/multi_tenant_dataplane.py
"""

from repro.core.spec import SwitchSpec
from repro.dataplane import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.nfs import install_physical_nf


def wildcard(action: str, **params) -> TableEntry:
    """A tenant-wide rule matching all of the tenant's traffic."""
    return TableEntry(match={}, action=action, params=params)


def main() -> None:
    # --- boot: physical pipeline (static) ----------------------------
    spec = SwitchSpec(stages=3, blocks_per_stage=8)
    pipeline = SwitchPipeline(spec=spec, max_passes=3)
    for stage, nf in enumerate(("firewall", "traffic_classifier", "load_balancer")):
        install_physical_nf(pipeline, nf, stage)
    print(f"booted: {pipeline}")
    virtualizer = SFCVirtualizer(pipeline)

    # --- tenant 1: FW -> TC -> LB (physical order, single pass) ---------
    tenant1 = LogicalSFC(
        tenant_id=1,
        nfs=(
            LogicalNF("firewall", (wildcard("permit"),)),
            LogicalNF("traffic_classifier", (wildcard("set_dscp", dscp=46),)),
            LogicalNF("load_balancer", (wildcard("set_dst", dst_ip=0x0AC80001),)),
        ),
    )
    record1 = virtualizer.install_sfc(tenant1)
    print(f"tenant 1 installed at virtual stages {record1.assignment} "
          f"({virtualizer.tenant_passes(1)} pass(es))")

    # --- tenant 2: FW -> LB -> TC; TC must wait for pass 2 --------------
    tenant2 = LogicalSFC(
        tenant_id=2,
        nfs=(
            LogicalNF("firewall", (
                # Deny tenant 2's TCP port-23 traffic, permit the rest.
                TableEntry(match={"dst_port": (23, 23)}, action="drop", priority=10),
                wildcard("permit"),
            )),
            LogicalNF("load_balancer", (wildcard("set_dst", dst_ip=0x0AC80002),)),
            LogicalNF("traffic_classifier", (wildcard("set_dscp", dscp=10),)),
        ),
    )
    record2 = virtualizer.install_sfc(tenant2)
    print(f"tenant 2 installed at virtual stages {record2.assignment} "
          f"({virtualizer.tenant_passes(2)} pass(es))")

    # --- traffic ---------------------------------------------------------
    from repro.dataplane.packet import Packet

    web1 = Packet(tenant_id=1, dst_port=80)
    web2 = Packet(tenant_id=2, dst_port=80)
    telnet2 = Packet(tenant_id=2, dst_port=23)

    for name, packet in (("t1 web", web1), ("t2 web", web2), ("t2 telnet", telnet2)):
        result = pipeline.process(packet, trace=True)
        applied = ", ".join(
            f"p{p}:{t.split('@')[0]}" for (p, _s, t, a) in result.trace if a != "no_op"
        )
        print(f"{name:10} delivered={result.delivered!s:5} "
              f"passes={result.passes} dscp={packet.dscp:2d} "
              f"dst={packet.dst_ip:#010x} | {applied}")

    # Isolation checks.
    assert web1.dscp == 46 and web2.dscp == 10, "DSCP marks are per-tenant"
    assert web1.dst_ip != web2.dst_ip, "LB pools are per-tenant"
    assert not web1.dropped and telnet2.dropped, "tenant 2's ACL is isolated"
    assert pipeline.process(Packet(tenant_id=1, dst_port=80)).passes == 1
    assert pipeline.process(Packet(tenant_id=2, dst_port=80)).passes == 2

    # --- tenant departure -------------------------------------------------
    virtualizer.uninstall_sfc(2)
    survivor = pipeline.process(Packet(tenant_id=1, dst_port=80))
    leftover = pipeline.process(Packet(tenant_id=2, dst_port=80))
    print(f"after tenant 2 leaves: t1 dscp still set "
          f"({survivor.packet.dscp}), t2 traffic untouched "
          f"(passes={leftover.passes}, dscp={leftover.packet.dscp})")
    assert survivor.packet.dscp == 46
    assert leftover.passes == 1 and leftover.packet.dscp == 0


if __name__ == "__main__":
    main()
