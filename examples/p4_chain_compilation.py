#!/usr/bin/env python
"""P4 chain compilation (§II-B / Fig. 2): compose NF programs, analyze table
dependencies, and pack tables into pipeline stages.

The load balancer is the interesting case: per Fig. 2 it is three tables
(tab_lb, tab_lbhash, tab_lbselect) where the hash table writes metadata the
select table matches on — a match dependency forcing consecutive stages — so
the LB "NF" spans multiple stages (what the placement model calls sub-NFs).

Run:  python examples/p4_chain_compilation.py
"""

from repro.nfs import get_nf
from repro.p4 import allocate_stages, build_dependency_graph, chain_program
from repro.p4.allocate import nf_stage_spans
from repro.p4.dependency import critical_path_stages


def main() -> None:
    chain = [get_nf(n) for n in ("firewall", "traffic_classifier", "load_balancer", "router")]
    program = chain_program(chain, name="fig2_sfc")
    tables = program.tables()
    print(f"program {program.name!r}: {len(tables)} logical tables")
    for t in tables:
        print(f"  {t.name:24} reads={list(t.reads)} writes={list(t.writes)}")

    graph = build_dependency_graph(program)
    print(f"\ndependencies ({graph.number_of_edges()} edges):")
    for u, v, data in graph.edges(data=True):
        print(f"  {u} -> {v}  [{data['kind'].value}, min_gap={data['min_gap']}]")
    print(f"critical path needs {critical_path_stages(graph)} stage(s)")

    allocation = allocate_stages(program, num_stages=12, tables_per_stage=4)
    print(f"\nallocation uses {allocation.num_stages_used} of 12 stages:")
    for stage, names in sorted(allocation.tables_by_stage().items()):
        print(f"  stage {stage}: {names}")
    spans = nf_stage_spans(program, allocation)
    print(f"NF stage spans: {spans}")
    lb_span = allocation.span("nf2_")
    print(f"the load balancer spans {lb_span} stages -> the placement model "
          f"treats it as {lb_span} sub-NFs")

    # And emit the actual P4-14 source for the virtualized chain (§VI-A's
    # proof-of-concept implementation).
    from repro.p4 import generate_p4

    source = generate_p4(chain, program_name="fig2_sfc")
    tables = source.count("table tab_")
    print(f"\ngenerated {len(source.splitlines())} lines of P4-14 "
          f"({tables} tables incl. the recirculation gate); excerpt:")
    start = source.index("table tab_firewall")
    print("\n".join(source[start:].splitlines()[:12]))


if __name__ == "__main__":
    main()
