#!/usr/bin/env python
"""Server-resource savings from switch offload (the paper's motivation, §I /
Fig. 1 and the objective of Eq. 1).

Places a rack's SFC candidates with SFP, then prices what the *offloaded*
chains would have cost on servers using the DPDK baseline's measured
footprint (16+1 cores, 722 MB per 4-NF chain at 100 Gbps; scaled by chain
length and bandwidth), and what the *residual* (unplaced) chains still cost.

Run:  python examples/offload_savings.py
"""

from repro.baseline import DpdkChainModel, ServerSpec
from repro.core import check_placement, solve_with_rounding
from repro.traffic import WorkloadConfig, make_instance


def server_cost(chain_length: int, bandwidth_gbps: float, packet_bytes: int = 256):
    """Cores and memory a software deployment of this chain needs.

    The DPDK baseline sustains ``max_pps`` with 16 workers; a chain needing
    a fraction of that packet rate needs the proportional share of workers
    (rounded up to whole cores), plus the master core, plus memory scaled
    by chain length.
    """
    import math

    from repro import units

    reference = DpdkChainModel(chain_length=chain_length)
    needed_pps = units.gbps_to_pps(bandwidth_gbps, packet_bytes)
    share = needed_pps / reference.max_pps
    cores = math.ceil(share * reference.server.worker_cores) + 1
    memory_mb = reference.server.sfc_memory_mb * chain_length / 4.0
    return cores, memory_mb


def main() -> None:
    instance = make_instance(
        WorkloadConfig(num_sfcs=30), max_recirculations=2, rng=2022
    )
    placement = solve_with_rounding(instance, rng=5).placement
    assert check_placement(placement) == []

    offloaded_cores = offloaded_mem = 0.0
    residual_cores = residual_mem = 0.0
    for l, sfc in enumerate(instance.sfcs):
        cores, memory = server_cost(sfc.length, sfc.bandwidth_gbps)
        if l in placement.assignments:
            offloaded_cores += cores
            offloaded_mem += memory
        else:
            residual_cores += cores
            residual_mem += memory

    total_cores = offloaded_cores + residual_cores
    server = ServerSpec()
    print(f"candidates: {instance.num_sfcs} SFCs; placed on switch: "
          f"{placement.num_placed} (objective {placement.objective:.0f})")
    print(f"server cost if everything ran in software: "
          f"{total_cores:.0f} cores, {offloaded_mem + residual_mem:.0f} MB")
    print(f"freed by SFP offload: {offloaded_cores:.0f} cores "
          f"({offloaded_cores / total_cores:.0%}), {offloaded_mem:.0f} MB")
    print(f"  = {offloaded_cores / server.total_cores:.1f} whole "
          f"{server.total_cores}-core servers returned to the revenue pool")
    print(f"still on servers: {residual_cores:.0f} cores for "
          f"{instance.num_sfcs - placement.num_placed} residual chains "
          f"(§VII: non-offloadable NFs stay as VNFs)")


if __name__ == "__main__":
    main()
