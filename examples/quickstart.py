#!/usr/bin/env python
"""Quickstart: synthesize a tenant workload, place it on the switch with all
three control-plane algorithms, and compare.

Run:  python examples/quickstart.py
"""

from repro.core import check_placement, greedy_place, solve_with_rounding
from repro.core.ilp import solve_ilp
from repro.traffic import WorkloadConfig, make_instance


def main() -> None:
    # A rack's worth of tenants: 15 chains over the 10-NF provider catalog,
    # on the paper's default switch (8 stages x 20 blocks, 400 Gbps).
    config = WorkloadConfig(num_sfcs=15, num_types=10, avg_chain_length=5)
    instance = make_instance(config, max_recirculations=2, rng=42)
    print(f"instance: {instance.num_sfcs} SFCs, {instance.num_types} NF types, "
          f"K={instance.virtual_stages} virtual stages")
    for sfc in instance.sfcs[:3]:
        print(f"  {sfc.name}: types={sfc.nf_types} rules={sfc.rules} "
              f"T={sfc.bandwidth_gbps:.1f} Gbps")
    print("  ...")

    # 1. The exact joint ILP (§V-A) — optimal but slow at scale.
    ilp = solve_ilp(instance, time_limit=60.0)
    # 2. LP relaxation + randomized rounding (§V-B, Algorithm 1) — near-
    #    optimal in polynomial time ("SFP-Appro.").
    appro = solve_with_rounding(instance, rng=7)
    # 3. The greedy baseline (§V-D, Algorithm 2) — fastest, least optimal.
    greedy = greedy_place(instance)

    print(f"\n{'algorithm':>10} {'objective':>10} {'placed':>7} "
          f"{'backplane':>10} {'blocks/stage':>13} {'time':>8}")
    for name, placement in (
        ("ILP", ilp),
        ("Appro", appro.placement),
        ("greedy", greedy),
    ):
        assert check_placement(placement) == [], f"{name} infeasible!"
        print(f"{name:>10} {placement.objective:10.1f} "
              f"{placement.num_placed:7d} {placement.backplane_gbps:9.1f}G "
              f"{placement.block_utilization:13.1f} "
              f"{placement.solve_seconds:7.2f}s")
    print(f"\nLP upper bound for Appro: {appro.lp_objective:.1f} "
          f"(gap {appro.gap:.1%})")


if __name__ == "__main__":
    main()
