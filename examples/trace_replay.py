#!/usr/bin/env python
"""Trace-driven measurement (the §VI-B methodology without a testbed).

Synthesizes a two-tenant packet trace at a target offered load, deploys both
tenants' SFCs on the pipeline (one in physical order, one folded), replays
the trace, and reports the Fig. 4/5-style statistics: delivery, achieved
throughput, and latency percentiles — including the recirculation latency
penalty the folded tenant pays.

Run:  python examples/trace_replay.py
"""

from repro.core.spec import SwitchSpec
from repro.dataplane import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.nfs import install_physical_nf
from repro.traffic import Trace, replay, trace_from_generator


def wildcard(action="permit", **params):
    return TableEntry(match={}, action=action, params=params)


def main() -> None:
    pipeline = SwitchPipeline(
        spec=SwitchSpec(stages=3, blocks_per_stage=8), max_passes=3
    )
    for stage, nf in enumerate(("firewall", "traffic_classifier", "load_balancer")):
        install_physical_nf(pipeline, nf, stage)
    virtualizer = SFCVirtualizer(pipeline)
    # Tenant 1: in-order chain, single pass.
    virtualizer.install_sfc(
        LogicalSFC(
            tenant_id=1,
            nfs=(
                LogicalNF("firewall", (wildcard(),)),
                LogicalNF("load_balancer", (wildcard("set_dst", dst_ip=0x0AC80001),)),
            ),
        )
    )
    # Tenant 2: folded chain (LB before FW), two passes.
    virtualizer.install_sfc(
        LogicalSFC(
            tenant_id=2,
            nfs=(
                LogicalNF("load_balancer", (wildcard("set_dst", dst_ip=0x0AC80002),)),
                LogicalNF("firewall", (wildcard(),)),
            ),
        )
    )
    print(f"tenant 1 passes: {virtualizer.tenant_passes(1)}, "
          f"tenant 2 passes: {virtualizer.tenant_passes(2)}")

    trace = trace_from_generator(
        {1: 16, 2: 16}, offered_gbps=40.0, duration_ms=0.5, size_bytes=256, rng=7
    )
    print(f"trace: {len(trace)} packets over {trace.duration_ns / 1e6:.2f} ms "
          f"({trace.offered_gbps():.1f} Gbps offered)")

    stats = replay(trace, pipeline)
    print(f"replay: {stats.delivered}/{stats.packets} delivered "
          f"({stats.delivery_ratio:.1%}), {stats.recirculated} recirculated")
    print(f"achieved {stats.achieved_gbps:.1f} Gbps (payload), latency "
          f"mean {stats.latency_ns_mean:.0f} ns, p50 {stats.latency_ns_p50:.0f}, "
          f"p99 {stats.latency_ns_p99:.0f}")

    # Per-tenant split shows the recirculation penalty.
    for tenant in (1, 2):
        sub = Trace([r for r in trace if r.tenant_id == tenant])
        tstats = replay(sub, pipeline)
        print(f"  tenant {tenant}: mean latency {tstats.latency_ns_mean:.0f} ns "
              f"({tstats.recirculated} recirculated)")

    # Persist + reload round-trip (the dataset artifact workflow).
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tenant_trace.jsonl"
        trace.save(path)
        again = Trace.load(path)
        assert again.records == trace.records
        print(f"trace round-tripped through {path.name} "
              f"({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
