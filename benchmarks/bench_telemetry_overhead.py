#!/usr/bin/env python
"""Telemetry overhead benchmark: what do the hooks cost when off / sampled?

The dataplane hot path (``SwitchPipeline.process_batch``) is timed under
four telemetry configurations:

* ``off``      — no collector attached (the baseline).
* ``idle``     — a :class:`PostcardCollector` attached with
  ``sample_every=0``: the hook is armed but never samples.  This is the
  "telemetry fully off" configuration whose cost must stay **under 1%**.
* ``sampled``  — 1-in-64 deterministic sampling, the production setting;
  overhead must stay **under 10%**.
* ``full``     — every packet sampled (``sample_every=1``), reported for
  scale but not asserted (tracing everything is a debugging mode).

The control plane is timed separately: a synthesized churn replay with a
:class:`Tracer` + :class:`FlightRecorder` wired through the controller vs.
the same replay untraced (reported; spans are microseconds against
millisecond-scale ops).

Methodology: modes are *interleaved* — every repetition times all modes
back to back on freshly generated packets, so all four see the same
machine conditions.  The reported ``overhead_pct`` compares each mode's
best (minimum) time against the ``off`` best: with enough repetitions
both minimums converge to the true floor, so their ratio is the real
overhead.  The assertion additionally accepts the **median paired
ratio** (``overhead_paired_pct``): each repetition yields one
mode-vs-adjacent-``off`` ratio, and the median across repetitions is
robust to scheduler noise that poisons a minority of runs — either
estimator under the bar passes.  (An earlier revision took the *minimum*
paired ratio, which is biased low — the minimum of noisy ratios
systematically lands below 1.0, reporting impossible negative overheads
of -30% and worse; the median is a consistent estimator and agrees in
sign with the best-of floors.)  On a failed check, the CI guard
re-measures with doubled repetitions before declaring a failure, since a
loaded runner can poison a whole measurement.

``--fastpath`` attaches the compiled dataplane fast path
(:mod:`repro.fastpath`) to the benched pipeline before timing, so the
same four telemetry modes are measured over the columnar kernels.  This
mode is report-only: sampled packets deliberately route through the
interpreter to keep postcards bit-exact, so "sampling overhead" against
a compiled baseline measures the interpreter gap, not the hooks — the
<1%/<10% bars only apply to the interpreted path.

Run directly (no pytest needed):

    python benchmarks/bench_telemetry_overhead.py            # full run + JSON
    python benchmarks/bench_telemetry_overhead.py --smoke    # CI guard
    python benchmarks/bench_telemetry_overhead.py --fastpath # compiled path
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.telemetry import FlightRecorder, PostcardCollector, Timer, Tracer

#: (mode name, sample_every or None for "no collector attached").
MODES = (
    ("off", None),
    ("idle", 0),
    ("sampled", 64),
    ("full", 1),
)


def make_batch(num_packets: int, seed: int):
    """Fresh packets for one timed run (processing mutates them, so each
    measurement gets its own batch, generated outside the timer)."""
    from repro.traffic.flows import FlowGenerator

    gen = FlowGenerator(seed)
    flows = gen.flows(64, tenant_id=1)
    return gen.packets(flows, num_packets, size_bytes=64)


def bench_dataplane(
    num_packets: int,
    reps: int,
    seed: int,
    fastpath: bool = False,
    fastpath_backend: str = "auto",
) -> dict:
    """Best-of-``reps`` ``process_batch`` wall time per telemetry mode,
    interleaved so every mode sees the same machine conditions."""
    from statistics import median

    from repro.experiments.fig4_throughput import build_demo_pipeline

    pipeline, _virt = build_demo_pipeline(seed=seed)
    backend = None
    if fastpath:
        from repro.fastpath import FastPathEngine

        engine = FastPathEngine.attach(pipeline, backend=fastpath_backend)
        backend = engine.backend
        # Warm the plan cache so no timed run pays the one-off compile.
        pipeline.process_batch(make_batch(64, seed))
    best: dict[str, float] = {name: float("inf") for name, _ in MODES}
    ratios: dict[str, list[float]] = {
        name: [] for name, _ in MODES if name != "off"
    }
    for rep in range(reps):
        times: dict[str, float] = {}
        for name, sample_every in MODES:
            batch = make_batch(num_packets, seed + rep)
            if sample_every is None:
                pipeline.telemetry = None
            else:
                pipeline.telemetry = PostcardCollector(sample_every=sample_every)
            with Timer() as timer:
                pipeline.process_batch(batch)
            times[name] = timer.elapsed_s
            best[name] = min(best[name], timer.elapsed_s)
        for name in ratios:
            ratios[name].append(times[name] / times["off"])
    pipeline.telemetry = None
    base = best["off"]
    return {
        "num_packets": num_packets,
        "reps": reps,
        "fastpath": fastpath,
        "fastpath_backend": backend,
        "packets_per_sec": {
            name: round(num_packets / t, 1) for name, t in best.items()
        },
        "overhead_pct": {
            name: round(100.0 * (t - base) / base, 2)
            for name, t in best.items()
            if name != "off"
        },
        # Median of the per-repetition paired ratios: consistent where the
        # old min-of-ratios was biased negative (see module docstring).
        "overhead_paired_pct": {
            name: round(100.0 * (median(series) - 1.0), 2)
            for name, series in ratios.items()
        },
    }


def bench_control_plane(duration_s: float, reps: int, seed: int) -> dict:
    """Churn replay wall time, untraced vs. fully traced (tracer + flight
    recorder wired through the controller and installer)."""
    from repro.controller import (
        ChurnConfig,
        ChurnEngine,
        SfcController,
        synthesize_churn,
    )
    from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
    from repro.traffic.workload import make_instance

    from dataclasses import replace

    workload = replace(PAPER_WORKLOAD, num_sfcs=0)
    config = ChurnConfig(duration_s=duration_s, workload=workload)
    events = synthesize_churn(config, rng=seed)
    instance = make_instance(
        workload, switch=PAPER_SWITCH, max_recirculations=2, rng=seed
    )

    best = {"plain": float("inf"), "traced": float("inf")}
    for _rep in range(reps):
        for mode in ("plain", "traced"):
            kwargs = {}
            if mode == "traced":
                kwargs = {"tracer": Tracer(), "recorder": FlightRecorder()}
            controller = SfcController.for_instance(instance, **kwargs)
            report = ChurnEngine(controller).replay(events)
            best[mode] = min(best[mode], report.wall_seconds)
    return {
        "events": len(events),
        "reps": reps,
        "wall_seconds": {m: round(t, 4) for m, t in best.items()},
        "overhead_pct": round(
            100.0 * (best["traced"] - best["plain"]) / best["plain"], 2
        ),
    }


def run(
    num_packets: int,
    reps: int,
    duration_s: float,
    seed: int,
    fastpath: bool = False,
    fastpath_backend: str = "auto",
) -> dict:
    return {
        "benchmark": "telemetry-overhead",
        "seed": seed,
        "python": sys.version.split()[0],
        "dataplane": bench_dataplane(
            num_packets, reps, seed,
            fastpath=fastpath, fastpath_backend=fastpath_backend,
        ),
        "control_plane": bench_control_plane(duration_s, reps, seed),
    }


#: Acceptance bars: armed-but-idle hooks < 1%, 1-in-64 sampling < 10%.
IDLE_MAX_PCT = 1.0
SAMPLED_MAX_PCT = 10.0


def check(report: dict) -> list[str]:
    """The acceptance assertions; returns failure strings (empty = pass).

    A mode passes if either estimator is under its bar: the best-of floor
    comparison (the reported number) or the minimum paired ratio (robust
    to scheduler noise that hits one mode's repetitions harder).
    """
    overhead = report["dataplane"]["overhead_pct"]
    paired = report["dataplane"]["overhead_paired_pct"]
    failures = []
    if min(overhead["idle"], paired["idle"]) >= IDLE_MAX_PCT:
        failures.append(
            f"idle (armed, never sampling) overhead {overhead['idle']}% "
            f"(paired {paired['idle']}%) >= {IDLE_MAX_PCT}%"
        )
    if min(overhead["sampled"], paired["sampled"]) >= SAMPLED_MAX_PCT:
        failures.append(
            f"1-in-64 sampling overhead {overhead['sampled']}% "
            f"(paired {paired['sampled']}%) >= {SAMPLED_MAX_PCT}%"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI guard: smaller batches, same assertions",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--fastpath", action="store_true",
        help="attach the compiled fast path to the benched pipeline "
             "(report-only: the <1%%/<10%% bars are interpreter bars)",
    )
    parser.add_argument(
        "--fastpath-backend",
        choices=("auto", "numpy", "python"), default="auto",
        help="fast-path kernel backend when --fastpath is set",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_telemetry.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        num_packets, reps, duration_s = 1500, 7, 3.0
    else:
        num_packets, reps, duration_s = 5000, 9, 8.0

    # A loaded runner can poison every repetition of one measurement, so a
    # failed check earns up to two re-measurements with doubled repetitions
    # before it counts.
    for attempt in range(3):
        if attempt:
            reps *= 2
            print(f"retrying dataplane measurement with reps={reps}")
        report = run(
            num_packets=num_packets, reps=reps, duration_s=duration_s,
            seed=args.seed,
            fastpath=args.fastpath, fastpath_backend=args.fastpath_backend,
        )
        if args.fastpath:
            # Sampled/traced packets route through the interpreter by
            # design (postcard bit-exactness), so the hook-cost bars do
            # not apply to the compiled path: report, don't assert.
            failures = []
            break
        failures = check(report)
        if not failures:
            break

    rates = report["dataplane"]["packets_per_sec"]
    overhead = report["dataplane"]["overhead_pct"]
    for name, _ in MODES:
        extra = "" if name == "off" else f"   overhead {overhead[name]:+.2f}%"
        print(f"dataplane {name:>8}: {rates[name]:>12,.0f} packets/s{extra}")
    cp = report["control_plane"]
    print(
        f"control plane: {cp['events']} events, plain "
        f"{cp['wall_seconds']['plain']}s vs traced "
        f"{cp['wall_seconds']['traced']}s ({cp['overhead_pct']:+.2f}%)"
    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if failures:
        return 1
    if args.fastpath:
        print(
            "ok: compiled-path report only (hook-cost bars apply to the "
            "interpreted path)"
        )
        return 0
    paired = report["dataplane"]["overhead_paired_pct"]
    print(
        f"ok: idle {min(overhead['idle'], paired['idle'])}% < "
        f"{IDLE_MAX_PCT}%, "
        f"sampled {min(overhead['sampled'], paired['sampled'])}% < "
        f"{SAMPLED_MAX_PCT}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
