#!/usr/bin/env python
"""Controller churn benchmark: event throughput and admit-latency percentiles.

Synthesizes a seeded tenant-churn stream (Poisson arrivals, exponential
lifetimes, mid-lifetime chain modifications), replays it through the
:class:`~repro.controller.SfcController` — admission control, placement,
and the two-phase data-plane installer — and records events/sec plus p50/p99
admit latency into ``BENCH_controller.json``.

Run directly (no pytest needed):

    python benchmarks/bench_controller_churn.py            # full run + JSON report
    python benchmarks/bench_controller_churn.py --smoke    # CI regression guard

``--smoke`` replays a shorter stream (still several hundred events), checks
the churn invariant — the controller's incremental resource accounting must
match a from-scratch recomputation bit for bit — and exits non-zero if the
invariant breaks or throughput falls below a conservative floor.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

import numpy as np

from repro.controller import ChurnConfig, ChurnEngine, SfcController, synthesize_churn
from repro.core.state import PipelineState
from repro.rng import DEFAULT_SEED
from repro.traffic.workload import WorkloadConfig, make_instance

#: Conservative floor for the CI guard (the pure-python reference easily
#: clears hundreds of events/sec; below this something regressed badly).
SMOKE_EVENTS_PER_SEC_FLOOR = 50.0

WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)


def churn_config(duration_s: float) -> ChurnConfig:
    """The benchmark's churn mix at a given stream horizon."""
    return ChurnConfig(
        duration_s=duration_s,
        arrival_rate_per_s=12.0,
        mean_lifetime_s=6.0,
        modify_fraction=0.25,
        workload=WORKLOAD,
    )


def check_invariant(controller: SfcController) -> bool:
    """True iff incremental accounting equals a from-scratch recompute."""
    reference = PipelineState.from_placement(
        controller.placement,
        reserve_physical_block=controller.reserve_physical_block,
    )
    return (
        np.array_equal(controller.state.entries, reference.entries)
        and np.array_equal(controller.state.nf_blocks, reference.nf_blocks)
        and np.array_equal(controller.state.physical, reference.physical)
        and controller.state.backplane_gbps == reference.backplane_gbps
    )


def run(duration_s: float, with_dataplane: bool) -> dict:
    """Replay one seeded stream and assemble the JSON report."""
    config = churn_config(duration_s)
    events = synthesize_churn(config, rng=DEFAULT_SEED)
    instance = make_instance(config.workload, max_recirculations=2, rng=DEFAULT_SEED)
    controller = SfcController(instance, with_dataplane=with_dataplane)
    report = ChurnEngine(controller).replay(events)
    summary = report.summary()
    return {
        "benchmark": "controller-churn",
        "seed": DEFAULT_SEED,
        "python": sys.version.split()[0],
        "duration_s": duration_s,
        "with_dataplane": with_dataplane,
        "events": int(summary["events"]),
        "admitted": int(summary["admitted"]),
        "evicted": int(summary["evicted"]),
        "modified": int(summary["modified"]),
        "rejected": int(summary["rejected"]),
        "events_per_sec": round(summary["events_per_sec"], 1),
        "admit_p50_ms": (
            None if summary["admit_p50_ms"] is None
            else round(summary["admit_p50_ms"], 3)
        ),
        "admit_p99_ms": (
            None if summary["admit_p99_ms"] is None
            else round(summary["admit_p99_ms"], 3)
        ),
        "rules_added": int(summary["rules_added"]),
        "rules_deleted": int(summary["rules_deleted"]),
        "live_tenants": len(controller.tenants),
        "invariant_ok": check_invariant(controller),
    }


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: shorter stream, invariant + throughput floor",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_controller.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    duration = 15.0 if args.smoke else 60.0
    report = run(duration_s=duration, with_dataplane=True)

    latency = (
        "admit latency n/a"
        if report["admit_p50_ms"] is None
        else (
            f"admit latency p50={report['admit_p50_ms']:.3f}ms "
            f"p99={report['admit_p99_ms']:.3f}ms"
        )
    )
    print(
        f"{report['events']} events "
        f"({report['admitted']} admitted / {report['modified']} modified / "
        f"{report['evicted']} evicted / {report['rejected']} rejected): "
        f"{report['events_per_sec']:,.0f} events/s, {latency}, "
        f"rules +{report['rules_added']}/-{report['rules_deleted']}, "
        f"invariant {'OK' if report['invariant_ok'] else 'VIOLATED'}"
    )

    if not report["invariant_ok"]:
        print("FAIL: churn invariant violated (incremental accounting drifted "
              "from a from-scratch recomputation)", file=sys.stderr)
        return 1
    if args.smoke:
        if report["events"] < 100:
            print(f"FAIL: smoke stream too short ({report['events']} events)",
                  file=sys.stderr)
            return 1
        if report["events_per_sec"] < SMOKE_EVENTS_PER_SEC_FLOOR:
            print(
                f"FAIL: {report['events_per_sec']:.0f} events/s is below the "
                f"{SMOKE_EVENTS_PER_SEC_FLOOR:.0f}/s floor",
                file=sys.stderr,
            )
            return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if args.smoke:
        print(f"smoke ok: {report['events_per_sec']:,.0f} events/s over "
              f"{report['events']} events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
