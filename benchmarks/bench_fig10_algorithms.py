"""Fig. 10 — objective throughput of SFP-IP vs SFP-Appro. vs greedy.

Shape asserted: pointwise IP >= Appro (up to ILP time-limit slack) and, on
the sweep average, Appro >= greedy; all curves grow with L and flatten as
the switch saturates.
"""

import numpy as np

from repro.experiments import fig10_algorithms


def test_fig10(run_once, paper_scale):
    kwargs = (
        dict(l_values=(10, 20, 30, 40, 50, 60), ilp_time_limit=300.0)
        if paper_scale
        else dict(l_values=(8, 14, 20), ilp_time_limit=60.0)
    )
    result = run_once(fig10_algorithms.run, seed=9, **kwargs)
    result.print()
    ilp = np.array(result.column("ilp_gbps"))
    appro = np.array(result.column("appro_gbps"))
    greedy = np.array(result.column("greedy_gbps"))
    # A time-limited ILP can end with no incumbent (objective 0); dominance
    # is only meaningful where one exists.
    has_incumbent = ilp > 0
    assert has_incumbent.any(), "ILP found no incumbent anywhere in the sweep"
    assert (
        appro[has_incumbent] <= ilp[has_incumbent] * 1.02 + 1e-6
    ).all(), "IP upper-bounds the rounding"
    assert appro.mean() >= greedy.mean() - 1e-6, "paper: Appro beats greedy"
    assert appro[-1] >= appro[0] and greedy[-1] >= greedy[0]
