"""Fig. 5 — processing latency: SFP ~341 ns, DPDK ~1151 ns, SFP-Recir +~35 ns."""

from repro.experiments import fig5_latency


def test_fig5(run_once):
    result = run_once(fig5_latency.run, seed=1)
    result.print()
    row = result.rows[0]
    assert abs(row["sfp_ns"] - 341.0) < 25.0, "paper: ~341 ns"
    assert abs(row["dpdk_ns"] - 1151.0) < 120.0, "paper: ~1151 ns"
    overhead = row["sfp_recir_ns"] - row["sfp_ns"]
    assert 20.0 <= overhead <= 60.0, "paper: 3 recirculations cost ~35 ns"
    # The key claim: latency is dominated by SFC complexity, not passes.
    assert row["sfp_recir_ns"] < 0.5 * row["dpdk_ns"]
