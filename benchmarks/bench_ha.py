#!/usr/bin/env python
"""High-availability benchmark: replication lag, failover time, lost acks.

Three phases, all driven through :class:`repro.ha.cluster.HaCluster` (one
primary + one hot standby + one lease in this process):

1. **Replication lag** — replay the seeded churn stream pumping the WAL
   shipper on a fixed cadence, and measure the standby's lag (in records)
   just before each pump, the lag after (must be zero — the in-process
   sink is synchronous), and the pump cost itself.
2. **Failover sweep** — the kill-primary drill at every seeded crash site
   across the durability boundaries (WAL append/fsync windows, and in the
   full run the checkpoint/compaction rename windows too), rotating the
   disk-mutilation mode (keep / lose-unsynced / tear / corrupt).  Each
   point crashes the primary mid-stream, waits out the lease, fails over,
   and checks the promoted fabric (a) kept **every acknowledged op** and
   (b) is digest-identical to the committed-LSN oracle — the per-LSN
   digest map an uninterrupted run of the same stream journals.
3. **Failover time** — the kill→promoted wall clock of every sweep point
   (dominated by the lease TTL, by design: the fence must expire before
   the standby may serve).

Results land in ``BENCH_ha.json``.  Run directly (no pytest needed):

    python benchmarks/bench_ha.py            # full run + JSON report
    python benchmarks/bench_ha.py --smoke    # CI regression guard

``--smoke`` sweeps the four WAL sites only (16 points) and fails if any
point loses an acknowledged op, diverges from the oracle, or reports
invariant problems — the same zero-lost-acks bar as the full run.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.controller import ChurnConfig, synthesize_churn
from repro.core.spec import SwitchSpec
from repro.durability import (
    DISK_MODES,
    DURABILITY_SITES,
    WAL_SITES,
    CrashError,
    FabricDurability,
    FaultInjector,
    crash_sites,
)
from repro.fabric import FabricOrchestrator, FabricTopology, make_partitioner
from repro.ha import HaCluster
from repro.rng import DEFAULT_SEED
from repro.traffic.workload import WorkloadConfig

#: Lease TTL for the sweep: small enough to keep 32 failovers quick, large
#: enough that renewal racing never fences a healthy primary mid-run.
SWEEP_TTL_S = 0.15

#: Steady-state phase ships every PUMP_EVERY ops (so the lag-before-pump
#: histogram actually has something to show).
PUMP_EVERY = 8

SPEC = SwitchSpec(
    stages=3, blocks_per_stage=4, block_bits=6400, rule_bits=64,
    capacity_gbps=10.0,
)

WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)


def make_fabric() -> FabricOrchestrator:
    topology = FabricTopology.full_mesh(3, spec=SPEC, link_capacity_gbps=40.0)
    return FabricOrchestrator(
        topology,
        num_types=WORKLOAD.num_types,
        partitioner=make_partitioner("hash"),
        with_dataplane=False,
    )


def churn_events(duration_s: float):
    config = ChurnConfig(
        duration_s=duration_s,
        arrival_rate_per_s=10.0,
        mean_lifetime_s=4.0,
        modify_fraction=0.25,
        workload=WORKLOAD,
    )
    return synthesize_churn(config, rng=DEFAULT_SEED)


def apply_event(fabric, event):
    kind = event.kind.value
    if kind == "arrival":
        return fabric.admit(event.sfc)
    if kind == "departure":
        return fabric.evict(event.tenant_id)
    return fabric.modify(event.tenant_id, event.sfc)


def build_oracle(events) -> dict[int, str]:
    """The committed-LSN digest oracle: replay the stream uninterrupted
    (fsync=always, no checkpoints) and map every LSN to the post-op fabric
    digest its journaled record carries."""
    with tempfile.TemporaryDirectory() as directory:
        fabric = make_fabric()
        oracle = {0: fabric.digest()}
        durability = FabricDurability(
            directory, fsync="always", checkpoint_every=0
        ).attach(fabric)
        for event in events:
            apply_event(fabric, event)
        for record in durability.wal.records():
            oracle[record.lsn] = record.data["digest"]
        durability.close()
    return oracle


# ----------------------------------------------------------------------
# Phase 1: steady-state replication lag
# ----------------------------------------------------------------------
def measure_replication(events) -> dict:
    with tempfile.TemporaryDirectory() as root:
        cluster = HaCluster(
            root, make_fabric, ttl_s=30.0, checkpoint_every=32, verify_every=8
        )
        cluster.start()
        lags_before: list[int] = []
        lags_after: list[int] = []
        pump_ms: list[float] = []
        for index, event in enumerate(events):
            apply_event(cluster.fabric, event)
            if (index + 1) % PUMP_EVERY == 0:
                lags_before.append(
                    cluster.durability.wal.last_lsn
                    - cluster.standby.applied_lsn
                )
                t0 = time.perf_counter()
                cluster.pump()
                pump_ms.append((time.perf_counter() - t0) * 1e3)
                lags_after.append(
                    cluster.durability.wal.last_lsn
                    - cluster.standby.applied_lsn
                )
        cluster.pump()
        final_lag = (
            cluster.durability.wal.last_lsn - cluster.standby.applied_lsn
        )
        digest_ok = (
            cluster.standby.fabric.digest() == cluster.fabric.digest()
        )
        snapshot = cluster.standby.metrics.snapshot()
        heartbeat = snapshot["histograms"].get("ha.heartbeat_delay_s", {})
        cluster.close()
    return {
        "events": len(events),
        "pump_every": PUMP_EVERY,
        "lag_before_pump_records": {
            "mean": round(statistics.mean(lags_before), 2),
            "max": max(lags_before),
        },
        "lag_after_pump_records": {"max": max(lags_after)},
        "final_lag_records": final_lag,
        "pump_ms": {
            "p50": round(statistics.median(pump_ms), 3),
            "max": round(max(pump_ms), 3),
        },
        "heartbeat_delay_p50_s": heartbeat.get("p50"),
        "standby_digest_ok": digest_ok,
        "checkpoints_shipped": cluster.standby.checkpoints_restored,
    }


# ----------------------------------------------------------------------
# Phase 2+3: the kill-primary failover sweep
# ----------------------------------------------------------------------
def failover_sweep(events, oracle, points) -> list[dict]:
    results = []
    for index, point in enumerate(points):
        mode = DISK_MODES[index % len(DISK_MODES)]
        with tempfile.TemporaryDirectory() as root:
            injector = FaultInjector(point)
            cluster = HaCluster(
                root, make_fabric, ttl_s=SWEEP_TTL_S,
                checkpoint_every=16, verify_every=4, fault_hook=injector,
            )
            cluster.start()
            acked = 0
            try:
                for event in events:
                    apply_event(cluster.fabric, event)
                    # The op returned: its records are durable (fsync=
                    # always) — this is the acknowledgment watermark the
                    # promoted standby must reach.
                    acked = cluster.durability.wal.last_lsn
                    cluster.pump()
            except CrashError:
                pass
            t_kill = time.perf_counter()
            cluster.kill_primary(mode)
            report = cluster.failover(max_wait_s=10.0, poll_s=0.005)
            failover_ms = (time.perf_counter() - t_kill) * 1e3
            expected = oracle.get(report.applied_lsn)
            lost = max(0, acked - report.applied_lsn)
            ok = bool(
                report.ok
                and lost == 0
                and expected is not None
                and report.digest == expected
            )
            cluster.close()
            results.append({
                "site": point.site,
                "ordinal": point.at,
                "crashed": injector.fired,
                "disk_mode": mode,
                "acked_lsn": acked,
                "promoted_lsn": report.applied_lsn,
                "lost_acks": lost,
                "epoch": report.epoch,
                "digest_ok": bool(expected is not None
                                  and report.digest == expected),
                "failover_ms": round(failover_ms, 1),
                "ok": ok,
                "problems": report.problems,
            })
    return results


def run(smoke: bool) -> dict:
    events = churn_events(8.0 if smoke else 15.0)
    oracle = build_oracle(events)
    replication = measure_replication(events)
    sites = WAL_SITES if smoke else DURABILITY_SITES
    # Ordinals up to roughly the stream's committed-op count: every site
    # gets its first visit, its last reachable one, and seeded middles;
    # points past a site's actual visit count crash at stream end instead
    # (still a valid kill+failover drill).
    points = crash_sites(DEFAULT_SEED, max(len(events) // 2, 2), sites=sites)
    sweep = failover_sweep(events, oracle, points)
    failover_times = [row["failover_ms"] for row in sweep]
    return {
        "benchmark": "ha",
        "seed": DEFAULT_SEED,
        "python": sys.version.split()[0],
        "smoke": smoke,
        "lease_ttl_s": SWEEP_TTL_S,
        "replication": replication,
        "sweep_points": len(sweep),
        "crashed_points": sum(1 for row in sweep if row["crashed"]),
        "lost_acks_total": sum(row["lost_acks"] for row in sweep),
        "failover_ms": {
            "p50": round(statistics.median(failover_times), 1),
            "max": round(max(failover_times), 1),
        },
        "sweep": sweep,
    }


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: WAL-site sweep only (16 points)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_ha.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    report = run(smoke=args.smoke)

    repl = report["replication"]
    print(
        f"replication: lag before pump mean "
        f"{repl['lag_before_pump_records']['mean']} / max "
        f"{repl['lag_before_pump_records']['max']} records "
        f"(pump every {repl['pump_every']} ops), after pump "
        f"{repl['lag_after_pump_records']['max']}, pump p50 "
        f"{repl['pump_ms']['p50']} ms, "
        f"{repl['checkpoints_shipped']} checkpoints shipped"
    )
    print(
        f"failover sweep: {report['sweep_points']} points "
        f"({report['crashed_points']} crashed mid-stream), "
        f"failover p50 {report['failover_ms']['p50']} ms / max "
        f"{report['failover_ms']['max']} ms (lease ttl "
        f"{report['lease_ttl_s'] * 1e3:.0f} ms), "
        f"{report['lost_acks_total']} acknowledged ops lost"
    )
    bad = [row for row in report["sweep"] if not row["ok"]]
    for row in bad[:8]:
        print(
            f"  FAILED {row['site']}@{row['ordinal']} "
            f"({row['disk_mode']}): acked {row['acked_lsn']} promoted "
            f"{row['promoted_lsn']} lost {row['lost_acks']} "
            f"digest_ok={row['digest_ok']} problems={row['problems']}"
        )

    failures = []
    if not repl["standby_digest_ok"]:
        failures.append("steady-state standby diverged from the primary")
    if repl["lag_after_pump_records"]["max"] != 0:
        failures.append("standby lagged after a synchronous pump")
    if report["lost_acks_total"]:
        failures.append(
            f"{report['lost_acks_total']} acknowledged ops lost across "
            f"the sweep (must be zero)"
        )
    if bad:
        failures.append(
            f"{len(bad)}/{report['sweep_points']} sweep points failed "
            f"(divergence or invariant problems)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if args.smoke:
        print(
            f"smoke ok: {report['sweep_points']} kill-primary points, "
            f"zero lost acks, promoted digests oracle-identical"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
