"""Fig. 9 — early-terminated IP: incumbent quality vs runtime limit.

Shape asserted: the objective is non-decreasing in the time limit, and the
tightest limit yields (near-)nothing while the loosest reaches the best
value observed — the paper's "0 at 5 s, near-optimal at 10 s, optimal at
30 s" staircase.
"""

import numpy as np

from repro.experiments import fig9_early_termination


def test_fig9(run_once, paper_scale):
    kwargs = (
        dict(time_limits=(5.0, 10.0, 20.0, 30.0, 60.0), num_sfcs=25)
        if paper_scale
        else dict(time_limits=(0.05, 2.0, 30.0), num_sfcs=12)
    )
    result = run_once(fig9_early_termination.run, seed=5, **kwargs)
    result.print()
    objective = np.array(result.column("throughput_gbps"))
    # Monotone (same dataset, larger budget can only help HiGHS's incumbent;
    # allow tiny solver noise).
    assert all(a <= b + 1e-3 * max(1.0, b) for a, b in zip(objective, objective[1:]))
    assert objective[-1] > 0
    # The tightest limit must be visibly worse than the final optimum or
    # outright zero (the paper's 5 s point).
    assert objective[0] <= objective[-1]
