#!/usr/bin/env python
"""Capacity-planning scale benchmark: admission rate, spillover and admit
latency vs fleet size, at 10^5-10^6 tenants.

Offers the same seeded vectorized workload (``synthesize_fill``) to
``ScaleFabric`` fleets of increasing switch count — the slim columnar
capacity model whose admit path replicates the real greedy placement walk
decision for decision — and records admission rate, spillover rate,
p50/p99 admit latency and offer throughput per fleet size into
``BENCH_scale.json``.

Run directly (no pytest needed):

    python benchmarks/bench_scale.py            # full sweep: 10^6 tenants
    python benchmarks/bench_scale.py --smoke    # CI guard: 10^5 tenants

``--smoke`` additionally replays a small prefix of the workload through a
*real* ``FabricOrchestrator`` configured to the scale model's accounting
mode and asserts the two make identical admit/spillover decisions tenant
for tenant, then exits non-zero on any mismatch, a failed aggregate
audit, or a throughput collapse.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.core.spec import SwitchSpec
from repro.rng import DEFAULT_SEED
from repro.scenarios.scale import ScaleFabric, run_fill, synthesize_fill
from repro.traffic.workload import WorkloadConfig

#: Offered tenants: the ISSUE's CI floor and the full-run target.
SMOKE_TENANTS = 100_000
FULL_TENANTS = 1_000_000

#: Fleet sizes swept (switch counts).  A saturated fill walks every
#: switch per rejection, so offer throughput scales ~1/fleet — the full
#: sweep stops at 256 switches to keep the nightly run under half an hour.
SMOKE_FLEETS = (4, 16, 64)
FULL_FLEETS = (16, 64, 256)

#: Collapse guard, not a perf target: the columnar admit path clears
#: thousands of offers/sec even on the largest smoke fleet; below this
#: something regressed badly.
SMOKE_TENANTS_PER_SEC_FLOOR = 500.0

#: Tenants replayed through the real fabric in the smoke differential.
DIFFERENTIAL_TENANTS = 400

WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)

#: Deliberately tight per-switch spec (the campaign library's switch):
#: small fleets saturate visibly, so the admission-rate curve has shape.
SCALE_SPEC = SwitchSpec(
    stages=4, blocks_per_stage=6, block_bits=6400, rule_bits=64,
    capacity_gbps=60.0,
)


def run_one(workload_arrays, num_switches: int, churn_fraction: float) -> dict:
    """Fill one fleet size and collect its report row."""
    fabric = ScaleFabric(
        num_switches,
        switch=SCALE_SPEC,
        max_recirculations=1,
        num_types=WORKLOAD.num_types,
        capacity_hint=workload_arrays.num_tenants,
    )
    report = run_fill(
        fabric, workload_arrays, churn_fraction=churn_fraction, rng=DEFAULT_SEED
    )
    row = report.summary()
    row["live_tenants"] = fabric.live_tenants
    row["admit_p50_us"] = (
        None if row["admit_p50_us"] is None else round(row["admit_p50_us"], 2)
    )
    row["admit_p99_us"] = (
        None if row["admit_p99_us"] is None else round(row["admit_p99_us"], 2)
    )
    row["admission_rate"] = round(row["admission_rate"], 5)
    row["spillover_rate"] = round(row["spillover_rate"], 5)
    row["tenants_per_sec"] = round(row["tenants_per_sec"], 1)
    row["wall_s"] = round(row["wall_s"], 3)
    return row


def differential_check(num_switches: int = 3) -> dict:
    """Decision-identity audit: the same grid-bandwidth workload through
    the scale model and through a real no-link fabric in the matching
    accounting mode must admit the same tenants to the same preference
    ranks."""
    from repro.controller.admission import AdmissionPolicy
    from repro.fabric import FabricOrchestrator, ModuloPartitioner
    from repro.fabric.topology import FabricTopology, SwitchNode

    arrays = synthesize_fill(
        WORKLOAD, DIFFERENTIAL_TENANTS, rng=DEFAULT_SEED, grid_bandwidth=True
    )
    scale = ScaleFabric(
        num_switches, switch=SCALE_SPEC, max_recirculations=1,
        num_types=WORKLOAD.num_types,
    )
    topology = FabricTopology(
        nodes=[
            SwitchNode(name, spec=SCALE_SPEC, max_recirculations=1)
            for name in scale.switch_names
        ],
        links=(),  # no links => no stitching, matching the scale model
    )
    real = FabricOrchestrator(
        topology,
        num_types=WORKLOAD.num_types,
        partitioner=ModuloPartitioner(),
        with_dataplane=False,
        policy=AdmissionPolicy(check_memory=False, check_backplane=False),
        consolidate=False,
        reserve_physical_block=False,
    )
    mismatches = []
    for i in range(arrays.num_tenants):
        j = int(arrays.lengths[i])
        ok_s, rank_s, _ = scale.admit(
            i, arrays.types[i, :j], arrays.rules[i, :j],
            float(arrays.bandwidths[i]),
        )
        result = real.admit(arrays.sfc(i))
        if ok_s != result.ok or (ok_s and rank_s != result.spillover):
            mismatches.append(
                {"tenant": i, "scale": [ok_s, rank_s],
                 "real": [result.ok, result.spillover]}
            )
    return {
        "tenants": arrays.num_tenants,
        "scale_admitted": scale.admitted,
        "real_admitted": len(real.tenants),
        "mismatches": mismatches,
        "scale_check_ok": scale.check() == [],
        "real_invariant_ok": real.check_invariant() == [],
    }


def run(num_tenants: int, fleets, churn_fraction: float) -> dict:
    """Sweep fleet sizes over one seeded workload and assemble the report."""
    arrays = synthesize_fill(WORKLOAD, num_tenants, rng=DEFAULT_SEED)
    rows = [run_one(arrays, n, churn_fraction) for n in fleets]
    return {
        "benchmark": "scale-fill",
        "seed": DEFAULT_SEED,
        "python": sys.version.split()[0],
        "tenants": num_tenants,
        "churn_fraction": churn_fraction,
        "rows": rows,
    }


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI guard: 10^5 tenants, differential decision-identity audit, "
             "throughput floor",
    )
    parser.add_argument(
        "--tenants", type=int, default=None,
        help="override offered tenant count",
    )
    parser.add_argument(
        "--churn-fraction", type=float, default=0.0,
        help="probability an admit is followed by a random eviction "
             "(0 = pure fill)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_scale.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    num_tenants = args.tenants or (SMOKE_TENANTS if args.smoke else FULL_TENANTS)
    fleets = SMOKE_FLEETS if args.smoke else FULL_FLEETS
    report = run(num_tenants, fleets, args.churn_fraction)

    failed = False
    for row in report["rows"]:
        p99 = row["admit_p99_us"]
        print(
            f"{row['switches']} switches: {row['offered_tenants']:,} offered, "
            f"{row['admitted']:,} admitted ({row['admission_rate']:.2%}), "
            f"spillover {row['spillover_rate']:.2%}, "
            f"p99 admit {'n/a' if p99 is None else f'{p99:.1f}us'}, "
            f"{row['tenants_per_sec']:,.0f} tenants/s, "
            f"audit {'OK' if row['check_ok'] else 'FAILED'}"
        )
        if not row["check_ok"]:
            failed = True
        if args.smoke:
            if row["offered_tenants"] < SMOKE_TENANTS:
                print(
                    f"FAIL: smoke must offer >= {SMOKE_TENANTS:,} tenants, "
                    f"got {row['offered_tenants']:,}",
                    file=sys.stderr,
                )
                failed = True
            if row["tenants_per_sec"] < SMOKE_TENANTS_PER_SEC_FLOOR:
                print(
                    f"FAIL: {row['tenants_per_sec']:,.0f} tenants/s is below "
                    f"the {SMOKE_TENANTS_PER_SEC_FLOOR:,.0f}/s floor",
                    file=sys.stderr,
                )
                failed = True

    if args.smoke:
        diff = differential_check()
        report["differential"] = diff
        ident = not diff["mismatches"] and (
            diff["scale_admitted"] == diff["real_admitted"]
        )
        print(
            f"differential: {diff['tenants']} tenants, scale admitted "
            f"{diff['scale_admitted']} vs real {diff['real_admitted']}, "
            f"{len(diff['mismatches'])} mismatches, audits "
            f"{'OK' if diff['scale_check_ok'] and diff['real_invariant_ok'] else 'FAILED'}"
        )
        if not (ident and diff["scale_check_ok"] and diff["real_invariant_ok"]):
            print("FAIL: scale model diverged from the real fabric",
                  file=sys.stderr)
            failed = True

    if failed:
        print("FAIL: scale guard violated", file=sys.stderr)
        return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if args.smoke:
        best = max(r["tenants_per_sec"] for r in report["rows"])
        print(
            f"smoke ok: {num_tenants:,} tenants offered per fleet, up to "
            f"{best:,.0f} tenants/s across {len(report['rows'])} fleet sizes"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
