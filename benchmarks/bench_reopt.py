#!/usr/bin/env python
"""Global re-optimization benchmark: spillover and stitch reduction.

Long tenant churn fragments a fabric: chains stitched across two switches
when the fleet was momentarily full stay stitched forever, and spillover
compounds as the partitioner's first choice keeps refusing.  This
benchmark measures what one fleet-wide re-optimization pass buys, judged
two ways:

* a **deterministic fragmentation fixture** (fillers force long chains to
  stitch, then the fillers leave): the fleet is built twice, one copy is
  re-optimized — the stranded chains must unstitch hitlessly (every
  migrated tenant forwards end to end before its old placement is torn
  down) — and both copies then face an *identical* admission-probe batch.
  Probe spillover rate (the fraction not served at its first-choice
  switch) is the judged number: the fragmented fleet rejects what the
  defragmented fleet admits.
* a **churn A/B comparison** on the ``bench_fabric_churn.py`` workload:
  the same seeded stream replays over two identical fabrics, one under a
  periodic re-optimization cadence from the 60% mark, one left alone, and
  the continuation phase's spillover rate and final stitch counts are
  compared — for both the hash and the load-aware (least-backplane)
  partitioners.  Sustained churn keeps re-fragmenting, so the robust
  signal here is the stitch count the cadence holds near zero; organic
  spillover moves with admission-mix noise.

Results land in ``BENCH_reopt.json``.  Run directly (no pytest needed):

    python benchmarks/bench_reopt.py            # full sweep + JSON report
    python benchmarks/bench_reopt.py --smoke    # CI regression guard

``--smoke`` shrinks the streams and exits non-zero unless the fixture's
stitch count drops, its probe spillover rate drops, every migration probe
passes, and the fabric bit-identity invariant holds on every fabric
touched.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.controller import ChurnConfig, synthesize_churn
from repro.core.spec import SFC, SwitchSpec
from repro.fabric import (
    FabricChurnEngine,
    FabricOrchestrator,
    FabricTopology,
    make_partitioner,
)
from repro.rng import DEFAULT_SEED
from repro.traffic.workload import WorkloadConfig

#: The fabric-churn benchmark's workload (same chain mix, same knobs).
WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)

#: Deliberately tight per-shard switch (shared with bench_fabric_churn):
#: 4 stages x 8 blocks, 40 Gbps backplane.
SHARD_SPEC = SwitchSpec(
    stages=4, blocks_per_stage=8, block_bits=6400, rule_bits=64,
    capacity_gbps=40.0,
)

NUM_SWITCHES = 4


def make_fabric(partitioner: str, with_dataplane: bool) -> FabricOrchestrator:
    topology = FabricTopology.full_mesh(
        NUM_SWITCHES, spec=SHARD_SPEC, link_capacity_gbps=100.0,
        max_recirculations=1,
    )
    return FabricOrchestrator(
        topology,
        num_types=WORKLOAD.num_types,
        partitioner=make_partitioner(partitioner),
        with_dataplane=with_dataplane,
    )


def churn_config(duration_s: float) -> ChurnConfig:
    """The fabric-churn mix, tuned so the fleet runs near — not past —
    capacity: rejections then come from fragmentation (stranded stitched
    placements, uneven shards) rather than hard saturation, which is the
    regime a re-optimizer can actually repair."""
    return ChurnConfig(
        duration_s=duration_s,
        arrival_rate_per_s=20.0,
        mean_lifetime_s=8.0,
        modify_fraction=0.25,
        workload=WORKLOAD,
    )


# ----------------------------------------------------------------------
# Deterministic fragmentation fixture
# ----------------------------------------------------------------------
def fragment_fixture(partitioner: str, with_dataplane: bool):
    """Build a fragmented fleet the same way long churn does, but
    deterministically and under *any* partitioner.  Backplane is the
    binding resource: 4.6 Gbps fillers saturate every switch to 36.8 of
    40 Gbps regardless of routing (spillover fills whatever the
    partitioner prefers first), so a recirculating 5-NF chain — 2 passes,
    4 Gbps single-homed, 2 Gbps per half — cannot fit whole anywhere and
    must stitch.  Evicting one filler per switch then opens single-home
    room fleet-wide: the stitched chains are stranded, exactly the state
    a global pass repairs."""
    fabric = make_fabric(partitioner, with_dataplane)
    tid = 0
    fillers = []
    while True:
        result = fabric.admit(SFC(
            name=f"filler-{tid}", nf_types=(1,), rules=(1,),
            bandwidth_gbps=4.6, tenant_id=tid,
        ))
        if not result.ok:
            break
        fillers.append(tid)
        tid += 1
    stitched_longs = 0
    for _ in range(NUM_SWITCHES):
        result = fabric.admit(SFC(
            name=f"long-{tid}", nf_types=(1, 2, 3, 4, 5),
            rules=(4, 4, 4, 4, 4), bandwidth_gbps=2.0, tenant_id=tid,
        ))
        if result.ok and len(result.switches) > 1:
            stitched_longs += 1
        tid += 1
    evicted_on: set[str] = set()
    for filler in fillers:
        home = fabric.tenants[filler].segments[0].switch
        if home not in evicted_on:
            evicted_on.add(home)
            fabric.evict(filler)
    return fabric, stitched_longs


#: One-pass probes sized so the fragmented fleet (5.8 Gbps residual per
#: switch) rejects them all, while the re-optimized fleet — which freed
#: the segment bandwidth of every unstitched chain — admits them.
PROBE_BW = 6.0
PROBE_COUNT = 8


def probe_batch(fabric: FabricOrchestrator) -> dict:
    """Offer an identical batch of admission probes and record how each
    lands: at its first-choice switch (rank 0), spilled (admitted at a
    lower-ranked switch or stitched), or rejected.  Each probe is evicted
    before the next, so every probe measures the same fleet state and the
    batch leaves the fleet unchanged."""
    outcomes = {"rank0": 0, "spilled": 0, "rejected": 0}
    base = 900_000
    for k in range(PROBE_COUNT):
        # Prime-strided ids (below the 2^20 wire-ID namespace) so the
        # batch's hash first-choices spread over the fleet the way
        # organic arrivals do.
        tenant_id = base + k * 7919
        result = fabric.admit(SFC(
            name=f"probe-{k}", nf_types=(1, 2, 3), rules=(2, 2, 2),
            bandwidth_gbps=PROBE_BW, tenant_id=tenant_id,
        ))
        if not result.ok:
            outcomes["rejected"] += 1
            continue
        if result.spillover or len(result.switches) > 1:
            outcomes["spilled"] += 1
        else:
            outcomes["rank0"] += 1
        fabric.evict(tenant_id)
    outcomes["spill_rate"] = round(
        1.0 - outcomes["rank0"] / PROBE_COUNT, 4
    )
    return outcomes


def run_fixture(partitioner: str, with_dataplane: bool, mode: str) -> dict:
    """Build the fragmented fleet twice (the build is deterministic),
    re-optimize one copy, then judge both with the same probe batch."""
    control, stitched_longs = fragment_fixture(partitioner, with_dataplane)
    treated, _ = fragment_fixture(partitioner, with_dataplane)
    report = treated.reoptimize(mode=mode)
    migration = report.migration.summary() if report.migration else {}
    probes_ok = report.migration is None or all(
        r.probed or not with_dataplane
        for r in report.migration.results if r.action == "executed"
    )
    probe_control = probe_batch(control)
    probe_treated = probe_batch(treated)
    return {
        "partitioner": partitioner,
        "mode": report.mode,
        "tenants": report.tenants,
        "stitched_before": report.stitched_before,
        "stitched_after": report.stitched_after,
        "stitch_reduction": report.stitch_reduction,
        "links_before": report.links_before,
        "links_after": report.links_after,
        "moves_planned": report.moves_planned,
        "moves_executed": migration.get("moves_executed", 0),
        "probes_ok": probes_ok,
        "probe_control": probe_control,
        "probe_treated": probe_treated,
        "spillover_reduction": round(
            probe_control["spill_rate"] - probe_treated["spill_rate"], 4
        ),
        "solve_s": round(report.solve_s, 4),
        "invariant_ok": (
            report.ok
            and treated.check_invariant() == []
            and control.check_invariant() == []
        ),
        "_stitched_longs": stitched_longs,
    }


# ----------------------------------------------------------------------
# Churn A/B comparison
# ----------------------------------------------------------------------
def spillover_counters(fabric: FabricOrchestrator) -> tuple[int, int]:
    counters = fabric.metrics_snapshot()["counters"]
    return int(counters.get("spillovers", 0)), int(counters.get("admitted", 0))


def run_churn_pair(
    partitioner: str, duration_s: float, with_dataplane: bool, mode: str
) -> dict:
    """Replay one seeded stream over two identical fabrics; one gets a
    periodic re-optimization cadence from the 60% mark on (the drift-gated
    loop an operator would run), the other is left to fragment."""
    events = synthesize_churn(churn_config(duration_s), rng=DEFAULT_SEED)
    cut = int(len(events) * 0.6)
    phase_a, phase_b = events[:cut], events[cut:]

    control = make_fabric(partitioner, with_dataplane)
    treated = make_fabric(partitioner, with_dataplane)
    FabricChurnEngine(control).replay(phase_a)
    FabricChurnEngine(treated).replay(phase_a)

    # A low benefit gate lets pure balance moves through (their squared-
    # utilization gain is small per move but compounds against spillover).
    min_benefit = 0.02
    first = treated.reoptimize(mode=mode, min_benefit=min_benefit)
    spill_a, admit_a = spillover_counters(control)

    # Phase B: the treated fabric re-optimizes between chunks — churn
    # keeps re-fragmenting, the cadence keeps repairing.
    chunks = 4
    size = max(1, len(phase_b) // chunks)
    passes_ok = first.ok
    moves = first.migration.executed if first.migration else 0
    for i in range(0, len(phase_b), size):
        FabricChurnEngine(control).replay(phase_b[i:i + size])
        FabricChurnEngine(treated).replay(phase_b[i:i + size])
        report = treated.reoptimize(mode=mode, min_benefit=min_benefit)
        passes_ok = passes_ok and report.ok
        moves += report.migration.executed if report.migration else 0

    def phase_b_rate(fabric: FabricOrchestrator) -> float:
        spills, admits = spillover_counters(fabric)
        db = admits - admit_a
        return (spills - spill_a) / db if db else 0.0

    control_rate = phase_b_rate(control)
    treated_rate = phase_b_rate(treated)
    return {
        "partitioner": partitioner,
        "events": len(events),
        "reopt": {
            "mode": first.mode,
            "stitched_before": first.stitched_before,
            "stitched_after": first.stitched_after,
            "moves_executed": moves,
            "solve_s": round(first.solve_s, 4),
            "ok": passes_ok,
        },
        "control_spillover_rate_b": round(control_rate, 4),
        "treated_spillover_rate_b": round(treated_rate, 4),
        "spillover_reduction_b": round(control_rate - treated_rate, 4),
        "control_stitched_final": control.summary()["stitched_tenants"],
        "treated_stitched_final": treated.summary()["stitched_tenants"],
        "invariant_ok": (
            control.check_invariant() == [] and treated.check_invariant() == []
        ),
    }


def run(duration_s: float, with_dataplane: bool, mode: str) -> dict:
    fixtures = []
    pairs = []
    for partitioner in ("hash", "least-backplane"):
        fixtures.append(run_fixture(partitioner, with_dataplane, mode))
        pairs.append(
            run_churn_pair(partitioner, duration_s, with_dataplane, mode)
        )
    return {
        "benchmark": "global-reoptimization",
        "seed": DEFAULT_SEED,
        "python": sys.version.split()[0],
        "duration_s": duration_s,
        "with_dataplane": with_dataplane,
        "fixtures": fixtures,
        "churn_pairs": pairs,
    }


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI guard: shorter streams, stitch-reduction + invariant "
             "+ probe assertions",
    )
    parser.add_argument(
        "--mode", choices=("auto", "ilp", "greedy"), default="auto",
        help="solver mode for every re-optimization pass",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_reopt.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    duration = 10.0 if args.smoke else 30.0
    report = run(duration_s=duration, with_dataplane=True, mode=args.mode)

    failed = False
    for row in report["fixtures"]:
        print(
            f"fixture[{row['partitioner']}] ({row['mode']}): "
            f"{row['tenants']} tenants, stitched {row['stitched_before']} -> "
            f"{row['stitched_after']}, {row['moves_executed']} moves, "
            f"probe spillover {row['probe_control']['spill_rate']:.2%} -> "
            f"{row['probe_treated']['spill_rate']:.2%}, "
            f"probes {'OK' if row['probes_ok'] else 'FAILED'}, "
            f"invariant {'OK' if row['invariant_ok'] else 'VIOLATED'}"
        )
        if not (row["invariant_ok"] and row["probes_ok"]):
            failed = True
        if args.smoke:
            if row["stitched_before"] == 0:
                print(
                    f"FAIL: fixture[{row['partitioner']}] never fragmented "
                    f"(0 stitched tenants before the pass)", file=sys.stderr,
                )
                failed = True
            elif row["stitched_after"] >= row["stitched_before"]:
                print(
                    f"FAIL: fixture[{row['partitioner']}] stitch count did "
                    f"not drop ({row['stitched_before']} -> "
                    f"{row['stitched_after']})", file=sys.stderr,
                )
                failed = True
            if row["spillover_reduction"] <= 0:
                print(
                    f"FAIL: fixture[{row['partitioner']}] probe spillover "
                    f"rate did not drop "
                    f"({row['probe_control']['spill_rate']:.2%} -> "
                    f"{row['probe_treated']['spill_rate']:.2%})",
                    file=sys.stderr,
                )
                failed = True
    for row in report["churn_pairs"]:
        print(
            f"churn[{row['partitioner']}]: {row['events']} events, "
            f"phase-B spillover {row['control_spillover_rate_b']:.2%} "
            f"(control) vs {row['treated_spillover_rate_b']:.2%} "
            f"(re-optimized), stitched at end "
            f"{row['control_stitched_final']} vs "
            f"{row['treated_stitched_final']}, "
            f"invariant {'OK' if row['invariant_ok'] else 'VIOLATED'}"
        )
        if not (row["invariant_ok"] and row["reopt"]["ok"]):
            failed = True

    for row in report["fixtures"]:
        row.pop("_stitched_longs", None)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {os.path.abspath(args.out)}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
