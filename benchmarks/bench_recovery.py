#!/usr/bin/env python
"""Durability benchmark: WAL append overhead and recovery time vs log length.

Replays the seeded controller-churn stream with a WAL at each fsync policy
(``off`` / ``batch`` / ``always``) and measures the journaling tax each
policy charges.  The overhead is measured *in situ*: the time spent inside
``commit_op`` (serialize + CRC + append + fsync) is accumulated during the
run and compared against the run's remaining (pure controller) time, so
both sides of the ratio see the same host load — wall-clock comparisons of
separate runs proved hopelessly noisy on shared machines.  Then the
controller is rebuilt from its durability directory at several log lengths
to show how recovery time scales with the number of replayed records.
Results land in ``BENCH_recovery.json``.

Run directly (no pytest needed):

    python benchmarks/bench_recovery.py            # full run + JSON report
    python benchmarks/bench_recovery.py --smoke    # CI regression guard

``--smoke`` replays a shorter stream and fails if the batched-fsync WAL
costs more than 10% on top of the bare controller work, if the journaled
run's final state diverges from the bare run's (the WAL must be
semantically invisible), or if recovery does not land digest-identical to
the state it is recovering.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.controller import ChurnConfig, ChurnEngine, SfcController, synthesize_churn
from repro.durability import ControllerDurability, recover_controller
from repro.rng import DEFAULT_SEED
from repro.traffic.workload import WorkloadConfig, make_instance

#: The CI guard's ceiling on batched-WAL throughput overhead.
SMOKE_MAX_BATCH_OVERHEAD_PCT = 10.0

WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)


def churn_config(duration_s: float) -> ChurnConfig:
    return ChurnConfig(
        duration_s=duration_s,
        arrival_rate_per_s=12.0,
        mean_lifetime_s=6.0,
        modify_fraction=0.25,
        workload=WORKLOAD,
    )


class _TimedJournal:
    """Duck-typed ``commit_op`` shim that accumulates time spent journaling
    (serialize + CRC + append + fsync), so one run yields both sides of the
    overhead ratio under identical host load."""

    def __init__(self, inner: ControllerDurability) -> None:
        self.inner = inner
        self.journal_s = 0.0

    def commit_op(self, controller, op, data):
        t0 = time.perf_counter()
        record = self.inner.commit_op(controller, op, data)
        self.journal_s += time.perf_counter() - t0
        return record


def churn_once(events, instance, directory=None, fsync="batch"):
    """Replay ``events`` once; returns
    ``(wall_s, journal_s, digest, committed ops)``.

    With ``directory`` set, a :class:`ControllerDurability` journals every
    committed op there (any previous run's files are cleared first) and
    ``journal_s`` is the time spent inside the journaling path.
    """
    controller = SfcController(instance, with_dataplane=True)
    durability = None
    timer = None
    if directory is not None:
        for name in os.listdir(directory):
            path = os.path.join(directory, name)
            if os.path.isfile(path):
                os.unlink(path)
        durability = ControllerDurability(
            directory, fsync=fsync, checkpoint_every=0
        )
        durability.attach(controller)
        timer = _TimedJournal(durability)
        controller.durability = timer
    t0 = time.perf_counter()
    ChurnEngine(controller).replay(events)
    wall_s = time.perf_counter() - t0
    committed = 0
    journal_s = 0.0
    if durability is not None:
        committed = durability.wal.last_lsn
        journal_s = timer.journal_s
        durability.close()
    return wall_s, journal_s, controller.state.digest(), committed


def measure_recovery(events, instance, log_lengths):
    """Journal the stream with fsync=batch, stopping at each target log
    length, and time a recovery from each resulting directory."""
    points = []
    for target in log_lengths:
        with tempfile.TemporaryDirectory() as directory:
            controller = SfcController(instance, with_dataplane=True)
            durability = ControllerDurability(
                directory, fsync="batch", checkpoint_every=0
            )
            durability.attach(controller)
            engine = ChurnEngine(controller)
            for event in events:
                engine.apply(event)
                if durability.wal.last_lsn >= target:
                    break
            live_digest = controller.state.digest()
            committed = durability.wal.last_lsn
            durability.close()

            t0 = time.perf_counter()
            recovered, report = recover_controller(directory)
            wall_ms = (time.perf_counter() - t0) * 1e3
            points.append({
                "log_records": committed,
                "replayed": report.replayed,
                "recover_ms": round(wall_ms, 2),
                "ok": bool(
                    report.ok and recovered.state.digest() == live_digest
                ),
            })
    return points


def run(duration_s: float, rounds: int = 5) -> dict:
    config = churn_config(duration_s)
    events = synthesize_churn(config, rng=DEFAULT_SEED)
    instance = make_instance(config.workload, max_recirculations=2, rng=DEFAULT_SEED)

    # One untimed replay to warm caches, one bare run for the baseline
    # throughput number, then ``rounds`` journaled runs per policy.  Each
    # journaled run measures its own journaling time in situ; the overhead
    # per policy is the minimum journal/controller ratio across rounds (the
    # round least contaminated by host noise).
    churn_once(events, instance)
    bare_wall, _, bare_digest, _ = churn_once(events, instance)
    ratio = {name: float("inf") for name in ("off", "batch", "always")}
    best = {name: float("inf") for name in ("off", "batch", "always")}
    digests = {}
    committed = 0
    policies = {}
    with tempfile.TemporaryDirectory() as directory:
        for _ in range(rounds):
            for fsync in ("off", "batch", "always"):
                wall, journal, digests[fsync], committed = churn_once(
                    events, instance, directory=directory, fsync=fsync
                )
                best[fsync] = min(best[fsync], wall)
                ratio[fsync] = min(ratio[fsync], journal / (wall - journal))
        # One final batch run leaves its WAL in the directory for the
        # recovery probe (the measurement loop ended on fsync=always).
        _, _, batch_digest, committed = churn_once(
            events, instance, directory=directory, fsync="batch"
        )
        batch_digest_ok = batch_digest == bare_digest
        recovered, report = recover_controller(directory)
        recovered_ok = bool(
            report.ok and recovered.state.digest() == batch_digest
        )
        for fsync in ("off", "batch", "always"):
            policies[fsync] = {
                "events_per_sec": round(len(events) / best[fsync], 1),
                "overhead_pct": round(100.0 * ratio[fsync], 2),
                "committed_ops": committed,
                "digest_ok": digests[fsync] == bare_digest,
            }
        policies["batch"]["recover_ms"] = round(report.wall_s * 1e3, 2)
        policies["batch"]["recovered_ok"] = recovered_ok
    base_eps = len(events) / bare_wall

    max_log = max(policies["batch"]["committed_ops"], 1)
    lengths = sorted({max(1, max_log // 8), max(1, max_log // 3), max_log})
    recovery_curve = measure_recovery(events, instance, lengths)

    return {
        "benchmark": "recovery",
        "seed": DEFAULT_SEED,
        "python": sys.version.split()[0],
        "duration_s": duration_s,
        "events": len(events),
        "baseline_events_per_sec": round(base_eps, 1),
        "policies": policies,
        "recovery_vs_log_length": recovery_curve,
        "batch_digest_ok": batch_digest_ok,
        "recovered_ok": recovered_ok,
    }


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: shorter stream, batch-overhead + digest checks",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_recovery.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    duration = 15.0 if args.smoke else 45.0
    report = run(duration_s=duration)

    print(f"baseline (no WAL): {report['baseline_events_per_sec']:,.0f} events/s")
    for fsync, row in report["policies"].items():
        print(
            f"  fsync={fsync:<6} {row['events_per_sec']:>8,.0f} events/s "
            f"({row['overhead_pct']:+.1f}% overhead, "
            f"{row['committed_ops']} ops journaled)"
        )
    for point in report["recovery_vs_log_length"]:
        print(
            f"  recover {point['log_records']:>4} records: "
            f"{point['recover_ms']:.1f} ms ({'ok' if point['ok'] else 'DIVERGED'})"
        )

    failures = []
    if not report["batch_digest_ok"]:
        failures.append("journaled run diverged from the bare run "
                        "(the WAL must be semantically invisible)")
    if not report["recovered_ok"]:
        failures.append("recovery did not land digest-identical")
    if any(not point["ok"] for point in report["recovery_vs_log_length"]):
        failures.append("a recovery point diverged or reported problems")
    if args.smoke:
        overhead = report["policies"]["batch"]["overhead_pct"]
        if overhead > SMOKE_MAX_BATCH_OVERHEAD_PCT:
            failures.append(
                f"batched-WAL overhead {overhead:.1f}% exceeds the "
                f"{SMOKE_MAX_BATCH_OVERHEAD_PCT:.0f}% ceiling"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if args.smoke:
        print(
            f"smoke ok: batch fsync costs "
            f"{report['policies']['batch']['overhead_pct']:.1f}% "
            f"(ceiling {SMOKE_MAX_BATCH_OVERHEAD_PCT:.0f}%), recovery "
            f"digest-identical"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
