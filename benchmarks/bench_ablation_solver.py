"""Ablation — own simplex/B&B backend vs scipy-HiGHS on the same models.

Checks (a) both backends reach the same optimum on small placement MILPs and
LP relaxations, and (b) times each, documenting why the HiGHS adapter is the
default for large instances.
"""

import pytest

from repro.core.ilp import build_placement_model
from repro.lp import SolveStatus
from repro.lp import solve as lp_solve
from repro.traffic import WorkloadConfig, make_instance
from repro.core.spec import SwitchSpec


def _small_instance(seed):
    switch = SwitchSpec(
        stages=3, blocks_per_stage=6, block_bits=64_000, rule_bits=64,
        capacity_gbps=100.0,
    )
    return make_instance(
        WorkloadConfig(num_sfcs=3, num_types=4, avg_chain_length=2,
                       chain_length_spread=1),
        switch=switch,
        max_recirculations=1,
        rng=seed,
    )


@pytest.mark.parametrize("backend", ["own", "scipy"])
def test_lp_relaxation_backend(benchmark, backend):
    instance = _small_instance(4)
    ilp = build_placement_model(instance)

    solution = benchmark(lambda: lp_solve(ilp.model, backend=backend, relax=True))
    assert solution.status is SolveStatus.OPTIMAL
    reference = lp_solve(ilp.model, backend="scipy", relax=True)
    assert abs(solution.objective - reference.objective) < 1e-5


@pytest.mark.parametrize("backend", ["own", "scipy"])
def test_milp_backend(benchmark, backend):
    instance = _small_instance(4)
    ilp = build_placement_model(instance)

    solution = benchmark.pedantic(
        lambda: lp_solve(ilp.model, backend=backend, time_limit=120.0),
        rounds=1,
        iterations=1,
    )
    assert solution.status in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)
    reference = lp_solve(ilp.model, backend="scipy")
    if solution.status is SolveStatus.OPTIMAL:
        assert abs(solution.objective - reference.objective) < 1e-5
