"""Microbenchmarks of the functional data plane itself.

Not a paper figure: measures the simulator's packet-processing rate and the
placement state's probe cost, so regressions in the hot paths (table lookup,
``PipelineState.fits``) are visible over time.
"""

from repro.core.state import PipelineState
from repro.experiments.fig4_throughput import build_demo_pipeline
from repro.traffic import WorkloadConfig, make_instance
from repro.traffic.flows import FlowGenerator


def test_pipeline_packet_rate(benchmark):
    pipeline, _virt = build_demo_pipeline(seed=1)
    gen = FlowGenerator(1)
    flows = gen.flows(64, tenant_id=1)

    def process():
        # Re-arm per-round: recirculation state is per-packet, so packets
        # must be fresh copies each time.
        batch = gen.packets(flows, 64, size_bytes=64)
        return pipeline.process_batch(batch)

    results = benchmark(process)
    assert all(r.delivered or r.packet.dropped for r in results)


def test_state_fits_probe_rate(benchmark):
    instance = make_instance(WorkloadConfig(num_sfcs=30), rng=3)
    state = PipelineState(instance)
    for i in range(instance.num_types):
        state.add_logical_nf(i, i % instance.switch.stages, 500)

    def probe():
        hits = 0
        for i in range(instance.num_types):
            for s in range(instance.switch.stages):
                hits += state.fits(i, s, 700)
        return hits

    hits = benchmark(probe)
    assert hits > 0
