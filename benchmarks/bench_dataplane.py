"""Microbenchmarks of the functional data plane itself.

Not a paper figure: measures the simulator's packet-processing rate and the
placement state's probe cost, so regressions in the hot paths (table lookup,
``PipelineState.fits``) are visible over time.  The indexed-vs-linear table
lookup pair tracks the lookup engine's edge directly;
``benchmarks/bench_lookup.py`` is the standalone (no pytest) sweep of the
same workload across entry counts.
"""

from repro.core.state import PipelineState
from repro.experiments.fig4_throughput import build_demo_pipeline
from repro.rng import DEFAULT_SEED, make_rng
from repro.traffic import WorkloadConfig, make_instance
from repro.traffic.flows import FlowGenerator

from benchmarks.bench_lookup import build_entries, build_packets, build_table


def test_pipeline_packet_rate(benchmark):
    pipeline, _virt = build_demo_pipeline(seed=1)
    gen = FlowGenerator(1)
    flows = gen.flows(64, tenant_id=1)

    def process():
        # Re-arm per-round: recirculation state is per-packet, so packets
        # must be fresh copies each time.
        batch = gen.packets(flows, 64, size_bytes=64)
        return pipeline.process_batch(batch)

    results = benchmark(process)
    assert all(r.delivered or r.packet.dropped for r in results)


def test_state_fits_probe_rate(benchmark):
    instance = make_instance(WorkloadConfig(num_sfcs=30), rng=3)
    state = PipelineState(instance)
    for i in range(instance.num_types):
        state.add_logical_nf(i, i % instance.switch.stages, 500)

    def probe():
        hits = 0
        for i in range(instance.num_types):
            for s in range(instance.switch.stages):
                hits += state.fits(i, s, 700)
        return hits

    hits = benchmark(probe)
    assert hits > 0


def _lookup_workload(num_entries=2000):
    rng = make_rng(DEFAULT_SEED + num_entries)
    entries = build_entries(num_entries, rng)
    packets = build_packets(128, num_entries, rng)
    return entries, packets


def test_table_lookup_indexed_rate(benchmark):
    entries, packets = _lookup_workload()
    table = build_table(entries, indexed=True)

    def sweep():
        for p in packets:
            table.lookup(p)
        return table.hits + table.misses

    assert benchmark(sweep) > 0


def test_table_lookup_linear_rate(benchmark):
    entries, packets = _lookup_workload()
    table = build_table(entries, indexed=False)

    def sweep():
        for p in packets:
            table.lookup(p)
        return table.hits + table.misses

    assert benchmark(sweep) > 0
