#!/usr/bin/env python
"""Dataplane benchmarks: interpreter microbenches + the compiled fast path.

Two halves:

* **pytest-benchmark microbenches** (run under ``pytest benchmarks/``):
  the simulator's packet rate, ``PipelineState.fits`` probe cost, and the
  indexed-vs-linear lookup pair, so regressions in the hot paths stay
  visible over time.
* **the standalone compiled-vs-interpreted sweep** (no pytest needed):
  builds a multi-tenant fabric-shaped workload — N tenants, each with the
  Fig. 4 chain (firewall, traffic classifier, load balancer, router) and
  64 rules per NF — and measures ``process_batch`` throughput with and
  without a :class:`repro.fastpath.FastPathEngine` attached, recording
  everything into ``BENCH_dataplane.json``:

      python benchmarks/bench_dataplane.py            # full sweep + JSON
      python benchmarks/bench_dataplane.py --smoke    # CI guard

  ``--smoke`` exits non-zero unless the compiled path beats the
  interpreter by >= 5x on the small workload; the full sweep asserts the
  >= 10x acceptance bar on the 10k-entry case.  Both verify a sample
  batch bit-identical against the interpreter before timing anything.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script: make src/ importable
    _root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    sys.path.insert(0, os.path.join(_root, "src"))
    sys.path.insert(0, _root)

from repro.core.state import PipelineState
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.experiments.fig4_throughput import CHAIN, build_demo_pipeline
from repro.core.spec import SwitchSpec
from repro.nfs import get_nf, install_physical_nf
from repro.rng import DEFAULT_SEED, make_rng
from repro.telemetry.metrics import Timer
from repro.traffic import WorkloadConfig, make_instance
from repro.traffic.flows import FlowGenerator

from benchmarks.bench_lookup import build_entries, build_packets, build_table


# ---------------------------------------------------------------------------
# pytest-benchmark microbenches
# ---------------------------------------------------------------------------
def test_pipeline_packet_rate(benchmark):
    pipeline, _virt = build_demo_pipeline(seed=1)
    gen = FlowGenerator(1)
    flows = gen.flows(64, tenant_id=1)

    def process():
        # Re-arm per-round: recirculation state is per-packet, so packets
        # must be fresh copies each time.
        batch = gen.packets(flows, 64, size_bytes=64)
        return pipeline.process_batch(batch)

    results = benchmark(process)
    assert all(r.delivered or r.packet.dropped for r in results)


def test_state_fits_probe_rate(benchmark):
    instance = make_instance(WorkloadConfig(num_sfcs=30), rng=3)
    state = PipelineState(instance)
    for i in range(instance.num_types):
        state.add_logical_nf(i, i % instance.switch.stages, 500)

    def probe():
        hits = 0
        for i in range(instance.num_types):
            for s in range(instance.switch.stages):
                hits += state.fits(i, s, 700)
        return hits

    hits = benchmark(probe)
    assert hits > 0


def _lookup_workload(num_entries=2000):
    rng = make_rng(DEFAULT_SEED + num_entries)
    entries = build_entries(num_entries, rng)
    packets = build_packets(128, num_entries, rng)
    return entries, packets


def test_table_lookup_indexed_rate(benchmark):
    entries, packets = _lookup_workload()
    table = build_table(entries, indexed=True)

    def sweep():
        for p in packets:
            table.lookup(p)
        return table.hits + table.misses

    assert benchmark(sweep) > 0


def test_table_lookup_linear_rate(benchmark):
    entries, packets = _lookup_workload()
    table = build_table(entries, indexed=False)

    def sweep():
        for p in packets:
            table.lookup(p)
        return table.hits + table.misses

    assert benchmark(sweep) > 0


# ---------------------------------------------------------------------------
# Compiled-vs-interpreted sweep (standalone)
# ---------------------------------------------------------------------------
#: Rules per NF per tenant; with the 4-NF chain a tenant carries 256 rules.
RULES_PER_NF = 64


def build_multitenant_pipeline(num_tenants: int, seed: int):
    """A 4-stage pipeline hosting ``num_tenants`` virtualized Fig. 4
    chains — the SFP sharing model at benchmark scale.  Returns the
    pipeline and the tenant IDs."""
    rng = make_rng(seed)
    spec = SwitchSpec(stages=4, blocks_per_stage=64)
    pipeline = SwitchPipeline(spec=spec, max_passes=4)
    for stage, name in enumerate(CHAIN):
        install_physical_nf(pipeline, name, stage)
    virtualizer = SFCVirtualizer(pipeline)
    tenants = list(range(1, num_tenants + 1))
    for tenant_id in tenants:
        nfs = tuple(
            LogicalNF(
                nf_name=name,
                rules=tuple(get_nf(name).generate_rules(rng, RULES_PER_NF)),
            )
            for name in CHAIN
        )
        virtualizer.install_sfc(LogicalSFC(tenant_id=tenant_id, nfs=nfs))
    return pipeline, tenants


def make_multitenant_batch(tenants, num_packets: int, seed: int):
    """``num_packets`` packets spread round-robin across the tenants (the
    per-tenant slices are contiguous flows, like real per-tenant traffic)."""
    per_tenant = max(1, num_packets // len(tenants))
    batch = []
    for tenant_id in tenants:
        gen = FlowGenerator(seed + tenant_id)
        flows = gen.flows(8, tenant_id=tenant_id)
        batch.extend(gen.packets(flows, per_tenant, size_bytes=64))
    return batch[:num_packets] if len(batch) > num_packets else batch


def _result_key(r):
    p = r.packet
    return (
        p.tenant_id, p.src_ip, p.dst_ip, p.src_port, p.dst_port,
        p.protocol, p.dscp, p.pass_id, p.recirculate, p.dropped,
        p.egress_port, r.passes, r.latency_ns,
    )


def verify_bit_identity(num_tenants: int, num_packets: int, seed: int, backend: str) -> None:
    """Differential guard run before any timing: compiled results must be
    bit-identical to the interpreter on this workload."""
    from repro.fastpath import FastPathEngine

    ref_pipeline, tenants = build_multitenant_pipeline(num_tenants, seed)
    got_pipeline, _ = build_multitenant_pipeline(num_tenants, seed)
    FastPathEngine.attach(got_pipeline, backend=backend)
    ref = ref_pipeline.process_batch(make_multitenant_batch(tenants, num_packets, seed))
    got = got_pipeline.process_batch(make_multitenant_batch(tenants, num_packets, seed))
    mismatches = sum(
        1 for a, b in zip(ref, got) if _result_key(a) != _result_key(b)
    )
    if mismatches:
        raise AssertionError(
            f"compiled path diverged from the interpreter on "
            f"{mismatches}/{len(ref)} packets (backend={backend})"
        )


def bench_case(num_tenants: int, num_packets: int, reps: int, seed: int) -> dict:
    """Best-of-``reps`` pps for the interpreter and each available compiled
    backend on one workload size."""
    from repro.fastpath import HAS_NUMPY, FastPathEngine

    pipeline, tenants = build_multitenant_pipeline(num_tenants, seed)
    modes = [("interpreted", None)]
    if HAS_NUMPY:
        modes.append(("compiled_numpy", "numpy"))
    modes.append(("compiled_python", "python"))

    pps: dict[str, float] = {}
    for mode, backend in modes:
        if backend is None:
            pipeline.fastpath = None
        else:
            engine = FastPathEngine.attach(pipeline, backend=backend)
            # Warm the plan cache: the one-off compile is control-plane
            # work, not packet cost (it is amortized over every batch).
            pipeline.process_batch(make_multitenant_batch(tenants, 64, seed))
        best = float("inf")
        for rep in range(reps):
            batch = make_multitenant_batch(tenants, num_packets, seed + rep)
            with Timer() as timer:
                pipeline.process_batch(batch)
            best = min(best, timer.elapsed_s / len(batch))
        pps[mode] = 1.0 / best
        if backend is not None:
            engine.detach()
    compiled = pps.get("compiled_numpy", pps["compiled_python"])
    return {
        "tenants": num_tenants,
        "entries": pipeline.total_entries(),
        "batch_packets": num_packets,
        "reps": reps,
        "packets_per_sec": {m: round(v, 1) for m, v in pps.items()},
        "speedup": round(compiled / pps["interpreted"], 2),
    }


#: Acceptance bars (compiled/interpreted pps): the smoke workload must
#: clear 5x in CI; the full 10k-entry sweep case must clear 10x.
SMOKE_MIN_SPEEDUP = 5.0
FULL_MIN_SPEEDUP = 10.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI guard: one small workload, >= 5x assertion",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_dataplane.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    from repro.fastpath import HAS_NUMPY

    backend = "numpy" if HAS_NUMPY else "python"
    if args.smoke:
        cases, reps, verify_packets = [(8, 1024)], 3, 512
        min_speedup = SMOKE_MIN_SPEEDUP
    else:
        # 40 tenants x 4 NFs x 64 rules = 10,240 installed entries: the
        # acceptance workload.
        cases, reps, verify_packets = [(8, 2048), (20, 4096), (40, 8192)], 3, 1024
        min_speedup = FULL_MIN_SPEEDUP

    verify_bit_identity(cases[-1][0], verify_packets, args.seed, backend)
    print(
        f"bit-identity verified on {verify_packets} packets "
        f"({cases[-1][0]} tenants, backend={backend})"
    )

    results = []
    for num_tenants, num_packets in cases:
        case = bench_case(num_tenants, num_packets, reps, args.seed)
        results.append(case)
        rates = case["packets_per_sec"]
        line = (
            f"{case['entries']:>6} entries, {num_tenants:>3} tenants: "
            f"interpreted {rates['interpreted']:>10,.0f} pps"
        )
        for mode in ("compiled_numpy", "compiled_python"):
            if mode in rates:
                line += f"   {mode.split('_')[1]} {rates[mode]:>12,.0f} pps"
        print(line + f"   speedup {case['speedup']:.1f}x")

    report = {
        "benchmark": "dataplane-fastpath",
        "seed": args.seed,
        "python": sys.version.split()[0],
        "backend": backend,
        "smoke": args.smoke,
        "min_speedup": min_speedup,
        "cases": results,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")

    worst = results[-1]
    if worst["speedup"] < min_speedup:
        print(
            f"FAIL: compiled path {worst['speedup']}x < {min_speedup}x on "
            f"the {worst['entries']}-entry workload",
            file=sys.stderr,
        )
        return 1
    print(f"ok: compiled >= {min_speedup}x interpreted "
          f"({worst['speedup']}x on {worst['entries']} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
