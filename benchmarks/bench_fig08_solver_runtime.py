"""Fig. 8 — execution time of SFP-IP vs SFP-Appro. varying L.

Shape asserted: the exact IP's runtime grows much faster with L than the
LP-rounding's (super-exponential vs polynomial in the paper); at the largest
L the IP is the slower of the two (or hit its time limit, which proves the
point even harder).
"""

import numpy as np

from repro.experiments import fig8_solver_runtime


def test_fig8(run_once, paper_scale):
    kwargs = (
        dict(l_values=(10, 20, 30, 40, 50), ilp_time_limit=300.0)
        if paper_scale
        else dict(l_values=(6, 12, 18), ilp_time_limit=60.0)
    )
    result = run_once(fig8_solver_runtime.run, seed=3, **kwargs)
    result.print()
    ilp = np.array(result.column("ilp_seconds"))
    appro = np.array(result.column("appro_seconds"))
    hit = np.array(result.column("ilp_hit_limit"))
    # The exact IP is the slower solver at the largest L (or hit its limit,
    # which proves the point even harder).
    assert ilp[-1] > appro[-1] or hit[-1] > 0
    if paper_scale:
        # Growth-rate comparison is only meaningful once L is large enough
        # for branch-and-bound to dominate (the paper's super-exponential
        # regime); at quick scale solver startup noise swamps it.
        ilp_growth = ilp[-1] / max(ilp[0], 1e-3)
        appro_growth = appro[-1] / max(appro[0], 1e-3)
        assert (
            ilp_growth > appro_growth or hit.any()
        ), "IP runtime must blow up faster than the approximation's"
    # The approximation's objective stays within reach of the IP's.
    obj_ilp = np.array(result.column("ilp_objective"))
    obj_appro = np.array(result.column("appro_objective"))
    assert (obj_appro <= obj_ilp + 1e-6).all() or hit.any()
    assert (obj_appro >= 0.7 * obj_ilp - 1e-6).all()
