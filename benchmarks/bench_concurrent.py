#!/usr/bin/env python
"""Concurrent front-end benchmark: intent throughput vs worker count.

Drives the same admit-then-evict intent load through a durable fabric
(``fsync="always"`` — every op pays its fdatasync before the caller sees
the result) two ways per fabric size:

* **serial** — one thread calling the public lifecycle methods in a loop,
  the pre-front-end baseline;
* **pool** — the ``ShardWorkerPool`` with one worker per switch, intents
  flowing through the ordered ``IntentQueue``.

The workers win not by CPU parallelism (CPython, one core) but by
overlapping fdatasync waits: the GIL is released inside the syscall, so
while one shard's WAL flush is parked in the kernel the other workers
keep admitting, and concurrent committers on the shared fabric journal
ride the WAL's leader-based group commit.  Results go to
``BENCH_concurrent.json``.

The run also snapshots the live WAL directory *mid-load* (a simulated
crash, torn tail and all) and recovers from the copy: the recovered
fabric must replay cleanly, pass the invariant audit, hold exactly the
tenant set implied by the committed record prefix, and recover to the
same digest twice (the committed-LSN oracle).

Run directly (no pytest needed):

    python benchmarks/bench_concurrent.py            # full sweep + JSON report
    python benchmarks/bench_concurrent.py --smoke    # CI regression guard

``--smoke`` runs a shorter load on 1- and 2-switch fabrics and exits
non-zero if the 2-worker pool is slower than the 1-worker pool (beyond
tolerance), any invariant breaks, or crash recovery diverges.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.core.spec import SFC, SwitchSpec
from repro.durability.checkpoint import FabricDurability
from repro.durability.recover import recover_fabric
from repro.durability.wal import scan_wal
from repro.fabric import FabricOrchestrator, FabricTopology
from repro.frontend import Intent, ShardWorkerPool

#: The 2-worker pool must not be slower than the 1-worker pool (with a
#: little scheduling-noise tolerance) — the CI scaling guard.
SMOKE_SCALING_FLOOR = 0.9

#: Roomy per-switch spec: every admit in the load fits, so serial and
#: concurrent runs execute the identical committed op sequence.
SPEC = SwitchSpec(
    stages=4, blocks_per_stage=10, block_bits=6400, rule_bits=64,
    capacity_gbps=400.0,
)


def make_load(num_tenants: int) -> list[Intent]:
    """``num_tenants`` admits followed by their evicts — 2N intents whose
    per-tenant order (admit before evict) the queue must preserve."""
    def chain(tenant: int) -> SFC:
        return SFC(
            name=f"tenant-{tenant}",
            nf_types=(1, 2, 3),
            rules=(8, 8, 8),
            bandwidth_gbps=1.0,
            tenant_id=tenant,
        )

    admits = [
        Intent(kind="admit", tenant_id=t, sfc=chain(t))
        for t in range(num_tenants)
    ]
    evicts = [Intent(kind="evict", tenant_id=t) for t in range(num_tenants)]
    return admits + evicts


def make_fabric(num_switches: int, wal_dir: str) -> FabricOrchestrator:
    topology = FabricTopology.full_mesh(num_switches, spec=SPEC)
    fabric = FabricOrchestrator(topology, num_types=3, with_dataplane=False)
    FabricDurability(
        wal_dir, fsync="always", batch_every=64, checkpoint_every=0
    ).attach(fabric)
    return fabric


def run_serial(num_switches: int, load: list[Intent], wal_dir: str) -> dict:
    """Baseline: the same intents through the public methods, one thread.
    ``journal_digests`` is off, matching what the pool journals — the two
    modes do identical durable work per op."""
    fabric = make_fabric(num_switches, wal_dir)
    fabric.journal_digests = False
    t0 = time.perf_counter()
    for intent in load:
        if intent.kind == "admit":
            fabric.admit(intent.sfc)
        else:
            fabric.evict(intent.tenant_id)
    elapsed = time.perf_counter() - t0
    fabric.durability.wal.close()
    return {
        "mode": "serial",
        "workers": 1,
        "switches": num_switches,
        "events": len(load),
        "events_per_sec": round(len(load) / elapsed, 1),
        "escalated": None,
        "invariant_ok": fabric.check_invariant() == [],
    }


def run_pool(
    num_switches: int,
    load: list[Intent],
    wal_dir: str,
    crash_copy_dir: str | None = None,
) -> dict:
    """The concurrent front end: one worker per switch.  When
    ``crash_copy_dir`` is given, the WAL directory is snapshotted while
    the load is in full flight (the simulated crash)."""
    fabric = make_fabric(num_switches, wal_dir)
    pool = ShardWorkerPool(fabric).start()
    snapshot_taken = threading.Event()

    def snapshot_mid_load() -> None:
        # Wait for the load to be genuinely mid-flight, then copy.
        while fabric.durability.wal.last_lsn < len(load) // 3:
            time.sleep(0.001)
        shutil.copytree(wal_dir, crash_copy_dir)
        snapshot_taken.set()

    copier = None
    if crash_copy_dir is not None:
        copier = threading.Thread(target=snapshot_mid_load, daemon=True)
        copier.start()

    t0 = time.perf_counter()
    tickets = [pool.submit(intent) for intent in load]
    for ticket in tickets:
        ticket.result(timeout=120.0)
    elapsed = time.perf_counter() - t0
    pool.stop(timeout=60.0)
    if copier is not None:
        copier.join(timeout=60.0)
        assert snapshot_taken.is_set(), "crash snapshot never happened"
    fabric.durability.wal.close()
    return {
        "mode": "pool",
        "workers": pool.num_workers,
        "switches": num_switches,
        "events": len(load),
        "events_per_sec": round(len(load) / elapsed, 1),
        "escalated": sum(w.escalated for w in pool.workers),
        "invariant_ok": fabric.check_invariant() == [],
    }


def check_crash_recovery(crash_dir: str) -> dict:
    """Recover the mid-load snapshot and hold it to the committed-LSN
    oracle: the recovered tenant set must be exactly what the scanned
    record prefix implies, and recovery must be deterministic."""
    scan = scan_wal(os.path.join(crash_dir, "fabric.wal.jsonl"))
    expected_live: set[int] = set()
    for record in scan.records:
        if record.op == "admit":
            expected_live.add(record.data["tenant_id"])
        elif record.op == "evict":
            expected_live.discard(record.data["tenant_id"])
    recovered, report = recover_fabric(crash_dir, with_dataplane=False)
    digest = recovered.digest()
    # Recover the same prefix again (before the first recovery's re-arm
    # checkpoint compacts it, recovery replays the identical records).
    tenants_match = set(recovered.tenants) == expected_live
    return {
        "committed_lsn": scan.last_lsn,
        "torn_bytes": scan.dropped_bytes,
        "replayed": report.replayed,
        "recovery_ok": report.ok,
        "tenants_match_committed_prefix": tenants_match,
        "invariant_ok": recovered.check_invariant() == [],
        "digest": digest,
    }


def run(num_tenants: int, switch_counts) -> dict:
    load_size = 2 * num_tenants
    rows = []
    crash = None
    with tempfile.TemporaryDirectory() as scratch:
        for num_switches in switch_counts:
            serial_dir = os.path.join(scratch, f"serial-{num_switches}")
            pool_dir = os.path.join(scratch, f"pool-{num_switches}")
            crash_dir = (
                os.path.join(scratch, "crash-copy")
                if num_switches == max(switch_counts)
                else None
            )
            rows.append(
                run_serial(num_switches, make_load(num_tenants), serial_dir)
            )
            rows.append(
                run_pool(
                    num_switches, make_load(num_tenants), pool_dir, crash_dir
                )
            )
            if crash_dir is not None:
                crash = check_crash_recovery(crash_dir)
    return {
        "benchmark": "concurrent-frontend",
        "python": sys.version.split()[0],
        "fsync": "always",
        "tenants": num_tenants,
        "events_per_run": load_size,
        "rows": rows,
        "crash_recovery": crash,
    }


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: short load, scaling + invariant + recovery",
    )
    parser.add_argument(
        "--tenants", type=int, default=None,
        help="tenants per run (default: 60 smoke / 250 full)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_concurrent.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    num_tenants = args.tenants or (60 if args.smoke else 250)
    switch_counts = (1, 2) if args.smoke else (1, 2, 4)
    report = run(num_tenants, switch_counts)

    failed = False
    pool_rates = {}
    for row in report["rows"]:
        print(
            f"{row['mode']:>6} x{row['workers']} worker(s), "
            f"{row['switches']} switch(es): {row['events']} events, "
            f"{row['events_per_sec']:,.0f} events/s, "
            f"invariant {'OK' if row['invariant_ok'] else 'VIOLATED'}"
        )
        if not row["invariant_ok"]:
            failed = True
        if row["mode"] == "pool":
            pool_rates[row["workers"]] = row["events_per_sec"]

    if 1 in pool_rates and 2 in pool_rates:
        scaling = pool_rates[2] / pool_rates[1]
        print(f"2-worker/1-worker pool scaling: {scaling:.2f}x")
        if scaling < SMOKE_SCALING_FLOOR:
            print(
                f"FAIL: 2-worker pool is {scaling:.2f}x the 1-worker pool "
                f"(floor {SMOKE_SCALING_FLOOR})",
                file=sys.stderr,
            )
            failed = True

    crash = report["crash_recovery"]
    if crash is not None:
        print(
            f"crash @ lsn {crash['committed_lsn']} "
            f"({crash['torn_bytes']} torn bytes): replayed "
            f"{crash['replayed']}, recovery "
            f"{'OK' if crash['recovery_ok'] else 'FAILED'}, tenants "
            f"{'match' if crash['tenants_match_committed_prefix'] else 'DIVERGED'}, "
            f"invariant {'OK' if crash['invariant_ok'] else 'VIOLATED'}"
        )
        if not (
            crash["recovery_ok"]
            and crash["tenants_match_committed_prefix"]
            and crash["invariant_ok"]
        ):
            failed = True
    else:
        print("FAIL: crash-recovery check never ran", file=sys.stderr)
        failed = True

    if failed:
        print("FAIL: concurrent front-end guard violated", file=sys.stderr)
        return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if args.smoke:
        best = max(pool_rates.values())
        print(f"smoke ok: up to {best:,.0f} intents/s through the pool")
    return 0


if __name__ == "__main__":
    sys.exit(main())
