"""Fig. 4 — SFP vs DPDK throughput over packet sizes.

Shape asserted: SFP saturates the 100 Gbps sender at every size; DPDK only
reaches line rate at 1500 B and is >=10x slower at 64 B.
"""

from repro.experiments import fig4_throughput


def test_fig4(run_once):
    result = run_once(fig4_throughput.run, seed=1)
    result.print()
    sfp = result.column("sfp_gbps")
    dpdk = result.column("dpdk_gbps")
    sizes = result.column("packet_bytes")
    assert all(abs(v - 100.0) < 1e-6 for v in sfp), "SFP must saturate all sizes"
    assert result.rows[0]["speedup"] >= 10.0, "paper: >=10x at 64 B"
    # DPDK monotone in packet size, line rate only at the largest size.
    assert all(a <= b + 1e-9 for a, b in zip(dpdk, dpdk[1:]))
    assert dpdk[-1] == 100.0 and all(v < 100.0 for v in dpdk[:-1])
    assert sizes[0] == 64 and sizes[-1] == 1500
