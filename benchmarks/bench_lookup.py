#!/usr/bin/env python
"""Lookup-engine benchmark: indexed fast path vs. reference linear scan.

Builds SFP-shaped tables — ``(tenant_id, pass_id)`` exact prefix, an LPM
destination route, and a small ternary/range residue — at several entry
counts, measures single-table lookup throughput on both engines, and a
whole-pipeline ``process_batch`` rate, then records everything into
``BENCH_lookup.json``.

Run directly (no pytest needed):

    python benchmarks/bench_lookup.py            # full sweep + JSON report
    python benchmarks/bench_lookup.py --smoke    # CI regression guard

``--smoke`` exits non-zero if the indexed path fails to beat the linear
scan on the 10k-entry case — the floor below which the engine would be
pointless.  The full sweep asserts the >= 10x acceptance bar instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.dataplane.packet import Packet
from repro.telemetry.metrics import Timer
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.rng import DEFAULT_SEED, make_rng

KEY = (
    MatchField("tenant_id", MatchKind.EXACT),
    MatchField("pass_id", MatchKind.EXACT),
    MatchField("dst_ip", MatchKind.LPM),
    MatchField("dst_port", MatchKind.RANGE),
)

#: Fraction of entries carrying a range spec (the unindexable residue).
RESIDUE_FRACTION = 0.02


def build_entries(num_entries: int, rng) -> list[TableEntry]:
    """Tenant-sharded rules: every tenant owns a handful of routes per pass,
    exactly the shape §IV's virtualization produces."""
    num_tenants = max(1, num_entries // 8)
    entries = []
    for i in range(num_entries):
        tenant = int(rng.integers(0, num_tenants))
        pass_id = int(rng.integers(1, 5))
        if rng.random() < RESIDUE_FRACTION:
            lo = int(rng.integers(0, 60000))
            match = {"tenant_id": tenant, "dst_port": (lo, lo + 1024)}
        else:
            prefix = int(rng.integers(0, 1 << 32)) & 0xFFFFFF00
            match = {
                "tenant_id": tenant,
                "pass_id": pass_id,
                "dst_ip": (prefix, 24),
            }
        entries.append(
            TableEntry(
                match=match,
                action="permit",
                params={"tag": i},
                priority=int(rng.integers(0, 4)),
            )
        )
    return entries


def build_table(entries: list[TableEntry], indexed: bool) -> MatchActionTable:
    table = MatchActionTable("bench", key=KEY, indexed=indexed)
    table.insert_many(entries)
    return table


def build_packets(num_packets: int, num_entries: int, rng) -> list[Packet]:
    num_tenants = max(1, num_entries // 8)
    return [
        Packet(
            tenant_id=int(rng.integers(0, num_tenants)),
            pass_id=int(rng.integers(1, 5)),
            dst_ip=int(rng.integers(0, 1 << 32)),
            dst_port=int(rng.integers(0, 65536)),
        )
        for _ in range(num_packets)
    ]


def measure_lookups_per_sec(
    table: MatchActionTable, packets: list[Packet], min_time_s: float = 0.25
) -> float:
    """Lookups per second, timed over at least ``min_time_s`` of work."""
    lookup = table.lookup
    done = 0
    timer = Timer()
    while True:
        for p in packets:
            lookup(p)
        done += len(packets)
        elapsed = timer.elapsed_s
        if elapsed >= min_time_s:
            return done / elapsed


def bench_table_sizes(sizes, min_time_s: float = 0.25) -> list[dict]:
    rows = []
    for size in sizes:
        rng = make_rng(DEFAULT_SEED + size)
        entries = build_entries(size, rng)
        packets = build_packets(256, size, rng)
        linear = measure_lookups_per_sec(
            build_table(entries, indexed=False), packets, min_time_s
        )
        indexed = measure_lookups_per_sec(
            build_table(entries, indexed=True), packets, min_time_s
        )
        rows.append(
            {
                "entries": size,
                "linear_lookups_per_sec": round(linear, 1),
                "indexed_lookups_per_sec": round(indexed, 1),
                "speedup": round(indexed / linear, 2),
            }
        )
    return rows


def bench_pipeline_batch(num_packets: int = 2000) -> dict:
    """End-to-end ``process_batch`` packets/sec on the demo pipeline, which
    exercises the batch action-resolution memo plus indexed stage lookups."""
    from repro.experiments.fig4_throughput import build_demo_pipeline
    from repro.traffic.flows import FlowGenerator

    pipeline, _virt = build_demo_pipeline(seed=1)
    gen = FlowGenerator(1)
    flows = gen.flows(64, tenant_id=1)
    batch = gen.packets(flows, num_packets, size_bytes=64)
    with Timer() as timer:
        pipeline.process_batch(batch)
    return {
        "num_packets": num_packets,
        "packets_per_sec": round(num_packets / timer.elapsed_s, 1),
    }


def run(sizes, min_time_s: float, with_pipeline: bool) -> dict:
    report = {
        "benchmark": "lookup-engine",
        "seed": DEFAULT_SEED,
        "python": sys.version.split()[0],
        "table": bench_table_sizes(sizes, min_time_s),
    }
    if with_pipeline:
        report["pipeline_batch"] = bench_pipeline_batch()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: fail if indexed <= linear at 10k entries",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_lookup.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run(sizes=[10_000], min_time_s=0.1, with_pipeline=False)
    else:
        report = run(sizes=[100, 1_000, 10_000], min_time_s=0.3, with_pipeline=True)

    for row in report["table"]:
        print(
            f"{row['entries']:>6} entries: linear "
            f"{row['linear_lookups_per_sec']:>12,.0f}/s   indexed "
            f"{row['indexed_lookups_per_sec']:>12,.0f}/s   "
            f"speedup {row['speedup']:,.1f}x"
        )
    if "pipeline_batch" in report:
        print(
            f"pipeline process_batch: "
            f"{report['pipeline_batch']['packets_per_sec']:,.0f} packets/s"
        )

    big = report["table"][-1]
    if args.smoke:
        if big["speedup"] < 1.0:
            print(
                f"FAIL: indexed path is slower than the linear scan "
                f"({big['speedup']}x) at {big['entries']} entries",
                file=sys.stderr,
            )
            return 1
        print(f"smoke ok: {big['speedup']}x at {big['entries']} entries")
        return 0

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if big["speedup"] < 10.0:
        print(
            f"WARNING: speedup {big['speedup']}x at {big['entries']} entries "
            f"is below the 10x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
