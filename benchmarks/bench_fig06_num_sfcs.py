"""Fig. 6 — throughput + block/entry utilization vs number of SFCs,
SFP vs SFP-without-consolidation.

Shape asserted: throughput grows with L for both variants; SFP's objective
throughput is >= the baseline's on the sweep average; SFP's entry
utilization is clearly higher (the baseline fragments blocks per NF); blocks
approach the 20/stage bound as L grows.
"""

import numpy as np

from repro.experiments import fig6_num_sfcs


def test_fig6(run_once, paper_scale):
    kwargs = (
        dict(l_values=(10, 20, 30, 40, 50), trials=5)
        if paper_scale
        else dict(l_values=(10, 20, 30), trials=1)
    )
    result = run_once(fig6_num_sfcs.run, seed=11, **kwargs)
    result.print()
    sfp = np.array(result.column("sfp_gbps"))
    base = np.array(result.column("base_gbps"))
    assert sfp[-1] > sfp[0], "throughput grows with more candidates"
    assert sfp.mean() >= base.mean() - 1e-6, "consolidation never hurts on average"
    eu_sfp = np.array(result.column("sfp_entry_util"))
    eu_base = np.array(result.column("base_entry_util"))
    assert (eu_sfp > eu_base).all(), "fragmentation lowers entry utilization"
    blocks = np.array(result.column("sfp_blocks"))
    assert blocks[-1] > 0.75 * 20, "blocks approach the per-stage bound"
