#!/usr/bin/env python
"""Fabric churn benchmark: event throughput and spillover rate vs shard count.

Replays the same seeded tenant-churn stream (Poisson arrivals, exponential
lifetimes, mid-lifetime modifications) over multi-switch fabrics of
increasing shard count, through the full orchestration stack — pluggable
tenant->switch routing, per-switch admission fallback, cross-switch chain
stitching, and per-shard two-phase data-plane installs — and records
events/sec, spillover rate, and stitch counts per shard count into
``BENCH_fabric.json``.

Run directly (no pytest needed):

    python benchmarks/bench_fabric_churn.py            # full sweep + JSON report
    python benchmarks/bench_fabric_churn.py --smoke    # CI regression guard

``--smoke`` replays a shorter stream on a 4-switch fabric, checks the fabric
invariant — every shard's incremental accounting and every link's load must
match a from-scratch recomputation bit for bit — runs a drain/failover pass
with end-to-end forwarding probes, and exits non-zero on any violation or a
throughput collapse.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script: make src/ importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.controller import ChurnConfig, synthesize_churn
from repro.core.spec import SwitchSpec
from repro.fabric import (
    FabricChurnEngine,
    FabricOrchestrator,
    FabricTopology,
    make_partitioner,
)
from repro.rng import DEFAULT_SEED
from repro.traffic.workload import WorkloadConfig

#: Conservative floor for the CI guard (the 4-shard pure-python fabric
#: clears thousands of events/sec; below this something regressed badly).
SMOKE_EVENTS_PER_SEC_FLOOR = 50.0

WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)

#: Deliberately tight per-shard switch: the live tenant set oversubscribes a
#: small fabric's backplane, so adding shards visibly trades rejections for
#: spillovers — the curve this benchmark exists to record.
SHARD_SPEC = SwitchSpec(
    stages=4, blocks_per_stage=8, block_bits=6400, rule_bits=64,
    capacity_gbps=40.0,
)


def churn_config(duration_s: float) -> ChurnConfig:
    """The benchmark's churn mix at a given stream horizon."""
    return ChurnConfig(
        duration_s=duration_s,
        arrival_rate_per_s=12.0,
        mean_lifetime_s=6.0,
        modify_fraction=0.25,
        workload=WORKLOAD,
    )


def run_one(
    events, num_switches: int, partitioner: str, with_dataplane: bool
) -> dict:
    """Replay the stream over one fabric size and collect its row."""
    topology = FabricTopology.full_mesh(num_switches, spec=SHARD_SPEC)
    fabric = FabricOrchestrator(
        topology,
        num_types=WORKLOAD.num_types,
        partitioner=make_partitioner(partitioner),
        with_dataplane=with_dataplane,
    )
    report = FabricChurnEngine(fabric).replay(events)
    summary = report.summary()
    counters = fabric.metrics_snapshot()["counters"]
    admitted = int(summary["admitted"])
    spillovers = counters.get("spillovers", 0)
    return {
        "switches": num_switches,
        "events": int(summary["events"]),
        "admitted": admitted,
        "rejected": int(summary["rejected"]),
        "events_per_sec": round(summary["events_per_sec"], 1),
        "admit_p50_ms": (
            None if summary["admit_p50_ms"] is None
            else round(summary["admit_p50_ms"], 3)
        ),
        "admit_p99_ms": (
            None if summary["admit_p99_ms"] is None
            else round(summary["admit_p99_ms"], 3)
        ),
        "spillovers": spillovers,
        "spillover_rate": round(spillovers / admitted, 4) if admitted else 0.0,
        "stitched": counters.get("stitched", 0),
        "live_tenants": len(fabric.tenants),
        "invariant_ok": fabric.check_invariant() == [],
        "_fabric": fabric,  # stripped before serialization
    }


def drain_check(fabric: FabricOrchestrator) -> dict:
    """Drain the busiest switch and verify every re-homed chain forwards."""
    victim = max(fabric.shards, key=lambda n: len(fabric.shards[n].tenants))
    report = fabric.drain(victim)
    forwarding = sum(1 for t in report.rehomed if fabric.probe_tenant(t))
    shard = fabric.shards[victim]
    return {
        "switch": victim,
        "rehomed": report.num_rehomed,
        "evicted": report.num_evicted,
        "probes_ok": forwarding == report.num_rehomed,
        "drained_shard_empty": (
            not shard.tenants and int(shard.state.entries.sum()) == 0
        ),
        "invariant_ok": fabric.check_invariant() == [],
    }


def run(duration_s: float, shard_counts, partitioner: str,
        with_dataplane: bool) -> dict:
    """Sweep shard counts over one seeded stream and assemble the report."""
    events = synthesize_churn(churn_config(duration_s), rng=DEFAULT_SEED)
    rows = []
    drain = None
    for num_switches in shard_counts:
        row = run_one(events, num_switches, partitioner, with_dataplane)
        fabric = row.pop("_fabric")
        if with_dataplane and num_switches == max(shard_counts):
            drain = drain_check(fabric)
        rows.append(row)
    return {
        "benchmark": "fabric-churn",
        "seed": DEFAULT_SEED,
        "python": sys.version.split()[0],
        "duration_s": duration_s,
        "partitioner": partitioner,
        "with_dataplane": with_dataplane,
        "rows": rows,
        "drain": drain,
    }


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI guard: shorter stream, invariant + drain + throughput floor",
    )
    parser.add_argument(
        "--partitioner", choices=("hash", "least-backplane"), default="hash",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_fabric.json"),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    duration = 15.0 if args.smoke else 45.0
    shard_counts = (2, 4) if args.smoke else (1, 2, 4, 8)
    report = run(
        duration_s=duration,
        shard_counts=shard_counts,
        partitioner=args.partitioner,
        with_dataplane=True,
    )

    failed = False
    for row in report["rows"]:
        print(
            f"{row['switches']} switches: {row['events']} events, "
            f"{row['events_per_sec']:,.0f} events/s, "
            f"{row['admitted']} admitted / {row['rejected']} rejected, "
            f"spillover rate {row['spillover_rate']:.2%}, "
            f"{row['stitched']} stitched, "
            f"invariant {'OK' if row['invariant_ok'] else 'VIOLATED'}"
        )
        if not row["invariant_ok"]:
            failed = True
        if args.smoke:
            if row["events"] < 100:
                print(f"FAIL: smoke stream too short ({row['events']} events)",
                      file=sys.stderr)
                failed = True
            if row["events_per_sec"] < SMOKE_EVENTS_PER_SEC_FLOOR:
                print(
                    f"FAIL: {row['events_per_sec']:.0f} events/s is below the "
                    f"{SMOKE_EVENTS_PER_SEC_FLOOR:.0f}/s floor",
                    file=sys.stderr,
                )
                failed = True
    drain = report["drain"]
    if drain is not None:
        print(
            f"drain {drain['switch']}: {drain['rehomed']} re-homed / "
            f"{drain['evicted']} evicted, probes "
            f"{'OK' if drain['probes_ok'] else 'FAILED'}, shard "
            f"{'empty' if drain['drained_shard_empty'] else 'NOT EMPTY'}, "
            f"invariant {'OK' if drain['invariant_ok'] else 'VIOLATED'}"
        )
        if not (drain["probes_ok"] and drain["drained_shard_empty"]
                and drain["invariant_ok"]):
            failed = True
    if failed:
        print("FAIL: fabric churn guard violated", file=sys.stderr)
        return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    if args.smoke:
        best = max(r["events_per_sec"] for r in report["rows"])
        print(f"smoke ok: up to {best:,.0f} events/s across "
              f"{len(report['rows'])} fabric sizes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
