"""Fig. 11 — runtime update: throughput after re-fill vs drop rate.

Shape asserted: the post-update objective is at least the pre-update one at
every drop rate (freed resources admit new chains), stays near the levels a
saturated switch reaches, and does not *decrease* as the drop rate grows
(more freedom to re-combine, the paper's slight-increase observation).
"""

import numpy as np

from repro.experiments import fig11_runtime_update


def test_fig11(run_once, paper_scale):
    kwargs = (
        dict(drop_rates=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0), trials=3)
        if paper_scale
        else dict(drop_rates=(0.2, 0.6, 1.0), trials=2)
    )
    result = run_once(fig11_runtime_update.run, seed=13, **kwargs)
    result.print()
    origin = np.array(result.column("origin_gbps"))
    updated = np.array(result.column("updated_gbps"))
    assert (updated >= origin - 1e-6).all(), "re-fill never loses throughput"
    # Roughly non-decreasing in drop rate (tolerate 5% noise).
    assert updated[-1] >= updated[0] * 0.95
    assert (np.array(result.column("admitted")) > 0).all()
