"""Fig. 7 — impact of the recirculation budget (virtual stages 8..56).

Shape asserted: allowing one recirculation improves the objective throughput
over none; beyond one the curve flattens (diminishing returns); SFP's entry
utilization stays above the no-consolidation baseline.
"""

import numpy as np

from repro.experiments import fig7_recirculation


def test_fig7(run_once, paper_scale):
    kwargs = (
        dict(recirculations=(0, 1, 2, 3, 4, 5, 6), trials=5)
        if paper_scale
        else dict(recirculations=(0, 1, 2), trials=2)
    )
    result = run_once(fig7_recirculation.run, seed=7, **kwargs)
    result.print()
    sfp = np.array(result.column("sfp_gbps"))
    assert sfp[1] >= sfp[0], "one recirculation must not hurt (paper: it helps)"
    # Diminishing returns: later budgets add less than the first one did
    # (tolerate small noise from the randomized rounding).
    first_gain = sfp[1] - sfp[0]
    later_gains = np.diff(sfp[1:])
    assert (later_gains <= max(first_gain, 0.05 * sfp[1]) + 1e-6).all()
    eu_sfp = np.array(result.column("sfp_entry_util"))
    eu_base = np.array(result.column("base_entry_util"))
    assert eu_sfp.mean() > eu_base.mean()
