"""Ablation — joint vs separate physical/logical placement (Challenge 2).

The paper argues the two-level allocation must be optimized *jointly*:
fixing the physical layout first (here: the greedy algorithm's layout, a
reasonable heuristic) and then optimally placing logical NFs on it cannot
beat the joint ILP, and typically loses.  This bench quantifies the gap.
"""

import numpy as np

from repro.core.ilp import solve_ilp
from repro.core.separate import solve_separate
from repro.traffic import WorkloadConfig, make_instance


def test_joint_vs_separate(run_once):
    def experiment():
        rows = []
        for seed in (1, 2, 3):
            instance = make_instance(
                WorkloadConfig(num_sfcs=14), max_recirculations=2, rng=seed
            )
            joint = solve_ilp(instance, backend="scipy", time_limit=120.0)
            separate = solve_separate(instance, time_limit=120.0)
            rows.append((joint.objective, separate.objective))
        return rows

    rows = run_once(experiment)
    gaps = []
    for joint_obj, separate_obj in rows:
        assert separate_obj <= joint_obj + 1e-6, "joint is optimal by construction"
        gaps.append(1.0 - separate_obj / joint_obj if joint_obj else 0.0)
    print(f"joint-vs-separate objective gaps: {np.round(gaps, 4)}")
    assert min(gaps) >= 0.0
