"""Benchmark configuration.

Each ``bench_figNN`` regenerates one paper figure.  Default scale is "quick"
(seconds per figure, same qualitative shape); export ``REPRO_PAPER_SCALE=1``
to run the paper-scale sweeps (many minutes: the exact ILP at L=50 is
genuinely slow — that *is* Fig. 8's finding).

Benchmarks run once per figure (``rounds=1``): the workloads are heavy and
deterministic (seeded), so statistical repetition adds nothing but wall time.
"""

import os

import pytest

PAPER_SCALE = bool(int(os.environ.get("REPRO_PAPER_SCALE", "0")))


@pytest.fixture()
def paper_scale() -> bool:
    return PAPER_SCALE


@pytest.fixture()
def run_once(benchmark):
    """Run a figure exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
