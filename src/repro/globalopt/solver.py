"""Fleet-wide tenant->switch re-solve: exact ILP for small fleets, a
deterministic greedy repack at scale.

Both paths answer the same question over a :class:`~repro.globalopt.model.
FabricModel`: given every live tenant's footprint and the fleet's
capacities, which assignment minimizes disruption while eliminating
avoidable cross-switch stitches?

* **ILP** (:func:`solve_ilp`): binary ``x[t, s]`` over the existing
  :mod:`repro.lp` seam — one variable per (single-homeable tenant,
  feasible switch), per-switch SRAM-block and backplane knapsack rows,
  pin/forbid fixings, and pairwise anti-affinity cuts.  The objective
  charges 1 per *moved* tenant plus a tiny balance term, so the optimum is
  "unstitch everything single-homeable, moving as few tenants as
  possible".  Tenants the ILP cannot see (chains longer than any switch's
  virtual stages, or forced to split by an intra-chain separation pair)
  are stitched afterwards against the ILP's residual capacity.
* **Greedy repack** (:func:`solve_greedy`): incremental defragmentation
  against *live* usage — settled single-home tenants stay put, and each
  stitched tenant (heaviest first) has its current charges released and
  is re-placed against the real residual: first single-home (preferring
  its own current switches, so the migration plan's make-before-break
  transient check sees the freed half), then a cheaper stitch, else kept
  where it is.  A bounded balance pass then shifts single-home tenants
  from the hottest switch to the coldest while the backplane-utilization
  gap exceeds :data:`BALANCE_GAP` (an even fleet is what keeps the
  partitioner's first choice admitting).  Working from live usage rather
  than an empty fleet keeps every proposed move executable hitlessly.
  Fully deterministic (sorted
  candidate orders, index tiebreaks), so the same snapshot always yields
  the same solution — the property crash-recovery replay relies on.

A tenant neither path can place keeps its current placement and is
reported in :attr:`GlobalSolution.kept`; the planner simply plans no move
for it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.fabric.stitching import split_points

#: Division guard for zero-capacity switches in the balance term.
EPS_CAP = 1e-9
from repro.globalopt.model import (
    ConstraintSet,
    FabricModel,
    TenantFootprint,
    TenantPlan,
    Usage,
    route,
)

#: Above these sizes the ILP's pairwise cuts and knapsack rows stop being
#: worth the solve time; ``mode="auto"`` switches to the greedy repack.
ILP_MAX_TENANTS = 48
ILP_MAX_SWITCHES = 10


@dataclass
class GlobalSolution:
    """One fleet-wide re-solve: a target plan per tenant plus provenance."""

    plans: dict[int, TenantPlan] = field(default_factory=dict)
    mode: str = "greedy"
    solve_s: float = 0.0
    ilp_status: str | None = None
    #: Tenants left at their current placement because no feasible target
    #: was found (never dropped — the fleet stays fully placed).
    kept: tuple[int, ...] = ()
    notes: tuple[str, ...] = ()

    def moves_vs(self, current: dict[int, TenantPlan]) -> int:
        """How many tenants this solution would relocate."""
        return sum(
            1 for tid, plan in self.plans.items() if plan != current.get(tid)
        )


def _footprint_weight(foot: TenantFootprint) -> tuple:
    """FFD sort key: heaviest tenants place first (descending rules, then
    bandwidth), tenant id as the deterministic tiebreak."""
    return (-foot.total_rules, -foot.bandwidth_gbps, foot.tenant_id)


def _single_candidates(
    model: FabricModel,
    usage: Usage,
    foot: TenantFootprint,
    constraints: ConstraintSet,
) -> list[str]:
    """Feasible single-home switches, stay-home first then best-fit."""
    pin = constraints.pinned(foot.tenant_id)
    avoid = constraints.forbidden(foot.tenant_id)
    current = model.current.get(foot.tenant_id)
    home = set(current.switches) if current is not None else set()
    names = [pin] if pin is not None else model.active
    feasible = []
    for name in names:
        if name in avoid or name not in model.switches:
            continue
        if usage.segment_fits(
            foot, name, foot.nf_types, foot.rules, foot.length, constraints
        ):
            feasible.append(name)

    def order_key(name: str) -> tuple:
        stay = 0 if name in home else 1
        free_after = (
            model.switches[name].total_blocks
            - usage.blocks[name]
            - model.blocks_needed(foot.rules, name)
        )
        return (stay, free_after, name)

    return sorted(feasible, key=order_key)


def _stitch_candidates(
    model: FabricModel,
    usage: Usage,
    foot: TenantFootprint,
    constraints: ConstraintSet,
) -> TenantPlan | None:
    """First feasible two-segment placement: fold-boundary splits first,
    head/tail switches in stay-home-then-sorted order, connected by the
    multi-hop router."""
    if foot.length < 2:
        return None
    pin = constraints.pinned(foot.tenant_id)
    avoid = constraints.forbidden(foot.tenant_id)
    current = model.current.get(foot.tenant_id)
    prefer = list(current.switches) if current is not None else []
    names = [n for n in model.active if n not in avoid]
    names.sort(key=lambda n: (n not in prefer, n))
    allowed = constraints.allowed_splits(foot)
    min_stages = min(
        (model.switches[n].stages for n in names), default=1
    )
    splits = split_points(foot.length, max(1, min_stages))
    if allowed is not None:
        splits = [j for j in splits if j in set(allowed)]
    for at in splits:
        head_nf, tail_nf = foot.nf_types[:at], foot.nf_types[at:]
        head_rules, tail_rules = foot.rules[:at], foot.rules[at:]
        for head in names:
            if not usage.segment_fits(
                foot, head, head_nf, head_rules, at, constraints
            ):
                continue
            for tail in names:
                if tail == head:
                    continue
                if pin is not None and pin not in (head, tail):
                    continue
                if not usage.segment_fits(
                    foot, tail, tail_nf, tail_rules, foot.length - at,
                    constraints,
                ):
                    continue
                path = route(model, usage, head, tail, foot.bandwidth_gbps)
                if path is None:
                    continue
                return TenantPlan(
                    tenant_id=foot.tenant_id,
                    switches=(head, tail),
                    split=at,
                    links=path,
                )
    return None


def solve_greedy(
    model: FabricModel, constraints: ConstraintSet | None = None
) -> GlobalSolution:
    """Deterministic incremental defragmentation (see the module
    docstring)."""
    t0 = time.perf_counter()
    constraints = constraints or ConstraintSet()
    usage = Usage.from_current(model)
    plans: dict[int, TenantPlan] = dict(model.current)
    kept: list[int] = []
    notes: list[str] = []
    order = sorted(model.tenants.values(), key=_footprint_weight)
    for foot in order:
        current = model.current.get(foot.tenant_id)
        if current is not None and not current.stitched:
            continue  # settled single-home tenants stay put
        if current is not None:
            usage.release(current)
        plan: TenantPlan | None = None
        if not constraints.must_split(foot):
            singles = _single_candidates(model, usage, foot, constraints)
            if singles:
                plan = TenantPlan(
                    tenant_id=foot.tenant_id, switches=(singles[0],)
                )
        if plan is None and (
            current is None or constraints.must_split(foot)
        ):
            plan = _stitch_candidates(model, usage, foot, constraints)
        if plan is None:
            if current is None:  # pragma: no cover - snapshot always places
                notes.append(f"tenant {foot.tenant_id}: no placement found")
                continue
            plan = current
            kept.append(foot.tenant_id)
            notes.append(
                f"tenant {foot.tenant_id}: no single-home room; kept "
                f"stitched at {current.switches}"
            )
        usage.charge(plan)
        plans[foot.tenant_id] = plan
    _balance_pass(model, usage, plans, constraints, notes)
    return GlobalSolution(
        plans=plans,
        mode="greedy",
        solve_s=time.perf_counter() - t0,
        kept=tuple(kept),
        notes=tuple(notes),
    )


#: Stop balancing when the hottest-to-coldest utilization gap closes to this.
BALANCE_GAP = 0.1


def _balance_pass(
    model: FabricModel,
    usage: Usage,
    plans: dict[int, TenantPlan],
    constraints: ConstraintSet,
    notes: list[str],
) -> None:
    """Shift single-home tenants from the hottest switch to the coldest
    until the backplane-utilization gap closes: an even fleet is what
    keeps the partitioner's first choice admitting (spillover control).
    Each round moves the largest tenant that strictly reduces the sum of
    squared utilizations; deterministic and bounded."""

    def spread() -> float:
        return sum(usage.utilization(n) ** 2 for n in model.active)

    moved = 0
    for _ in range(2 * max(1, len(model.active))):
        ranked = sorted(
            model.active, key=lambda n: (usage.utilization(n), n)
        )
        if len(ranked) < 2:
            break
        cold, hot = ranked[0], ranked[-1]
        if usage.utilization(hot) - usage.utilization(cold) < BALANCE_GAP:
            break
        residents = sorted(
            (
                tid
                for tid, plan in plans.items()
                if plan.switches == (hot,)
                and constraints.pinned(tid) is None
                and cold not in constraints.forbidden(tid)
                and not constraints.must_split(model.tenants[tid])
            ),
            key=lambda tid: (-model.tenants[tid].bandwidth_gbps, tid),
        )
        best = None
        before = spread()
        for tid in residents:
            foot = model.tenants[tid]
            old = plans[tid]
            usage.release(old)
            fits = usage.segment_fits(
                foot, cold, foot.nf_types, foot.rules, foot.length,
                constraints,
            )
            if fits:
                trial = TenantPlan(tenant_id=tid, switches=(cold,))
                usage.charge(trial)
                if spread() < before - 1e-12:
                    best = tid
                    break
                usage.release(trial)
            usage.charge(old)
        if best is None:
            break
        plans[best] = TenantPlan(tenant_id=best, switches=(cold,))
        moved += 1
    if moved:
        notes.append(f"balance: {moved} tenant(s) shifted off hot switches")


def solve_ilp(
    model: FabricModel,
    constraints: ConstraintSet | None = None,
    time_limit: float = 2.0,
) -> GlobalSolution | None:
    """Exact single-home assignment via :mod:`repro.lp`; ``None`` when the
    instance is infeasible or the solver gives up (caller falls back to
    the greedy repack)."""
    from repro.lp import Model, Objective, lin_sum, solve

    t0 = time.perf_counter()
    constraints = constraints or ConstraintSet()
    active = model.active
    eligible: list[TenantFootprint] = []
    leftovers: list[TenantFootprint] = []
    for tenant_id in sorted(model.tenants):
        foot = model.tenants[tenant_id]
        if constraints.must_split(foot):
            leftovers.append(foot)
        elif any(model.fits_stages(foot.length, s) for s in active):
            eligible.append(foot)
        else:
            leftovers.append(foot)

    m = Model("globalopt-repack")
    x: dict[tuple[int, str], object] = {}
    for foot in eligible:
        pin = constraints.pinned(foot.tenant_id)
        avoid = constraints.forbidden(foot.tenant_id)
        feasible = []
        for name in active:
            if name in avoid or (pin is not None and name != pin):
                continue
            sw = model.switches[name]
            if not model.fits_stages(foot.length, name):
                continue
            if model.blocks_needed(foot.rules, name) > sw.total_blocks:
                continue
            bp = model.backplane_needed(
                foot.length, foot.bandwidth_gbps, name
            )
            if bp > sw.capacity_gbps:
                continue
            feasible.append(name)
        if not feasible:
            leftovers.append(foot)
            continue
        for name in feasible:
            x[(foot.tenant_id, name)] = m.add_var(
                name=f"x_{foot.tenant_id}_{name}", binary=True
            )
    assigned = [f for f in eligible if any(
        (f.tenant_id, s) in x for s in active
    )]
    if not assigned:
        return None
    for foot in assigned:
        m.add_constr(
            lin_sum(
                x[(foot.tenant_id, s)]
                for s in active
                if (foot.tenant_id, s) in x
            )
            == 1.0,
            name=f"assign_{foot.tenant_id}",
        )
    for name in active:
        sw = model.switches[name]
        block_terms = [
            (model.blocks_needed(f.rules, name), x[(f.tenant_id, name)])
            for f in assigned
            if (f.tenant_id, name) in x
        ]
        if block_terms:
            m.add_constr(
                lin_sum(coef * var for coef, var in block_terms)
                <= float(sw.total_blocks),
                name=f"blocks_{name}",
            )
            m.add_constr(
                lin_sum(
                    model.backplane_needed(f.length, f.bandwidth_gbps, name)
                    * x[(f.tenant_id, name)]
                    for f in assigned
                    if (f.tenant_id, name) in x
                )
                <= sw.capacity_gbps,
                name=f"backplane_{name}",
            )
    # Pairwise anti-affinity cuts (tenant separation + NF-type pairs).
    ids = {f.tenant_id: f for f in assigned}
    cut = 0
    for a, b in constraints.separate_tenants:
        if a in ids and b in ids:
            for name in active:
                if (a, name) in x and (b, name) in x:
                    m.add_constr(
                        x[(a, name)] + x[(b, name)] <= 1.0,
                        name=f"sep_{a}_{b}_{name}",
                    )
                    cut += 1
    for ta in assigned:
        for tb in assigned:
            if tb.tenant_id <= ta.tenant_id:
                continue
            clash = any(
                (a in ta.nf_types and b in tb.nf_types)
                or (b in ta.nf_types and a in tb.nf_types)
                for a, b in constraints.nf_anti_affinity
            )
            if not clash:
                continue
            for name in active:
                if (ta.tenant_id, name) in x and (tb.tenant_id, name) in x:
                    m.add_constr(
                        x[(ta.tenant_id, name)] + x[(tb.tenant_id, name)]
                        <= 1.0,
                        name=f"nfaff_{ta.tenant_id}_{tb.tenant_id}_{name}",
                    )
                    cut += 1
    # Objective: 1 per moved tenant, plus a tiny balance nudge so ties
    # prefer the lighter-loaded switch deterministically.
    terms = []
    for foot in assigned:
        cur = model.current.get(foot.tenant_id)
        cur_switches = set(cur.switches) if cur is not None else set()
        for name in active:
            if (foot.tenant_id, name) not in x:
                continue
            move_cost = (
                0.0
                if len(cur_switches) == 1 and name in cur_switches
                else 1.0
            )
            balance = 0.001 * (
                model.backplane_needed(foot.length, foot.bandwidth_gbps, name)
                / max(model.switches[name].capacity_gbps, EPS_CAP)
            )
            terms.append((move_cost + balance) * x[(foot.tenant_id, name)])
    m.set_objective(lin_sum(terms), sense=Objective.MINIMIZE)
    solution = solve(m, backend="auto", time_limit=time_limit)
    if not solution.is_feasible:
        return None
    plans: dict[int, TenantPlan] = {}
    usage = Usage(model)
    for foot in assigned:
        chosen = None
        for name in active:
            var = x.get((foot.tenant_id, name))
            if var is not None and solution[var] > 0.5:
                chosen = name
                break
        if chosen is None:  # pragma: no cover - assign row forces one
            leftovers.append(foot)
            continue
        plan = TenantPlan(tenant_id=foot.tenant_id, switches=(chosen,))
        plans[foot.tenant_id] = plan
        usage.charge(plan)
    # Stitch the leftovers against the ILP's residual capacity.
    kept: list[int] = []
    notes: list[str] = [f"ilp: {len(assigned)} assigned, {cut} cuts"]
    for foot in sorted(leftovers, key=_footprint_weight):
        plan = _stitch_candidates(model, usage, foot, constraints)
        if plan is None and not constraints.must_split(foot):
            singles = _single_candidates(model, usage, foot, constraints)
            if singles:
                plan = TenantPlan(
                    tenant_id=foot.tenant_id, switches=(singles[0],)
                )
        if plan is None:
            current = model.current.get(foot.tenant_id)
            if current is None:  # pragma: no cover
                notes.append(f"tenant {foot.tenant_id}: unplaceable")
                continue
            plan = current
            kept.append(foot.tenant_id)
        usage.charge(plan)
        plans[foot.tenant_id] = plan
    return GlobalSolution(
        plans=plans,
        mode="ilp",
        solve_s=time.perf_counter() - t0,
        ilp_status=solution.status.name,
        kept=tuple(kept),
        notes=tuple(notes),
    )


def solve_global(
    model: FabricModel,
    constraints: ConstraintSet | None = None,
    mode: str = "auto",
    time_limit: float = 2.0,
) -> GlobalSolution:
    """Re-solve the fleet.  ``mode`` is ``"auto"`` (ILP when the instance
    is small enough, greedy otherwise), ``"ilp"`` (forced, greedy only on
    infeasibility) or ``"greedy"``."""
    if mode not in ("auto", "ilp", "greedy"):
        raise ValueError(f"unknown solve mode {mode!r}")
    want_ilp = mode == "ilp" or (
        mode == "auto"
        and len(model.tenants) <= ILP_MAX_TENANTS
        and len(model.switches) <= ILP_MAX_SWITCHES
    )
    if want_ilp and model.tenants:
        solution = solve_ilp(model, constraints, time_limit=time_limit)
        if solution is not None:
            return solution
    solution = solve_greedy(model, constraints)
    if want_ilp:
        solution.notes = solution.notes + (
            "ilp infeasible or empty; greedy fallback",
        )
    return solution


__all__ = [
    "ILP_MAX_SWITCHES",
    "ILP_MAX_TENANTS",
    "GlobalSolution",
    "solve_global",
    "solve_greedy",
    "solve_ilp",
]
