"""Compact fleet model for the global re-optimizer.

:func:`snapshot_fabric` freezes a live :class:`~repro.fabric.orchestrator.
FabricOrchestrator` into pure data the solver can search over without
touching any shard: per-switch headroom (SRAM blocks, virtual stages,
backplane Gbps), per-link residual bandwidth, and one
:class:`TenantFootprint` per live tenant (chain shape, rule counts,
bandwidth, current placement).

The model is deliberately *advisory*: block demand mirrors the shard's
accounting variant — ``ceil(total_rules / entries_per_block)`` per segment
under consolidation (same-type rules share blocks, so a segment's marginal
cost is near its pooled-rule charge), the per-NF ``ceil(rules /
entries_per_block)`` sum without it — and backplane demand is
``ceil(L / S) * bw`` (the fold-minimal pass count).  Baselines are exact —
:meth:`Usage.from_current` starts from the shards' *actual* occupancy —
but the per-tenant estimates do not capture cross-tenant sharing or the
physical-block reserve, and they do not need to: the migration executor
re-validates every step against the *real* shards with transactional
rollback, so a mis-estimate can only cost a skipped or rolled-back move,
never a broken fabric.

:class:`ConstraintSet` carries the fleet-level constraint families from the
related work (Allybokus et al., arXiv:1705.10554): tenant pinning,
switch avoidance, tenant anti-affinity, cross-tenant NF-type anti-affinity,
and intra-chain NF separation (a partial-order family: the chain's total
order is preserved by construction — segments are contiguous and the head
precedes the tail — so separation pairs reduce to "the cut must fall
between these NF types", which :meth:`ConstraintSet.allowed_splits`
computes).

:func:`route` is the SFC-constrained shortest-path router (Sallam et al.,
arXiv:1801.05795): stitched segments may live on *non-adjacent* switches,
with every link of the connecting path charged the tenant's bandwidth —
the multi-hop generalization of the admission-time stitcher's
adjacent-only rule.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.state import stable_digest
from repro.fabric.topology import LinkKey, link_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.orchestrator import FabricOrchestrator

#: Float slack for capacity comparisons (mirrors ``LinkState.fits``).
EPS = 1e-9


@dataclass(frozen=True)
class SwitchModel:
    """One switch's static capacities, as the solver sees them."""

    name: str
    stages: int
    virtual_stages: int
    total_blocks: int
    entries_per_block: int
    capacity_gbps: float
    drained: bool = False
    #: Whether the shard consolidates same-type rules into shared blocks
    #: (selects the matching demand estimate in ``blocks_needed``).
    consolidated: bool = True
    #: *Actual* occupancy at snapshot time, straight from the shard's
    #: pipeline accounting.  ``Usage.from_current`` starts from these so
    #: headroom reflects cross-tenant block sharing the per-tenant
    #: advisory estimates cannot see.
    used_blocks: int = 0
    used_backplane_gbps: float = 0.0


@dataclass(frozen=True)
class TenantFootprint:
    """One live tenant's resource shape, detached from any placement."""

    tenant_id: int
    nf_types: tuple[int, ...]
    rules: tuple[int, ...]
    bandwidth_gbps: float
    #: Digest of the full chain at snapshot time; the executor uses it to
    #: detect a chain that changed between planning and execution.
    sfc_digest: str = ""

    @property
    def length(self) -> int:
        return len(self.nf_types)

    @property
    def total_rules(self) -> int:
        return sum(self.rules)


@dataclass(frozen=True)
class TenantPlan:
    """One tenant's (current or proposed) fleet placement: a single home
    switch (``split == 0``) or a head/tail pair cut at ``split`` with the
    connecting multi-hop path's links in ``links``."""

    tenant_id: int
    switches: tuple[str, ...]
    split: int = 0
    links: tuple[LinkKey, ...] = ()

    @property
    def stitched(self) -> bool:
        return len(self.switches) > 1


@dataclass(frozen=True)
class ConstraintSet:
    """Fleet-level placement constraint families (all default-empty, so a
    plain re-optimization is unconstrained)."""

    #: ``(tenant_id, switch)`` — the tenant's placement must include switch.
    pins: tuple[tuple[int, str], ...] = ()
    #: ``(tenant_id, switch)`` — the tenant must avoid this switch.
    forbids: tuple[tuple[int, str], ...] = ()
    #: Tenant pairs that may never share a switch (isolation).
    separate_tenants: tuple[tuple[int, int], ...] = ()
    #: NF-type pairs never co-located on one switch *across* tenants.
    nf_anti_affinity: tuple[tuple[int, int], ...] = ()
    #: Intra-chain NF-type separation ``(a, b)``: a tenant whose chain
    #: contains both must be stitched with every ``a`` in the head and
    #: every ``b`` in the tail (the partial-order / anti-affinity family).
    split_between: tuple[tuple[int, int], ...] = ()

    def pinned(self, tenant_id: int) -> str | None:
        """The switch ``tenant_id`` is pinned to, or ``None``."""
        for tid, switch in self.pins:
            if tid == tenant_id:
                return switch
        return None

    def forbidden(self, tenant_id: int) -> frozenset[str]:
        """The switches ``tenant_id`` may never occupy."""
        return frozenset(s for tid, s in self.forbids if tid == tenant_id)

    def must_split(self, foot: TenantFootprint) -> bool:
        """Whether an intra-chain separation pair forces a stitch."""
        present = set(foot.nf_types)
        return any(
            a in present and b in present for a, b in self.split_between
        )

    def allowed_splits(self, foot: TenantFootprint) -> list[int] | None:
        """Split indices compatible with every intra-chain separation pair
        (``None`` = any split; ``[]`` = no feasible split exists, i.e. the
        chain itself violates the partial order)."""
        if not self.must_split(foot):
            return None
        lo, hi = 1, foot.length - 1
        for a, b in self.split_between:
            pos_a = [i for i, t in enumerate(foot.nf_types) if t == a]
            pos_b = [i for i, t in enumerate(foot.nf_types) if t == b]
            if not pos_a or not pos_b:
                continue
            if max(pos_a) >= min(pos_b):
                # Some ``a`` sits at or after a ``b``: no contiguous cut can
                # separate them in chain order.
                return []
            lo = max(lo, max(pos_a) + 1)
            hi = min(hi, min(pos_b))
        return [j for j in range(1, foot.length) if lo <= j <= hi]

    def switch_ok(
        self,
        foot: TenantFootprint,
        nf_here: Iterable[int],
        occupants: Mapping[int, frozenset[int]],
    ) -> bool:
        """Whether ``foot`` may put NF types ``nf_here`` on a switch whose
        current occupants (tenant -> NF-type set) are ``occupants``."""
        separated = {
            b for a, b in self.separate_tenants if a == foot.tenant_id
        } | {a for a, b in self.separate_tenants if b == foot.tenant_id}
        if separated & set(occupants):
            return False
        mine = set(nf_here)
        for other_id, other_types in occupants.items():
            if other_id == foot.tenant_id:
                continue
            for a, b in self.nf_anti_affinity:
                if (a in mine and b in other_types) or (
                    b in mine and a in other_types
                ):
                    return False
        return True


@dataclass(frozen=True)
class FabricModel:
    """The frozen fleet snapshot the solver and planner work on."""

    switches: dict[str, SwitchModel]
    tenants: dict[int, TenantFootprint]
    current: dict[int, TenantPlan]
    link_capacity: dict[LinkKey, float]
    adjacency: dict[str, tuple[str, ...]]
    #: Actual per-link load at snapshot time (``Usage.from_current`` seed).
    link_load: dict[LinkKey, float] = field(default_factory=dict)

    @property
    def active(self) -> list[str]:
        """Sorted names of non-drained switches."""
        return sorted(n for n, s in self.switches.items() if not s.drained)

    # -- per-(tenant, switch) demand ---------------------------------
    def blocks_needed(self, rules: Iterable[int], switch: str) -> int:
        """SRAM blocks one segment's rule lists occupy on ``switch``."""
        sw = self.switches[switch]
        rules = tuple(rules)
        if not rules:
            return 0
        if sw.consolidated:
            return max(1, math.ceil(sum(rules) / sw.entries_per_block))
        return sum(math.ceil(r / sw.entries_per_block) for r in rules)

    def passes_needed(self, length: int, switch: str) -> int:
        """Pipeline passes a ``length``-NF segment needs on ``switch``."""
        return math.ceil(length / self.switches[switch].stages)

    def backplane_needed(self, foot_slice_len: int, bw: float, switch: str) -> float:
        """Backplane Gbps a segment consumes: passes x tenant bandwidth."""
        return self.passes_needed(foot_slice_len, switch) * bw

    def fits_stages(self, length: int, switch: str) -> bool:
        """Whether the segment fits the switch's virtual stage budget."""
        return length <= self.switches[switch].virtual_stages

    def plan_demands(
        self, plan: TenantPlan
    ) -> list[tuple[str, tuple[int, ...], tuple[int, ...], int]]:
        """Per-switch demand of a plan: ``(switch, nf_types, rules, length)``
        for each segment (one entry for single-home plans)."""
        foot = self.tenants[plan.tenant_id]
        if not plan.stitched:
            return [(plan.switches[0], foot.nf_types, foot.rules, foot.length)]
        at = plan.split
        return [
            (plan.switches[0], foot.nf_types[:at], foot.rules[:at], at),
            (
                plan.switches[1],
                foot.nf_types[at:],
                foot.rules[at:],
                foot.length - at,
            ),
        ]


class Usage:
    """Mutable fleet accounting over a :class:`FabricModel`: per-switch
    blocks/backplane in use, per-link load, and per-switch occupant NF-type
    sets (what the cross-tenant constraint families check against).

    :meth:`from_current` seeds blocks/backplane/links from the snapshot's
    *actual* shard occupancy (cross-tenant block sharing included), then
    applies per-tenant advisory deltas on :meth:`release`/:meth:`charge` —
    so the baseline is exact and only the marginal cost of a proposed
    change is estimated.  The planner clones one to prove every
    intermediate migration state fits; the ILP uses an empty one (advisory
    sums) when re-assigning the whole fleet from scratch.
    """

    def __init__(self, model: FabricModel) -> None:
        self.model = model
        self.blocks: dict[str, int] = {name: 0 for name in model.switches}
        self.backplane: dict[str, float] = {
            name: 0.0 for name in model.switches
        }
        self.link_load: dict[LinkKey, float] = {
            key: 0.0 for key in model.link_capacity
        }
        self.occupants: dict[str, dict[int, frozenset[int]]] = {
            name: {} for name in model.switches
        }

    @classmethod
    def from_current(cls, model: FabricModel) -> "Usage":
        """Accounting of the fleet as currently placed: actual occupancy
        from the snapshot, occupant maps from the current plans."""
        usage = cls(model)
        for name, sw in model.switches.items():
            usage.blocks[name] = sw.used_blocks
            usage.backplane[name] = sw.used_backplane_gbps
        for key in usage.link_load:
            usage.link_load[key] = model.link_load.get(key, 0.0)
        for tenant_id in sorted(model.current):
            plan = model.current[tenant_id]
            for switch, nf_types, _rules, _length in model.plan_demands(plan):
                usage.occupants[switch][tenant_id] = frozenset(nf_types)
        return usage

    def clone(self) -> "Usage":
        """Independent deep copy (the planner's transient-replay scratch)."""
        other = Usage.__new__(Usage)
        other.model = self.model
        other.blocks = dict(self.blocks)
        other.backplane = dict(self.backplane)
        other.link_load = dict(self.link_load)
        other.occupants = {
            name: dict(occ) for name, occ in self.occupants.items()
        }
        return other

    # -- mutation ----------------------------------------------------
    def charge(self, plan: TenantPlan) -> None:
        """Account ``plan``'s blocks/backplane/link demand as occupied."""
        foot = self.model.tenants[plan.tenant_id]
        for switch, nf_types, rules, length in self.model.plan_demands(plan):
            self.blocks[switch] += self.model.blocks_needed(rules, switch)
            self.backplane[switch] += self.model.backplane_needed(
                length, foot.bandwidth_gbps, switch
            )
            self.occupants[switch][plan.tenant_id] = frozenset(nf_types)
        for key in plan.links:
            self.link_load[key] += foot.bandwidth_gbps

    def release(self, plan: TenantPlan) -> None:
        """Return ``plan``'s blocks/backplane/link demand to the pool."""
        foot = self.model.tenants[plan.tenant_id]
        for switch, nf_types, rules, length in self.model.plan_demands(plan):
            self.blocks[switch] -= self.model.blocks_needed(rules, switch)
            self.backplane[switch] -= self.model.backplane_needed(
                length, foot.bandwidth_gbps, switch
            )
            self.occupants[switch].pop(plan.tenant_id, None)
        for key in plan.links:
            self.link_load[key] -= foot.bandwidth_gbps

    # -- feasibility -------------------------------------------------
    def segment_fits(
        self,
        foot: TenantFootprint,
        switch: str,
        nf_types: tuple[int, ...],
        rules: tuple[int, ...],
        length: int,
        constraints: ConstraintSet,
    ) -> bool:
        """Whether one chain segment fits ``switch`` right now: drain
        state, virtual stages, SRAM blocks, backplane headroom, and the
        constraint families against the current occupants."""
        sw = self.model.switches[switch]
        if sw.drained:
            return False
        if not self.model.fits_stages(length, switch):
            return False
        if (
            self.blocks[switch] + self.model.blocks_needed(rules, switch)
            > sw.total_blocks
        ):
            return False
        demand = self.model.backplane_needed(
            length, foot.bandwidth_gbps, switch
        )
        if self.backplane[switch] + demand > sw.capacity_gbps + EPS:
            return False
        return constraints.switch_ok(foot, nf_types, self.occupants[switch])

    def link_fits(self, key: LinkKey, bw: float) -> bool:
        """Whether ``bw`` more Gbps fits on link ``key``."""
        return (
            self.link_load[key] + bw
            <= self.model.link_capacity[key] + EPS
        )

    def plan_fits(self, plan: TenantPlan, constraints: ConstraintSet) -> bool:
        """Whether every segment and link of ``plan`` fits right now."""
        foot = self.model.tenants[plan.tenant_id]
        for switch, nf_types, rules, length in self.model.plan_demands(plan):
            if not self.segment_fits(
                foot, switch, nf_types, rules, length, constraints
            ):
                return False
        return all(
            self.link_fits(key, foot.bandwidth_gbps) for key in plan.links
        )

    def utilization(self, switch: str) -> float:
        """Backplane utilization fraction (the balance term's currency)."""
        sw = self.model.switches[switch]
        return self.backplane[switch] / sw.capacity_gbps if sw.capacity_gbps else 0.0


def route(
    model: FabricModel,
    usage: Usage,
    src: str,
    dst: str,
    bw: float,
) -> tuple[LinkKey, ...] | None:
    """SFC-constrained shortest path from ``src`` to ``dst``: fewest hops
    over links with residual bandwidth for ``bw``, deterministic (sorted
    neighbor order) so replans are reproducible.  Returns the path's link
    keys, or ``None`` when no feasible path exists."""
    if src == dst:
        return None
    parent: dict[str, str] = {src: src}
    queue = deque([src])
    while queue:
        here = queue.popleft()
        for nxt in model.adjacency.get(here, ()):
            if nxt in parent:
                continue
            key = link_key(here, nxt)
            if not usage.link_fits(key, bw):
                continue
            parent[nxt] = here
            if nxt == dst:
                path: list[LinkKey] = []
                node = dst
                while node != src:
                    path.append(link_key(parent[node], node))
                    node = parent[node]
                return tuple(reversed(path))
            queue.append(nxt)
    return None


def current_plan(record) -> TenantPlan:
    """The :class:`TenantPlan` a live fabric directory record encodes."""
    segments = record.segments
    if len(segments) == 1:
        return TenantPlan(
            tenant_id=record.sfc.tenant_id,
            switches=(segments[0].switch,),
        )
    return TenantPlan(
        tenant_id=record.sfc.tenant_id,
        switches=tuple(seg.switch for seg in segments),
        split=segments[1].start,
        links=tuple(record.links),
    )


def snapshot_fabric(fabric: "FabricOrchestrator") -> FabricModel:
    """Freeze the live fabric into a :class:`FabricModel`.  The caller must
    hold the fabric lock (or otherwise guarantee quiescence) so the
    snapshot is a consistent cut."""
    switches = {}
    for name in fabric.topology.switch_names:
        node = fabric.topology.nodes[name]
        shard = fabric.shards[name]
        spec = node.spec
        switches[name] = SwitchModel(
            name=name,
            stages=spec.stages,
            virtual_stages=shard.base.virtual_stages,
            total_blocks=spec.stages * spec.blocks_per_stage,
            entries_per_block=spec.entries_per_block,
            capacity_gbps=spec.capacity_gbps,
            drained=name in fabric.drained,
            consolidated=shard.consolidate,
            used_blocks=sum(
                shard.state.blocks_at_stage(s) for s in range(spec.stages)
            ),
            used_backplane_gbps=shard.state.backplane_gbps,
        )
    tenants = {}
    current = {}
    for tenant_id in sorted(fabric.tenants):
        record = fabric.tenants[tenant_id]
        sfc = record.sfc
        tenants[tenant_id] = TenantFootprint(
            tenant_id=tenant_id,
            nf_types=tuple(sfc.nf_types),
            rules=tuple(sfc.rules),
            bandwidth_gbps=sfc.bandwidth_gbps,
            sfc_digest=stable_digest(sfc.to_dict()),
        )
        current[tenant_id] = current_plan(record)
    adjacency = {
        name: tuple(fabric.topology.neighbors(name))
        for name in fabric.topology.switch_names
    }
    return FabricModel(
        switches=switches,
        tenants=tenants,
        current=current,
        link_capacity={
            key: link.capacity_gbps for key, link in fabric.links.items()
        },
        adjacency=adjacency,
        link_load={
            key: link.load_gbps for key, link in fabric.links.items()
        },
    )


__all__ = [
    "ConstraintSet",
    "FabricModel",
    "SwitchModel",
    "TenantFootprint",
    "TenantPlan",
    "Usage",
    "current_plan",
    "route",
    "snapshot_fabric",
]
