"""Fabric-wide global re-optimization (snapshot -> solve -> plan -> migrate).

The greedy online partitioners place each tenant once and never look back,
so long churn fragments the fleet: tenants stitched across two switches
when the fabric was momentarily full stay stitched forever, and spillover
compounds.  This package closes the loop — :func:`reoptimize_fabric`
freezes the fleet into a compact model (:mod:`~repro.globalopt.model`),
re-solves the tenant->switch assignment fleet-wide
(:mod:`~repro.globalopt.solver`: ILP over the :mod:`repro.lp` seam for
small fleets, deterministic greedy repack at scale, with the
Allybokus-style partial-order/anti-affinity constraint families and
Sallam-style multi-hop stitch routing), orders the delta into a
headroom-proved migration plan (:mod:`~repro.globalopt.plan`), and
executes it hitlessly (:mod:`~repro.globalopt.migrate`: make-before-break,
per-step bit-identity audit, ``reopt_step`` WAL journaling with
crash-consistent recovery).

Use it through :meth:`FabricOrchestrator.reoptimize` (or the drift-gated
:meth:`maybe_reoptimize` cadence), ``POST /v1/reoptimize`` on the
frontend, or ``sfp reoptimize``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.globalopt.migrate import (
    MigrationReport,
    StepResult,
    apply_recorded_step,
    execute_plan,
    execute_step,
)
from repro.globalopt.model import (
    ConstraintSet,
    FabricModel,
    TenantFootprint,
    TenantPlan,
    Usage,
    snapshot_fabric,
)
from repro.globalopt.plan import MigrationPlan, MigrationStep, build_plan
from repro.globalopt.solver import GlobalSolution, solve_global

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.orchestrator import FabricOrchestrator


@dataclass
class ReoptReport:
    """One full re-optimization pass, end to end."""

    mode: str
    solve_s: float
    tenants: int
    stitched_before: int
    stitched_after: int
    links_before: int
    links_after: int
    moves_planned: int
    moves_skipped_plan: int
    migration: MigrationReport | None = None
    executed: bool = True
    notes: tuple[str, ...] = ()
    invariant_problems: tuple[str, ...] = ()
    wall_s: float = 0.0
    plan: MigrationPlan = field(default_factory=MigrationPlan)

    @property
    def ok(self) -> bool:
        if self.invariant_problems:
            return False
        return self.migration is None or self.migration.ok

    @property
    def stitch_reduction(self) -> int:
        return self.stitched_before - self.stitched_after

    def summary(self) -> dict:
        """JSON-native form (the frontend's response payload), merged with
        the migration report's counters when one ran."""
        out = {
            "mode": self.mode,
            "solve_s": self.solve_s,
            "tenants": self.tenants,
            "stitched_before": self.stitched_before,
            "stitched_after": self.stitched_after,
            "stitch_reduction": self.stitch_reduction,
            "links_before": self.links_before,
            "links_after": self.links_after,
            "moves_planned": self.moves_planned,
            "moves_skipped_plan": self.moves_skipped_plan,
            "executed": self.executed,
            "invariant_ok": not self.invariant_problems,
            "wall_s": self.wall_s,
        }
        if self.migration is not None:
            out.update(self.migration.summary())
        return out

    def describe(self) -> str:
        """One human-readable line (the CLI's output)."""
        moved = self.migration.executed if self.migration else 0
        return (
            f"reoptimize[{self.mode}]: {self.tenants} tenants, "
            f"stitched {self.stitched_before} -> {self.stitched_after}, "
            f"{moved}/{self.moves_planned} moves executed "
            f"({self.moves_skipped_plan} gated) in {self.wall_s:.3f}s; "
            f"invariant {'OK' if not self.invariant_problems else 'VIOLATED'}"
        )


def _stitch_stats(fabric: "FabricOrchestrator") -> tuple[int, int]:
    with fabric._dir_lock:
        stitched = sum(1 for r in fabric.tenants.values() if r.stitched)
        links = sum(len(r.links) for r in fabric.tenants.values())
    return stitched, links


def reoptimize_fabric(
    fabric: "FabricOrchestrator",
    constraints: ConstraintSet | None = None,
    mode: str = "auto",
    min_benefit: float = 0.5,
    max_moves: int | None = None,
    time_limit: float = 2.0,
    execute: bool = True,
    probe: bool | None = None,
    audit: bool = True,
) -> ReoptReport:
    """Run one full re-optimization pass against a live fabric.

    ``execute=False`` is the dry run: solve and plan, touch nothing.
    ``probe`` defaults to the fabric's data-plane mode; ``audit`` checks
    the fabric bit-identity invariant after every migration step.
    """
    t0 = time.perf_counter()
    metrics = fabric.metrics
    with fabric._fabric_locked():
        model = snapshot_fabric(fabric)
    stitched_before, links_before = _stitch_stats(fabric)
    with metrics.timer("globalopt.solve_s"):
        solution = solve_global(
            model, constraints, mode=mode, time_limit=time_limit
        )
    plan = build_plan(
        model,
        solution,
        constraints,
        min_benefit=min_benefit,
        max_moves=max_moves,
    )
    metrics.inc("globalopt.runs")
    metrics.inc("globalopt.moves_planned", plan.moves_planned)
    metrics.inc("globalopt.moves_skipped", plan.moves_skipped)
    migration = None
    if execute and plan.steps:
        migration = execute_plan(fabric, plan, probe=probe, audit=audit)
    stitched_after, links_after = (
        _stitch_stats(fabric) if execute else (stitched_before, links_before)
    )
    problems: tuple[str, ...] = ()
    if audit and execute:
        with fabric._fabric_locked():
            problems = tuple(fabric.check_invariant())
    ops = fabric.metrics.snapshot()["counters"]
    fabric._last_reopt_ops = (
        int(ops.get("admitted", 0))
        + int(ops.get("evicted", 0))
        + int(ops.get("modified", 0))
    )
    report = ReoptReport(
        mode=solution.mode,
        solve_s=solution.solve_s,
        tenants=len(model.tenants),
        stitched_before=stitched_before,
        stitched_after=stitched_after,
        links_before=links_before,
        links_after=links_after,
        moves_planned=plan.moves_planned,
        moves_skipped_plan=plan.moves_skipped,
        migration=migration,
        executed=execute,
        notes=solution.notes,
        invariant_problems=problems,
        wall_s=time.perf_counter() - t0,
        plan=plan,
    )
    fabric.recorder.record_state(
        "globalopt.reoptimize",
        mode=report.mode,
        tenants=report.tenants,
        stitched_before=stitched_before,
        stitched_after=stitched_after,
        moves=plan.moves_planned,
        ok=report.ok,
    )
    return report


__all__ = [
    "ConstraintSet",
    "FabricModel",
    "GlobalSolution",
    "MigrationPlan",
    "MigrationReport",
    "MigrationStep",
    "ReoptReport",
    "StepResult",
    "TenantFootprint",
    "TenantPlan",
    "Usage",
    "apply_recorded_step",
    "build_plan",
    "execute_plan",
    "execute_step",
    "reoptimize_fabric",
    "snapshot_fabric",
    "solve_global",
]
