"""Hitless migration execution: make-before-break, audited, WAL-journaled.

One :class:`~repro.globalopt.plan.MigrationStep` executes as a single
fabric transaction under the fabric-wide lock:

1. **Build up** the target placement while the old one still forwards:
   target segments landing on switches the tenant does not occupy are
   admitted fresh (old segments untouched); switches in both placements
   swap in place through the shard's own two-phase hitless ``modify``;
   segments that are byte-identical on both sides are left alone.
2. **Flip** the fabric directory to the new segments and link path and
   renormalize link loads (the accounting cut-over is atomic: loads are
   recomputed from the directory, so old and new links are never charged
   simultaneously).
3. **Probe** the *new* placement end to end (``probe_tenant``) while the
   old segments are still installed — zero tenant-visible downtime means
   the new path must forward before the old one is torn down.
4. **Tear down** old segments on switches the target abandoned.
5. **Audit** the fabric bit-identity invariant, then **journal** the step
   as a ``reopt_step`` fabric WAL record carrying the full recorded target
   (switches, split, link path, stages) plus the post-step digest — so a
   crash mid-migration recovers onto the last *committed* step, and replay
   re-executes each committed step deterministically.

Any shard refusal or failed probe rolls the step back (evict what was
admitted, swap overlap shards back) and aborts the remaining plan: the
fabric is left exactly as the last committed step journaled it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.state import stable_digest
from repro.fabric.orchestrator import FabricTenant, Segment
from repro.fabric.stitching import split_chain
from repro.globalopt.model import TenantPlan
from repro.globalopt.plan import MigrationPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fabric.orchestrator import FabricOrchestrator


@dataclass
class StepResult:
    """One migration step's outcome."""

    tenant_id: int
    action: str  # "executed" | "skipped" | "failed"
    reason: str = ""
    probed: bool = False
    stages: tuple[tuple[int, ...], ...] = ()
    invariant_problems: tuple[str, ...] = ()
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.action != "failed"


@dataclass
class MigrationReport:
    """A whole plan's execution: per-step results plus the tallies the
    benchmark and the frontend summary surface."""

    results: list[StepResult] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    aborted: bool = False
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the fabric is healthy after the run.  A step the shards
        refused (or whose probe failed) rolled back cleanly and does not
        taint the fleet — only an aborted run (invariant violation) does.
        """
        return not self.aborted

    def summary(self) -> dict:
        """Counters for logs and the frontend response."""
        return {
            "moves_executed": self.executed,
            "moves_skipped": self.skipped,
            "moves_failed": self.failed,
            "aborted": self.aborted,
            "wall_s": self.wall_s,
        }


def _desired_segments(
    sfc, target: TenantPlan
) -> list[tuple[str, object, int, int]]:
    """``(switch, segment_sfc, start, stop)`` per target segment."""
    if not target.stitched:
        return [(target.switches[0], sfc, 0, sfc.length)]
    head, tail = split_chain(sfc, target.split)
    return [
        (target.switches[0], head, 0, target.split),
        (target.switches[1], tail, target.split, sfc.length),
    ]


def execute_step(
    fabric: "FabricOrchestrator",
    target: TenantPlan,
    expect_sfc_digest: str | None = None,
    probe: bool | None = None,
    audit: bool = True,
    journal: bool = True,
) -> StepResult:
    """Migrate one tenant to ``target`` (see the module docstring).  Safe
    to call standalone; recovery replays journaled steps through exactly
    this path with ``probe=False, audit=False, journal=False``."""
    t0 = time.perf_counter()
    tenant_id = target.tenant_id
    if probe is None:
        probe = fabric.with_dataplane
    with fabric._fabric_locked():
        record = fabric.tenants.get(tenant_id)
        if record is None:
            return StepResult(tenant_id, "skipped", "tenant-departed")
        if (
            expect_sfc_digest is not None
            and stable_digest(record.sfc.to_dict()) != expect_sfc_digest
        ):
            return StepResult(tenant_id, "skipped", "chain-changed")
        old_segments = record.segments
        old_links = record.links
        desired = _desired_segments(record.sfc, target)
        same_layout = (
            tuple(seg.switch for seg in old_segments)
            == tuple(sw for sw, *_rest in desired)
            and tuple((seg.start, seg.stop) for seg in old_segments)
            == tuple((start, stop) for _sw, _sfc, start, stop in desired)
            and old_links == target.links
        )
        if same_layout:
            return StepResult(tenant_id, "skipped", "no-op")
        bw = record.sfc.bandwidth_gbps
        for key in target.links:
            if key not in old_links and not fabric.links[key].fits(bw):
                return StepResult(tenant_id, "skipped", "no-link-capacity")

        old_by_switch = {seg.switch: seg for seg in old_segments}
        undo: list[tuple[str, str, object]] = []

        def rollback() -> None:
            """Unwind the shard mutations in reverse.  An overlap shard's
            swap-back may deterministically land the old segment on
            different stages than it historically held, so the directory
            record is refreshed to whatever the shards now say — keeping
            directory and shards bit-consistent even on the failure path.
            """
            restored: dict[str, tuple[int, ...]] = {}
            for op, switch, payload in reversed(undo):
                if op == "admit":
                    fabric.shards[switch].evict(tenant_id)
                else:  # re-swap the overlap shard back to its old segment
                    res = fabric.shards[switch].modify(tenant_id, payload)
                    if res.ok and res.stages is not None:
                        restored[switch] = res.stages
                    else:  # pragma: no cover - resources were just freed
                        fabric.metrics.inc("globalopt.rollback_failed")
            if restored:
                with fabric._dir_lock:
                    fabric.tenants[tenant_id] = FabricTenant(
                        sfc=record.sfc,
                        segments=tuple(
                            Segment(
                                switch=seg.switch,
                                sfc=seg.sfc,
                                start=seg.start,
                                stop=seg.stop,
                                stages=restored.get(seg.switch, seg.stages),
                            )
                            for seg in old_segments
                        ),
                        links=old_links,
                    )
                    fabric._renormalize_links()

        new_segments: list[Segment] = []
        for switch, seg_sfc, start, stop in desired:
            old_seg = old_by_switch.get(switch)
            if (
                old_seg is not None
                and old_seg.sfc == seg_sfc
                and (old_seg.start, old_seg.stop) == (start, stop)
            ):
                new_segments.append(old_seg)
                continue
            if old_seg is not None:
                res = fabric.shards[switch].modify(tenant_id, seg_sfc)
                if not res.ok:
                    rollback()
                    fabric.metrics.inc("globalopt.moves_failed")
                    return StepResult(
                        tenant_id, "failed",
                        f"shard {switch} refused modify: {res.reason}",
                        latency_s=time.perf_counter() - t0,
                    )
                undo.append(("modify", switch, old_seg.sfc))
            else:
                res = fabric.shards[switch].admit(seg_sfc)
                if not res.ok:
                    rollback()
                    fabric.metrics.inc("globalopt.moves_failed")
                    return StepResult(
                        tenant_id, "failed",
                        f"shard {switch} refused admit: {res.reason}",
                        latency_s=time.perf_counter() - t0,
                    )
                undo.append(("admit", switch, None))
            assert res.stages is not None
            new_segments.append(
                Segment(
                    switch=switch,
                    sfc=seg_sfc,
                    start=start,
                    stop=stop,
                    stages=res.stages,
                )
            )

        with fabric._dir_lock:
            fabric.tenants[tenant_id] = FabricTenant(
                sfc=record.sfc,
                segments=tuple(new_segments),
                links=target.links,
            )
            fabric._renormalize_links()

        probed = False
        if probe:
            probed = True
            if not fabric.probe_tenant(tenant_id):
                # New path does not forward: restore the directory, then
                # unwind the shard mutations — the old placement was never
                # torn down, so the tenant never lost service.
                with fabric._dir_lock:
                    fabric.tenants[tenant_id] = record
                    fabric._renormalize_links()
                rollback()
                fabric.metrics.inc("globalopt.moves_failed")
                return StepResult(
                    tenant_id, "failed", "probe-failed", probed=True,
                    latency_s=time.perf_counter() - t0,
                )

        new_switches = {seg.switch for seg in new_segments}
        for seg in old_segments:
            if seg.switch not in new_switches:
                fabric.shards[seg.switch].evict(tenant_id)
        fabric._refresh_gauges()

        problems: tuple[str, ...] = ()
        if audit:
            problems = tuple(fabric.check_invariant())
            if problems:
                fabric.metrics.inc("globalopt.moves_failed")
                return StepResult(
                    tenant_id, "failed", "invariant-violated",
                    probed=probed,
                    invariant_problems=problems,
                    latency_s=time.perf_counter() - t0,
                )

        stages = tuple(tuple(seg.stages) for seg in new_segments)
        if journal:
            fabric._commit_durable(
                "reopt_step",
                {
                    "tenant_id": tenant_id,
                    "switches": list(target.switches),
                    "split": target.split,
                    "links": [list(key) for key in target.links],
                    "stages": [list(s) for s in stages],
                },
            )
        fabric.metrics.inc("globalopt.moves_executed")
        fabric.metrics.inc(f"globalopt.migrations.tenant.{tenant_id}")
        elapsed = time.perf_counter() - t0
        fabric.metrics.observe("globalopt.step_s", elapsed)
        fabric.recorder.record_state(
            "globalopt.migrate",
            tenant=tenant_id,
            switches=list(target.switches),
            split=target.split,
            probed=probed,
        )
        return StepResult(
            tenant_id, "executed",
            probed=probed, stages=stages, latency_s=elapsed,
        )


def execute_plan(
    fabric: "FabricOrchestrator",
    plan: MigrationPlan,
    probe: bool | None = None,
    audit: bool = True,
) -> MigrationReport:
    """Execute the plan step by step.  Every step is its own transaction
    (built up, probed, rolled back on refusal), so a failed step leaves
    the fleet exactly as before it and execution continues — the advisory
    model being optimistic about one target must not forfeit the rest of
    the plan.  The one exception is an invariant violation: the fabric's
    health is in question, so the remainder is abandoned."""
    t0 = time.perf_counter()
    report = MigrationReport()
    steps = list(plan.steps)
    for idx, step in enumerate(steps):
        result = execute_step(
            fabric,
            step.target,
            expect_sfc_digest=step.sfc_digest or None,
            probe=probe,
            audit=audit,
        )
        report.results.append(result)
        if result.action == "executed":
            report.executed += 1
        elif result.action == "skipped":
            report.skipped += 1
            fabric.metrics.inc("globalopt.moves_skipped")
        else:
            report.failed += 1
            if result.invariant_problems:
                report.aborted = True
                for rest in steps[idx + 1:]:
                    report.results.append(
                        StepResult(rest.tenant_id, "skipped", "plan-aborted")
                    )
                    report.skipped += 1
                    fabric.metrics.inc("globalopt.moves_skipped")
                break
    report.wall_s = time.perf_counter() - t0
    return report


def apply_recorded_step(fabric: "FabricOrchestrator", record) -> list[str]:
    """Recovery dispatch for one journaled ``reopt_step`` WAL record:
    re-execute the migration to the *recorded* target and verify the
    segments land on the recorded stages.  (The caller separately verifies
    the record's post-op fabric digest.)"""
    data = record.data
    target = TenantPlan(
        tenant_id=int(data["tenant_id"]),
        switches=tuple(data["switches"]),
        split=int(data.get("split", 0)),
        links=tuple(tuple(k) for k in data.get("links", ())),
    )
    result = execute_step(
        fabric, target, probe=False, audit=False, journal=False
    )
    problems: list[str] = []
    if result.action != "executed":
        problems.append(
            f"lsn {record.lsn}: replayed reopt_step for tenant "
            f"{target.tenant_id} {result.action}: {result.reason}"
        )
        return problems
    recorded = [tuple(int(k) for k in s) for s in data.get("stages", ())]
    if recorded and list(result.stages) != recorded:
        problems.append(
            f"lsn {record.lsn}: reopt_step for tenant {target.tenant_id} "
            f"re-placed at {list(result.stages)} != recorded {recorded}"
        )
    return problems


__all__ = [
    "MigrationReport",
    "StepResult",
    "apply_recorded_step",
    "execute_plan",
    "execute_step",
]
