"""Diff a :class:`~repro.globalopt.solver.GlobalSolution` against the
current placement into a dependency-ordered, headroom-safe migration plan.

Each differing tenant becomes one candidate :class:`MigrationStep`.  Two
gates stand between a candidate and the executable plan:

* **Cost/benefit** — a step's benefit scores segments removed (unstitching
  is the whole point), link charges dropped, and the backplane-balance
  improvement; its cost is the rule mass that must physically move.
  Steps under ``min_benefit`` are skipped as low-yield, so the optimizer
  never churns the fabric for marginal wins.
* **Headroom ordering** — steps execute make-before-break, so *during* a
  step the tenant's old and new footprints coexist (except on overlap
  switches, where the in-place modify swaps atomically).  The planner
  replays candidates against a cloned :class:`~repro.globalopt.model.
  Usage`, repeatedly emitting the highest-benefit step whose transient
  double-footprint fits the simulated fleet; steps that never fit are
  skipped as ``no-headroom`` rather than risked.  The emitted order is
  therefore a proof that every intermediate fleet state fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.globalopt.model import (
    ConstraintSet,
    FabricModel,
    TenantPlan,
    Usage,
)
from repro.globalopt.solver import GlobalSolution

#: Benefit weight per segment removed (2 -> 1 segments = one unstitch).
W_UNSTITCH = 4.0
#: Benefit weight per link charge dropped.
W_LINK = 1.0
#: Benefit weight on the backplane balance improvement (sum of squared
#: utilizations over the involved switches; lower is better spread).
W_BALANCE = 1.0


@dataclass(frozen=True)
class MigrationStep:
    """One tenant's move: from ``current`` to ``target``."""

    tenant_id: int
    current: TenantPlan
    target: TenantPlan
    benefit: float
    cost: float
    #: Snapshot-time digest of the tenant's chain; the executor skips the
    #: step if the chain changed underneath the plan.
    sfc_digest: str = ""

    @property
    def kind(self) -> str:
        if len(self.target.switches) < len(self.current.switches):
            return "unstitch"
        if len(self.target.switches) > len(self.current.switches):
            return "stitch"
        if self.target.switches != self.current.switches:
            return "move"
        return "restitch"


@dataclass
class MigrationPlan:
    """The executable, order-proved migration sequence."""

    steps: tuple[MigrationStep, ...] = ()
    skipped: tuple[tuple[MigrationStep, str], ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def moves_planned(self) -> int:
        return len(self.steps)

    @property
    def moves_skipped(self) -> int:
        return len(self.skipped)

    def summary(self) -> dict:
        """Counters for logs and the frontend response."""
        return {
            "moves_planned": self.moves_planned,
            "moves_skipped": self.moves_skipped,
            "unstitches": sum(
                1 for s in self.steps if s.kind == "unstitch"
            ),
            "total_benefit": sum(s.benefit for s in self.steps),
            "total_cost": sum(s.cost for s in self.steps),
        }


def _step_cost(
    model: FabricModel, step_current: TenantPlan, target: TenantPlan
) -> float:
    """Rule mass that must physically move: every target segment landing
    on a switch that does not already hold that exact segment."""
    cur = {
        (switch, tuple(rules))
        for switch, _nf, rules, _len in model.plan_demands(step_current)
    }
    moved = 0
    for switch, _nf, rules, _len in model.plan_demands(target):
        if (switch, tuple(rules)) not in cur:
            moved += sum(rules)
    return float(moved)


def _balance_gain(
    usage: Usage, current: TenantPlan, target: TenantPlan
) -> float:
    """Drop in the sum of squared backplane utilizations over the switches
    a step touches (positive = better spread after the move)."""
    involved = sorted(set(current.switches) | set(target.switches))
    before = sum(usage.utilization(s) ** 2 for s in involved)
    trial = usage.clone()
    trial.release(current)
    trial.charge(target)
    after = sum(trial.utilization(s) ** 2 for s in involved)
    return before - after


def _step_benefit(
    usage: Usage, current: TenantPlan, target: TenantPlan
) -> float:
    segments_removed = len(current.switches) - len(target.switches)
    links_dropped = len(current.links) - len(target.links)
    return (
        W_UNSTITCH * segments_removed
        + W_LINK * links_dropped
        + W_BALANCE * _balance_gain(usage, current, target)
    )


def _transient_fits(
    usage: Usage,
    model: FabricModel,
    step: MigrationStep,
    constraints: ConstraintSet,
) -> bool:
    """Whether the make-before-break transient fits: new segments on
    switches the tenant does not currently occupy must fit *on top of* the
    old footprint; overlap switches swap in place, so there the old
    segment's resources are released first."""
    foot = model.tenants[step.tenant_id]
    old_on = {
        switch: (rules, length)
        for switch, _nf, rules, length in model.plan_demands(step.current)
    }
    trial = usage.clone()
    for switch, nf_types, rules, length in model.plan_demands(step.target):
        if switch in old_on:
            old_rules, old_len = old_on[switch]
            trial.blocks[switch] -= model.blocks_needed(old_rules, switch)
            trial.backplane[switch] -= model.backplane_needed(
                old_len, foot.bandwidth_gbps, switch
            )
        if not trial.segment_fits(
            foot, switch, nf_types, rules, length, constraints
        ):
            return False
        trial.blocks[switch] += model.blocks_needed(rules, switch)
        trial.backplane[switch] += model.backplane_needed(
            length, foot.bandwidth_gbps, switch
        )
    old_links = set(step.current.links)
    return all(
        trial.link_fits(key, foot.bandwidth_gbps)
        for key in step.target.links
        if key not in old_links
    )


def build_plan(
    model: FabricModel,
    solution: GlobalSolution,
    constraints: ConstraintSet | None = None,
    min_benefit: float = 0.5,
    max_moves: int | None = None,
) -> MigrationPlan:
    """Order the solution's deltas into an executable migration plan (see
    the module docstring for the two gates)."""
    constraints = constraints or ConstraintSet()
    usage = Usage.from_current(model)
    candidates: list[MigrationStep] = []
    skipped: list[tuple[MigrationStep, str]] = []
    for tenant_id in sorted(model.current):
        current = model.current[tenant_id]
        target = solution.plans.get(tenant_id, current)
        if target == current:
            continue
        step = MigrationStep(
            tenant_id=tenant_id,
            current=current,
            target=target,
            benefit=_step_benefit(usage, current, target),
            cost=_step_cost(model, current, target),
            sfc_digest=model.tenants[tenant_id].sfc_digest,
        )
        if step.benefit < min_benefit:
            skipped.append((step, "low-yield"))
            continue
        candidates.append(step)

    ordered: list[MigrationStep] = []
    pending = sorted(
        candidates, key=lambda s: (-s.benefit, s.tenant_id)
    )
    while pending:
        if max_moves is not None and len(ordered) >= max_moves:
            skipped.extend((step, "move-cap") for step in pending)
            break
        placed = None
        for idx, step in enumerate(pending):
            if _transient_fits(usage, model, step, constraints):
                placed = idx
                break
        if placed is None:
            skipped.extend((step, "no-headroom") for step in pending)
            break
        step = pending.pop(placed)
        usage.release(step.current)
        usage.charge(step.target)
        ordered.append(step)
    return MigrationPlan(
        steps=tuple(ordered),
        skipped=tuple(skipped),
        notes=solution.notes,
    )


__all__ = [
    "MigrationPlan",
    "MigrationStep",
    "build_plan",
]
