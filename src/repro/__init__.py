"""Reproduction of SFP: Service Function Chain Provision on Programmable
Switches for Cloud Tenants (IPPS 2022).

Subpackages
-----------
``repro.lp``
    From-scratch LP/MILP modeling + solvers (the Gurobi stand-in).
``repro.core``
    The paper's contribution: joint physical/logical NF placement (ILP,
    LP-relaxation rounding, greedy baseline, runtime update).
``repro.dataplane``
    Programmable-switch pipeline simulator (match-action tables, stages,
    recirculation, SFC virtualization, resource accounting).
``repro.p4``
    P4-like program IR with table dependency analysis and stage allocation.
``repro.nfs``
    Library of P4-style network functions (firewall, LB, classifier, ...).
``repro.baseline``
    Software (DPDK-on-server) SFC cost model used as the Fig. 4/5 baseline.
``repro.traffic``
    Synthetic workload/traffic generation per the paper's §VI-A recipe.
``repro.experiments``
    One runner per evaluation figure (Fig. 4-11).
"""

from repro._version import __version__

__all__ = ["__version__"]
