"""Unit conventions and conversion helpers.

The paper mixes several unit systems (Gbps backplane speed, bits of rule
width, SRAM blocks, nanoseconds of latency).  This module pins down the
conventions used across the library so numbers never silently change scale:

* bandwidth / throughput — **Gbps** (float)
* rule width ``b`` and block size ``E`` — **bits** (int)
* memory — **blocks** (int) and **entries** (int)
* latency — **nanoseconds** (float)
* packet size — **bytes** (int)
"""

from __future__ import annotations

GBPS = 1.0e9          # bits per second in one Gbps
NS_PER_S = 1.0e9      # nanoseconds per second
BITS_PER_BYTE = 8

#: Ethernet framing overhead per packet on the wire: preamble (7B) + SFD (1B)
#: + inter-packet gap (12B).  The FCS is already part of the quoted frame
#: size (a "64-byte packet" includes it), so 100 Gbps of 64B frames is the
#: classic 148.8 Mpps.  Used when converting packets/s to line-rate Gbps the
#: way traffic generators report it.
ETHERNET_OVERHEAD_BYTES = 20

#: Minimum / maximum Ethernet frame sizes used throughout the evaluation.
MIN_PACKET_BYTES = 64
MAX_PACKET_BYTES = 1500


def gbps_to_pps(gbps: float, packet_bytes: int, *, include_overhead: bool = True) -> float:
    """Convert an offered load in Gbps to packets per second.

    ``include_overhead`` accounts for the 20B+ on-wire framing overhead the
    way hardware traffic generators (and the paper's 100Gbps sender) do.
    """
    if packet_bytes <= 0:
        raise ValueError(f"packet_bytes must be positive, got {packet_bytes}")
    wire_bytes = packet_bytes + (ETHERNET_OVERHEAD_BYTES if include_overhead else 0)
    return gbps * GBPS / (wire_bytes * BITS_PER_BYTE)


def pps_to_gbps(pps: float, packet_bytes: int, *, include_overhead: bool = True) -> float:
    """Convert a packet rate to the equivalent offered load in Gbps."""
    if packet_bytes <= 0:
        raise ValueError(f"packet_bytes must be positive, got {packet_bytes}")
    wire_bytes = packet_bytes + (ETHERNET_OVERHEAD_BYTES if include_overhead else 0)
    return pps * wire_bytes * BITS_PER_BYTE / GBPS


def mpps(pps: float) -> float:
    """Express a packet rate in millions of packets per second."""
    return pps / 1.0e6


def seconds_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def ns_to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S
