"""Durability & crash recovery: write-ahead log, checkpoints, recovery.

The control plane built in :mod:`repro.controller` and :mod:`repro.fabric`
keeps its incremental state bit-identical to a from-scratch recomputation;
this package makes that state survive the process.  Committed lifecycle ops
are journaled to an append-only CRC-protected WAL (:mod:`.wal`), periodic
checkpoints snapshot the full state and compact the log (:mod:`.checkpoint`),
and recovery (:mod:`.recover`) rebuilds a **bit-identical** controller or
fabric — checkpoint restore plus idempotent WAL replay through the real
lifecycle paths, verified against the per-LSN digest oracle the log itself
carries.  :mod:`.faults` is the deterministic crash-injection harness the
test suite sweeps over every durability boundary.
"""

from repro.durability.checkpoint import (
    CheckpointStore,
    ControllerDurability,
    FabricDurability,
    ShardWalLogger,
    controller_checkpoint,
    fabric_checkpoint,
    read_manifest,
    restore_controller,
    restore_fabric,
)
from repro.durability.faults import (
    CHECKPOINT_SITES,
    DISK_MODES,
    DURABILITY_SITES,
    WAL_SITES,
    CountdownCrash,
    CrashError,
    CrashPoint,
    FaultInjector,
    corrupt_tail,
    crash_sites,
    lose_unsynced_tail,
    mutilate,
    tear_tail,
)
from repro.durability.recover import (
    RecoveryEngine,
    RecoveryReport,
    apply_controller_record,
    apply_fabric_record,
    fabric_from_manifest,
    recover_controller,
    recover_fabric,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalScan,
    WalTailer,
    WriteAheadLog,
    replay_iter,
    scan_wal,
)

__all__ = [
    "CheckpointStore",
    "ControllerDurability",
    "FabricDurability",
    "ShardWalLogger",
    "controller_checkpoint",
    "fabric_checkpoint",
    "read_manifest",
    "restore_controller",
    "restore_fabric",
    "CHECKPOINT_SITES",
    "DISK_MODES",
    "DURABILITY_SITES",
    "WAL_SITES",
    "CountdownCrash",
    "CrashError",
    "CrashPoint",
    "FaultInjector",
    "corrupt_tail",
    "crash_sites",
    "lose_unsynced_tail",
    "mutilate",
    "tear_tail",
    "RecoveryEngine",
    "RecoveryReport",
    "apply_controller_record",
    "apply_fabric_record",
    "fabric_from_manifest",
    "recover_controller",
    "recover_fabric",
    "FSYNC_POLICIES",
    "WalRecord",
    "WalScan",
    "WalTailer",
    "WriteAheadLog",
    "replay_iter",
    "scan_wal",
]
