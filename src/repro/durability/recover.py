"""Crash recovery: checkpoint load + WAL replay, verified bit-for-bit.

Recovery rebuilds a controller (or a whole fabric) from its durability
directory alone:

1. **Manifest** — reconstruct an equivalent *empty* controller/fabric from
   the immutable recovery manifest (switch spec, catalog size, policy,
   topology, partitioner).
2. **Checkpoint** — load the newest CRC-valid checkpoint and restore it
   through the direct-install path (:meth:`SfcController.restore_tenant`),
   landing exactly at the checkpoint's recorded state digest.
3. **Replay** — re-drive every WAL record past the checkpoint LSN through
   the *real* lifecycle entry points (``admit`` / ``evict`` / ``modify`` /
   ``drain`` / ...).  Placement is deterministic given identical state, so
   replay reconverges on the same stages the original run committed — and
   every record carries the post-op state digest it must land on, turning
   the log into a per-LSN oracle.  Replay is **idempotent**: the
   :class:`RecoveryEngine` gates on LSN, so a record applied twice (or a
   doubly-replayed prefix) is a no-op.
4. **Re-arm** — attach a fresh durability coordinator, take a checkpoint of
   the recovered state (compacting the log), and snap the flight recorder
   so the recovery itself is preserved in the telemetry ring.

The end state is bit-identical (same :meth:`PipelineState.digest`) to an
uninterrupted run's state at the same last *committed* LSN — the property
the fault-injection suite sweeps across every crash site.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.controller.admission import AdmissionPolicy
from repro.controller.controller import SfcController
from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.durability.checkpoint import (
    CheckpointStore,
    ControllerDurability,
    FabricDurability,
    read_manifest,
    restore_controller,
    restore_fabric,
)
from repro.durability.wal import WalRecord, scan_wal
from repro.errors import DurabilityError
from repro.fabric.orchestrator import FabricOrchestrator
from repro.fabric.partitioner import make_partitioner
from repro.fabric.topology import FabricLink, FabricTopology, SwitchNode
from repro.telemetry.recorder import FlightRecorder


@dataclass
class RecoveryReport:
    """What one recovery did and whether it landed where it had to."""

    kind: str
    checkpoint_lsn: int
    last_lsn: int
    replayed: int
    skipped: int
    truncated_bytes: int
    digest: str
    problems: tuple[str, ...] = ()
    #: Non-fatal observations (e.g. shard-log audit notes).
    notes: tuple[str, ...] = ()
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        """One-line human-readable summary (the CLI's output)."""
        status = "ok" if self.ok else f"FAILED ({len(self.problems)} problems)"
        return (
            f"recovered {self.kind}: checkpoint lsn {self.checkpoint_lsn}, "
            f"replayed {self.replayed} ops to lsn {self.last_lsn} "
            f"({self.skipped} skipped, {self.truncated_bytes} torn bytes "
            f"dropped) in {self.wall_s * 1e3:.1f} ms — {status}"
        )


class RecoveryEngine:
    """LSN-gated replay: applies each record exactly once.

    ``apply_fn(record)`` re-drives one committed op and returns a list of
    problem strings (empty = the op reconverged).  Records at or below
    ``applied_lsn`` are skipped, which makes replay idempotent — feeding the
    same prefix twice, or resuming replay mid-log, cannot double-apply.
    """

    def __init__(
        self,
        apply_fn: Callable[[WalRecord], list[str]],
        applied_lsn: int = 0,
    ) -> None:
        self.apply_fn = apply_fn
        self.applied_lsn = applied_lsn
        self.replayed = 0
        self.skipped = 0
        self.problems: list[str] = []

    def apply(self, record: WalRecord) -> bool:
        """Apply one record (or skip it if already applied).  Returns
        whether it was applied."""
        if record.lsn <= self.applied_lsn:
            self.skipped += 1
            return False
        self.problems.extend(self.apply_fn(record))
        self.applied_lsn = record.lsn
        self.replayed += 1
        return True

    def replay(self, records) -> None:
        """Apply each record in order (LSN-gated, so re-replays are no-ops)."""
        for record in records:
            self.apply(record)


# ----------------------------------------------------------------------
# Op dispatchers
# ----------------------------------------------------------------------
def apply_controller_record(
    controller: SfcController, record: WalRecord
) -> list[str]:
    """Re-drive one controller WAL record through the real lifecycle path
    and verify the post-op state digest against the one the record carries.
    """
    problems: list[str] = []
    data = record.data
    op = record.op
    if op == "admit":
        result = controller.admit(SFC.from_dict(data["sfc"]))
        if not result.ok:
            problems.append(
                f"lsn {record.lsn}: replayed admit of tenant "
                f"{data['tenant_id']} rejected: {result.reason}"
            )
        elif list(result.stages) != list(data.get("stages", result.stages)):
            problems.append(
                f"lsn {record.lsn}: admit of tenant {data['tenant_id']} "
                f"re-placed at {list(result.stages)} != recorded "
                f"{data['stages']}"
            )
    elif op == "evict":
        result = controller.evict(int(data["tenant_id"]))
        if not result.ok:
            problems.append(
                f"lsn {record.lsn}: replayed evict of tenant "
                f"{data['tenant_id']} rejected: {result.reason}"
            )
    elif op == "modify":
        result = controller.modify(
            int(data["tenant_id"]), SFC.from_dict(data["sfc"])
        )
        if not result.ok:
            problems.append(
                f"lsn {record.lsn}: replayed modify of tenant "
                f"{data['tenant_id']} rejected: {result.reason}"
            )
    elif op == "reconfigure":
        controller.maybe_reconfigure()
    elif op == "catalog":
        controller.install_catalog()
    else:
        problems.append(f"lsn {record.lsn}: unknown controller op {op!r}")
        return problems
    expected = data.get("digest")
    if expected is not None and controller.state.digest() != expected:
        problems.append(
            f"lsn {record.lsn}: state digest {controller.state.digest()} "
            f"!= recorded {expected} after {op}"
        )
    return problems


def apply_fabric_record(
    fabric: FabricOrchestrator, record: WalRecord
) -> list[str]:
    """Re-drive one fabric WAL record and verify the post-op fabric digest."""
    problems: list[str] = []
    data = record.data
    op = record.op
    if op == "admit":
        result = fabric.admit(SFC.from_dict(data["sfc"]))
        if not result.ok:
            problems.append(
                f"lsn {record.lsn}: replayed fabric admit of tenant "
                f"{data['tenant_id']} rejected: {result.reason}"
            )
    elif op == "evict":
        result = fabric.evict(int(data["tenant_id"]))
        if not result.ok:
            problems.append(
                f"lsn {record.lsn}: replayed fabric evict of tenant "
                f"{data['tenant_id']} rejected: {result.reason}"
            )
    elif op == "modify":
        result = fabric.modify(int(data["tenant_id"]), SFC.from_dict(data["sfc"]))
        if result.ok != bool(data.get("ok", True)):
            problems.append(
                f"lsn {record.lsn}: replayed fabric modify of tenant "
                f"{data['tenant_id']} got ok={result.ok}, recorded "
                f"ok={data.get('ok', True)} ({result.reason})"
            )
    elif op == "drain":
        report = fabric.drain(data["switch"])
        if sorted(report.rehomed) != sorted(data.get("rehomed", report.rehomed)):
            problems.append(
                f"lsn {record.lsn}: drain of {data['switch']} re-homed "
                f"{sorted(report.rehomed)} != recorded {data['rehomed']}"
            )
        if sorted(report.evicted) != sorted(data.get("evicted", report.evicted)):
            problems.append(
                f"lsn {record.lsn}: drain of {data['switch']} evicted "
                f"{sorted(report.evicted)} != recorded {data['evicted']}"
            )
    elif op == "undrain":
        fabric.undrain(data["switch"])
    elif op == "reopt_step":
        from repro.globalopt.migrate import apply_recorded_step

        problems.extend(apply_recorded_step(fabric, record))
    else:
        problems.append(f"lsn {record.lsn}: unknown fabric op {op!r}")
        return problems
    expected = data.get("digest")
    if expected is not None and fabric.digest() != expected:
        problems.append(
            f"lsn {record.lsn}: fabric digest {fabric.digest()} != "
            f"recorded {expected} after {op}"
        )
    return problems


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def fabric_from_manifest(
    manifest: dict,
    with_dataplane: bool | None = None,
    recorder: FlightRecorder | None = None,
) -> FabricOrchestrator:
    """An equivalent *empty* fabric rebuilt from a recovery manifest — the
    starting point for both crash recovery and a hot standby's replay."""
    if manifest.get("kind") != "fabric":
        raise DurabilityError(
            f"expected a fabric manifest, got kind={manifest.get('kind')!r}"
        )
    topology = FabricTopology(
        nodes=[
            SwitchNode(
                name=node["name"],
                spec=SwitchSpec(**node["spec"]),
                max_recirculations=node["max_recirculations"],
            )
            for node in manifest["nodes"]
        ],
        links=[
            FabricLink(a=link["a"], b=link["b"], capacity_gbps=link["capacity_gbps"])
            for link in manifest["links"]
        ],
    )
    return FabricOrchestrator(
        topology,
        num_types=manifest["num_types"],
        partitioner=make_partitioner(manifest["partitioner"]),
        with_dataplane=(
            manifest["with_dataplane"] if with_dataplane is None else with_dataplane
        ),
        policy=AdmissionPolicy(**manifest["policy"]),
        consolidate=manifest["consolidate"],
        reserve_physical_block=manifest["reserve_physical_block"],
        recorder=recorder,
    )


def _checkpoint_fallback_note(store: CheckpointStore, base_lsn: int) -> str | None:
    """The recovery note when checkpoints exist on disk but none loads:
    recovery silently falling back to a full replay would hide real damage.
    """
    retained = store.lsns()
    if not retained:
        return None
    return (
        f"all {len(retained)} retained checkpoints corrupt "
        f"(lsns {retained}); falling back to empty state + full WAL "
        f"replay from lsn {base_lsn}"
    )


def recover_controller(
    directory: str | Path,
    with_dataplane: bool | None = None,
    fsync: str = "always",
    batch_every: int = 64,
    checkpoint_every: int = 256,
) -> tuple[SfcController, RecoveryReport]:
    """Rebuild a controller from its durability directory.

    Returns the recovered controller — with a fresh durability coordinator
    already attached and (when recovery verified clean) a post-recovery
    checkpoint taken — plus the :class:`RecoveryReport`.  ``with_dataplane``
    overrides the manifest's mode (the fig-11-style control-plane-only
    replay recovers faster and is state-wise identical).
    """
    t0 = time.perf_counter()
    directory = Path(directory)
    manifest = read_manifest(directory)
    if manifest.get("kind") != "controller":
        raise DurabilityError(
            f"{directory} holds a {manifest.get('kind')!r} manifest, "
            f"not a controller"
        )
    instance = ProblemInstance(
        switch=SwitchSpec(**manifest["switch"]),
        sfcs=(),
        num_types=manifest["num_types"],
        max_recirculations=manifest["max_recirculations"],
    )
    controller = SfcController(
        instance,
        with_dataplane=(
            manifest["with_dataplane"] if with_dataplane is None else with_dataplane
        ),
        policy=AdmissionPolicy(**manifest["policy"]),
        consolidate=manifest["consolidate"],
        reserve_physical_block=manifest["reserve_physical_block"],
        reconfigure_threshold=manifest["reconfigure_threshold"],
        name=manifest["name"],
        recorder=FlightRecorder(),
    )

    problems: list[str] = []
    notes: list[str] = []
    scan = scan_wal(directory / ControllerDurability.WAL_NAME)
    store = CheckpointStore(directory)
    checkpoint = store.load_latest()
    checkpoint_lsn = 0
    if checkpoint is not None:
        try:
            restore_controller(controller, checkpoint)
            checkpoint_lsn = int(checkpoint["lsn"])
        except DurabilityError as exc:
            problems.append(f"checkpoint restore failed: {exc}")
    else:
        note = _checkpoint_fallback_note(store, scan.base_lsn)
        if note is not None:
            notes.append(note)
            if scan.base_lsn > 0:
                problems.append(
                    f"no loadable checkpoint but the WAL was compacted to "
                    f"base lsn {scan.base_lsn}: records 1..{scan.base_lsn} "
                    f"are unrecoverable"
                )
    engine = RecoveryEngine(
        lambda record: apply_controller_record(controller, record),
        applied_lsn=checkpoint_lsn,
    )
    engine.replay(scan.records)
    problems.extend(engine.problems)

    durability = ControllerDurability(
        directory,
        fsync=fsync,
        batch_every=batch_every,
        checkpoint_every=checkpoint_every,
    ).attach(controller)
    if not problems:
        durability.checkpoint(controller)
    report = RecoveryReport(
        kind="controller",
        checkpoint_lsn=checkpoint_lsn,
        last_lsn=scan.last_lsn,
        replayed=engine.replayed,
        skipped=engine.skipped,
        truncated_bytes=durability.wal.truncated_bytes,
        digest=controller.state.digest(),
        problems=tuple(problems),
        notes=tuple(notes),
        wall_s=time.perf_counter() - t0,
    )
    assert controller.recorder is not None
    controller.recorder.snap(
        "recovery",
        kind=report.kind,
        checkpoint_lsn=report.checkpoint_lsn,
        last_lsn=report.last_lsn,
        replayed=report.replayed,
        digest=report.digest,
        ok=report.ok,
    )
    return controller, report


def recover_fabric(
    directory: str | Path,
    with_dataplane: bool | None = None,
    fsync: str = "always",
    batch_every: int = 64,
    checkpoint_every: int = 256,
) -> tuple[FabricOrchestrator, RecoveryReport]:
    """Rebuild a whole fabric from its durability directory.

    The fabric manifest log is the authoritative redo log: records are
    replayed through the real fabric ops, which re-drive the shard
    controllers exactly as the original run did.  The per-switch WAL shards
    serve as an audit trail: each recovered shard's digest must be *some*
    state that shard actually committed (its genesis state, its checkpoint
    state, or a state journaled in its shard log) — violations are reported
    as non-fatal notes.
    """
    t0 = time.perf_counter()
    directory = Path(directory)
    manifest = read_manifest(directory)
    if manifest.get("kind") != "fabric":
        raise DurabilityError(
            f"{directory} holds a {manifest.get('kind')!r} manifest, "
            f"not a fabric"
        )
    fabric = fabric_from_manifest(manifest, with_dataplane=with_dataplane)
    topology = fabric.topology
    genesis_digests = {
        name: fabric.shards[name].state.digest()
        for name in topology.switch_names
    }

    problems: list[str] = []
    notes: list[str] = []
    scan = scan_wal(directory / FabricDurability.WAL_NAME)
    store = CheckpointStore(directory)
    checkpoint = store.load_latest()
    checkpoint_lsn = 0
    if checkpoint is not None:
        try:
            restore_fabric(fabric, checkpoint)
            checkpoint_lsn = int(checkpoint["lsn"])
        except DurabilityError as exc:
            problems.append(f"checkpoint restore failed: {exc}")
    else:
        note = _checkpoint_fallback_note(store, scan.base_lsn)
        if note is not None:
            notes.append(note)
            if scan.base_lsn > 0:
                problems.append(
                    f"no loadable checkpoint but the WAL was compacted to "
                    f"base lsn {scan.base_lsn}: records 1..{scan.base_lsn} "
                    f"are unrecoverable"
                )
    engine = RecoveryEngine(
        lambda record: apply_fabric_record(fabric, record),
        applied_lsn=checkpoint_lsn,
    )
    engine.replay(scan.records)
    problems.extend(engine.problems)
    problems.extend(fabric.check_invariant())

    durability = FabricDurability(
        directory,
        fsync=fsync,
        batch_every=batch_every,
        checkpoint_every=checkpoint_every,
    )
    # Audit the shard logs *before* attach (attaching truncates torn shard
    # tails and a post-recovery checkpoint compacts them away entirely).
    ckpt_digests = checkpoint["shard_digests"] if checkpoint else {}
    for name in topology.switch_names:
        shard_scan = scan_wal(durability.shard_wal_path(name))
        committed = {genesis_digests[name]}
        if name in ckpt_digests:
            committed.add(ckpt_digests[name])
        committed.update(
            record.data["digest"]
            for record in shard_scan.records
            if "digest" in record.data
        )
        recovered = fabric.shards[name].state.digest()
        if recovered not in committed:
            notes.append(
                f"shard {name}: recovered digest {recovered} matches no "
                f"state in its audit log ({len(shard_scan.records)} records)"
            )
    durability.attach(fabric)
    if not problems:
        durability.checkpoint(fabric)
    report = RecoveryReport(
        kind="fabric",
        checkpoint_lsn=checkpoint_lsn,
        last_lsn=scan.last_lsn,
        replayed=engine.replayed,
        skipped=engine.skipped,
        truncated_bytes=durability.wal.truncated_bytes,
        digest=fabric.digest(),
        problems=tuple(problems),
        notes=tuple(notes),
        wall_s=time.perf_counter() - t0,
    )
    fabric.recorder.snap(
        "recovery",
        kind=report.kind,
        checkpoint_lsn=report.checkpoint_lsn,
        last_lsn=report.last_lsn,
        replayed=report.replayed,
        digest=report.digest,
        ok=report.ok,
    )
    return fabric, report
