"""The write-ahead log: an append-only JSONL journal of committed ops.

Every committed control-plane operation (admit / evict / modify / drain /
stitch / reconfigure) lands here as one line::

    {"crc": <crc32>, "rec": {"lsn": N, "op": "admit", "data": {...}}}

with a monotonic log sequence number (LSN), a CRC32 over the canonical JSON
of the record, and an fsync policy decided at construction:

``always``
    fsync after every append — the record is durable before the operation's
    result is returned (durability-before-acknowledgment).
``batch``
    fsync every ``batch_every`` appends (and on :meth:`sync` /
    :meth:`close`); a crash can lose at most one batch of acknowledged ops.
``off``
    never fsync except on clean :meth:`close` — fastest, weakest.

Opening an existing log performs **torn-tail truncation**: records are
scanned in order and the file is cut back to the last byte of the longest
valid prefix (a half-written line from a crash mid-append, a CRC mismatch
from on-disk corruption, or an LSN discontinuity all end the prefix).  The
recovery engine therefore always sees a clean, gap-free sequence of records.

Compaction (:meth:`compact`, driven by checkpoints) atomically rewrites the
log keeping only records past the checkpoint LSN.  LSNs survive compaction:
the first line of every log file is a ``_header`` record carrying the base
LSN the file continues from.

The log is **thread-safe** and implements **leader-based group commit**:
concurrent committers under ``fsync="always"`` each append under the log
mutex, then wait until their bytes are durable — the first waiter becomes
the *sync leader*, performs one ``fdatasync`` covering every append made so
far (the GIL is released during the syscall, so other committers keep
appending meanwhile), and wakes everyone whose offset the sync covered.
``N`` concurrent committers therefore share ``~1`` sync instead of paying
``N`` — the amortization the concurrent control-plane front end
(:mod:`repro.frontend`) is built on, with unchanged
durability-before-acknowledgment semantics.

For high availability (:mod:`repro.ha`) every record is additionally
stamped with the writer's **epoch** — the monotonic fencing token of the
lease reign that committed it (0 when HA is not in play; old logs without
the field parse as epoch 0).  A ``fence`` guard installed on the log is
checked at the top of every :meth:`append`, so a deposed primary's
appends raise :class:`~repro.errors.FencedError` *before* allocating an
LSN — a fenced node cannot journal, therefore cannot acknowledge.
:class:`WalTailer` is the shipping side's incremental reader: it follows
the log file across appends and compactions and reports a *gap* when
records it never saw were compacted away (the signal to resync from a
checkpoint).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.errors import DurabilityError, FencedError

#: fsync policies accepted by :class:`WriteAheadLog`.
FSYNC_POLICIES = ("always", "batch", "off")

#: Reserved op name of the per-file base-LSN header record.
HEADER_OP = "_header"

#: On-disk format version written into every header record.
WAL_VERSION = 1


@dataclass(frozen=True)
class WalRecord:
    """One committed log record: LSN, op name, the op's JSON payload, and
    the fencing epoch of the lease reign that wrote it (0 = no HA)."""

    lsn: int
    op: str
    data: dict
    epoch: int = 0

    def to_line(self) -> bytes:
        """The record's on-disk line (CRC envelope + trailing newline)."""
        body = _canonical(
            {
                "lsn": self.lsn,
                "op": self.op,
                "data": self.data,
                "epoch": self.epoch,
            }
        )
        crc = zlib.crc32(body.encode("utf-8"))
        return f'{{"crc":{crc},"rec":{body}}}\n'.encode("utf-8")


def _canonical(payload: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — the CRC's input."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WalScan:
    """Result of scanning a log file for its longest valid prefix."""

    base_lsn: int
    records: tuple[WalRecord, ...]
    good_offset: int
    dropped_bytes: int
    problems: tuple[str, ...]

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else self.base_lsn


def scan_wal(path: str | Path) -> WalScan:
    """Scan a log file, returning the longest valid record prefix.

    The scan stops at the first invalid line — unparseable JSON (torn
    tail), CRC mismatch (corruption), missing trailing newline (partial
    write), or a non-contiguous LSN — and reports how many tail bytes lie
    beyond the valid prefix.  A missing or invalid *header* line yields an
    empty scan with a problem string (the file cannot be trusted at all).
    """
    path = Path(path)
    if not path.exists():
        return WalScan(0, (), 0, 0, ())
    raw = path.read_bytes()
    offset = 0
    base_lsn: int | None = None
    records: list[WalRecord] = []
    problems: list[str] = []
    last_lsn = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            problems.append(f"torn tail: partial line at byte {offset}")
            break
        line = raw[offset : newline + 1]
        record = _parse_line(line)
        if record is None:
            problems.append(f"invalid record at byte {offset}")
            break
        if record.op == HEADER_OP:
            if base_lsn is not None or records:
                problems.append(f"unexpected header record at byte {offset}")
                break
            base_lsn = int(record.data.get("base_lsn", record.lsn))
            last_lsn = base_lsn
        else:
            if base_lsn is None:
                problems.append("log does not start with a header record")
                break
            if record.lsn != last_lsn + 1:
                problems.append(
                    f"LSN discontinuity at byte {offset}: "
                    f"{record.lsn} after {last_lsn}"
                )
                break
            records.append(record)
            last_lsn = record.lsn
        offset = newline + 1
    if base_lsn is None:
        # Header unreadable: nothing in the file can be trusted.
        return WalScan(0, (), 0, len(raw), tuple(problems))
    return WalScan(
        base_lsn=base_lsn,
        records=tuple(records),
        good_offset=offset,
        dropped_bytes=len(raw) - offset,
        problems=tuple(problems),
    )


def _parse_line(line: bytes) -> WalRecord | None:
    """Parse + CRC-verify one line; ``None`` on any mismatch."""
    try:
        outer = json.loads(line)
        crc = int(outer["crc"])
        rec = outer["rec"]
        body = _canonical(rec)
        if zlib.crc32(body.encode("utf-8")) != crc:
            return None
        return WalRecord(
            lsn=int(rec["lsn"]),
            op=str(rec["op"]),
            data=rec["data"],
            epoch=int(rec.get("epoch", 0)),
        )
    except (ValueError, KeyError, TypeError):
        return None


class WriteAheadLog:
    """An append-only, CRC-protected, LSN-sequenced JSONL journal."""

    def __init__(
        self,
        path: str | Path,
        fsync: str = "always",
        batch_every: int = 64,
        fault_hook: Callable[[str], None] | None = None,
        epoch: int = 0,
        fence: Callable[[], None] | None = None,
        start_lsn: int | None = None,
    ) -> None:
        """Open (or create) the log at ``path``.  Opening an existing file
        truncates any torn/corrupt tail back to the longest valid prefix.

        ``fault_hook`` is the fault-injection seam: when set, it is called
        with a site name (``"wal.before-append"``, ``"wal.after-append"``,
        ``"wal.before-fsync"``, ``"wal.after-fsync"``, and the compaction
        rename window ``"wal.compact.before-rename"`` /
        ``"wal.compact.after-rename"``) at each durability boundary and may
        raise to simulate a crash exactly there.

        ``epoch`` stamps every appended record with the writer's fencing
        token; ``fence`` (a callable raising
        :class:`~repro.errors.FencedError`) is checked at the top of every
        append.  ``start_lsn`` seeds a **fresh** file's base LSN — a
        promoted standby continues the primary's LSN sequence this way
        (ignored when the file already holds records).
        """
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; choices: {FSYNC_POLICIES}"
            )
        if batch_every < 1:
            raise DurabilityError("batch_every must be >= 1")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.batch_every = batch_every
        self.fault_hook = fault_hook
        #: Fencing token stamped into every appended record (mutable: a
        #: promotion re-arms the log at the new lease epoch).
        self.epoch = int(epoch)
        #: Optional fence guard, checked before every append.
        self.fence = fence
        # One mutex guards file writes, offsets, and LSN allocation; the
        # condition on top of it coordinates the group-commit sync leader.
        self._cv = threading.Condition()
        self._sync_leader_active = False
        self.path.parent.mkdir(parents=True, exist_ok=True)

        scan = scan_wal(self.path)
        #: Problems found while opening (torn tail, corruption); the tail
        #: beyond the valid prefix was truncated away.
        self.open_problems: tuple[str, ...] = scan.problems
        #: Bytes dropped by torn-tail truncation on open.
        self.truncated_bytes = scan.dropped_bytes
        self._base_lsn = scan.base_lsn
        self.last_lsn = scan.last_lsn
        if scan.dropped_bytes and self.path.exists():
            with self.path.open("r+b") as fh:
                fh.truncate(scan.good_offset)
                fh.flush()
                os.fsync(fh.fileno())
        fresh = not self.path.exists() or scan.good_offset == 0
        self._fh = self.path.open("ab")
        self._offset = scan.good_offset
        self._durable_offset = scan.good_offset
        self._since_sync = 0
        self.appended = 0
        if fresh:
            if start_lsn is not None:
                self.last_lsn = max(self.last_lsn, int(start_lsn))
            self._write_header(base_lsn=self.last_lsn)
            if self.fsync_policy != "off":
                # A brand-new log file must itself survive power loss:
                # fsync the header bytes *and* the parent directory entry,
                # else a crash could make an acknowledged-empty log vanish.
                os.fsync(self._fh.fileno())
                _fsync_dir(self.path.parent)
                self._durable_offset = self._offset

    # ------------------------------------------------------------------
    @property
    def offset(self) -> int:
        """Byte offset past the last written record."""
        return self._offset

    @property
    def durable_offset(self) -> int:
        """Byte offset guaranteed on stable storage (last fsync)."""
        return self._durable_offset

    def _hook(self, site: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(site)

    def _write_header(self, base_lsn: int) -> None:
        line = WalRecord(
            lsn=base_lsn,
            op=HEADER_OP,
            data={"version": WAL_VERSION, "base_lsn": base_lsn},
        ).to_line()
        self._fh.write(line)
        self._fh.flush()
        self._offset += len(line)
        self._base_lsn = base_lsn

    # ------------------------------------------------------------------
    def append(self, op: str, data: dict) -> WalRecord:
        """Append one record (the next LSN) and apply the fsync policy.

        Safe to call from concurrent committers: LSN allocation and the
        file write happen under the log mutex, and ``fsync="always"``
        callers return only once their bytes are durable — via the
        group-commit protocol, so concurrent callers share syncs.

        When a ``fence`` guard is installed (HA), it runs first: a deposed
        primary raises :class:`~repro.errors.FencedError` here, before any
        LSN is allocated or byte written — the op is never journaled, so
        it can never be acknowledged."""
        if op == HEADER_OP:
            raise DurabilityError(f"op name {HEADER_OP!r} is reserved")
        if self.fence is not None:
            self.fence()
        self._hook("wal.before-append")
        batch_due = False
        with self._cv:
            record = WalRecord(
                lsn=self.last_lsn + 1, op=op, data=data, epoch=self.epoch
            )
            line = record.to_line()
            # No flush here: the buffer drains on sync/close/abort/records(),
            # so a hot loop pays one write syscall per batch, not per record.
            self._fh.write(line)
            self._offset += len(line)
            self.last_lsn = record.lsn
            self.appended += 1
            target = self._offset
            if self.fsync_policy == "batch":
                self._since_sync += 1
                batch_due = self._since_sync >= self.batch_every
        self._hook("wal.after-append")
        if self.fsync_policy == "always":
            self._ensure_durable(target)
        elif batch_due:
            self.sync()
        return record

    def sync(self) -> None:
        """Force everything appended so far onto stable storage.

        Uses ``fdatasync`` where the platform has it (the journal only
        needs its *data* durable; skipping the metadata flush is the
        standard WAL trade, and measurably cheaper on ext4)."""
        with self._cv:
            target = self._offset
        self._ensure_durable(target)

    def _ensure_durable(self, target: int) -> None:
        """Block until byte offset ``target`` is on stable storage.

        Group commit: the first waiter whose target is not yet durable
        becomes the sync leader and performs one flush + ``fdatasync``
        covering every byte appended so far; everyone else waits on the
        condition and is woken when the leader's sync covered them.  The
        GIL is released inside ``fdatasync``, so committers keep appending
        (and queuing behind the *next* sync) while the leader is in the
        kernel — which is exactly what amortizes syncs across workers."""
        while True:
            with self._cv:
                if self._durable_offset >= target:
                    return
                if self._sync_leader_active:
                    self._cv.wait(0.1)
                    continue
                self._sync_leader_active = True
                goal = self._offset
            try:
                self._hook("wal.before-fsync")
                self._fh.flush()
                getattr(os, "fdatasync", os.fsync)(self._fh.fileno())
                with self._cv:
                    self._durable_offset = max(self._durable_offset, goal)
                    self._since_sync = 0
                self._hook("wal.after-fsync")
            finally:
                with self._cv:
                    self._sync_leader_active = False
                    self._cv.notify_all()

    def close(self) -> None:
        """Clean shutdown: flush + fsync, then close the handle."""
        if self._fh.closed:
            return
        self.sync()
        with self._cv:
            self._fh.close()

    def abort(self) -> None:
        """Close the handle *without* syncing — the fault harness's
        simulated process death (buffered-but-unsynced bytes keep whatever
        fate the harness then assigns the file)."""
        with self._cv:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    # ------------------------------------------------------------------
    def records(self) -> list[WalRecord]:
        """All valid records currently on disk, in LSN order."""
        with self._cv:
            self._fh.flush()
        return list(scan_wal(self.path).records)

    def compact(self, upto_lsn: int) -> int:
        """Drop records with ``lsn <= upto_lsn`` (they are covered by a
        checkpoint), preserving LSN continuity via the file header.  The
        rewrite is atomic (tmp + rename + fsync).  Returns the number of
        records dropped."""
        with self._cv:
            self._fh.flush()
            scan = scan_wal(self.path)
            keep = [r for r in scan.records if r.lsn > upto_lsn]
            dropped = len(scan.records) - len(keep)
            base = max(scan.base_lsn, min(upto_lsn, self.last_lsn))
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp.open("wb") as fh:
                fh.write(
                    WalRecord(
                        lsn=base,
                        op=HEADER_OP,
                        data={"version": WAL_VERSION, "base_lsn": base},
                    ).to_line()
                )
                for record in keep:
                    fh.write(record.to_line())
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            self._hook("wal.compact.before-rename")
            os.replace(tmp, self.path)
            # Crash window: the rename is in the directory's page cache but
            # not yet durable — the dir fsync below closes it.  The hook
            # lets the fault sweep kill the process exactly in between.
            self._hook("wal.compact.after-rename")
            _fsync_dir(self.path.parent)
            self._fh = self.path.open("ab")
            self._offset = self.path.stat().st_size
            self._durable_offset = self._offset
            self._since_sync = 0
            self._base_lsn = base
            return dropped

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={str(self.path)!r}, "
            f"last_lsn={self.last_lsn}, fsync={self.fsync_policy!r})"
        )


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a rename inside it is durable (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover — platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def replay_iter(records: Iterable[WalRecord], after_lsn: int) -> Iterable[WalRecord]:
    """The records with ``lsn > after_lsn`` — the replay window a recovery
    starting from a checkpoint at ``after_lsn`` must apply."""
    return (r for r in records if r.lsn > after_lsn)


class WalTailer:
    """Incremental follower of a live (or dead) log file.

    :meth:`poll` returns the records appended since the last poll, reading
    only the new bytes on the happy path.  The tailer survives everything
    the file can do while it watches:

    * an in-flight append (a trailing partial line) is left unread and
      retried on the next poll;
    * a compaction (the file shrank, or a header record appears mid-read)
      triggers a full :func:`scan_wal` resync;
    * records the tailer never saw being compacted away is reported as a
      **gap** — the caller must restore a checkpoint at or past the new
      base LSN before applying the returned records (the replica's LSN
      gate then skips the overlap).

    A mutilated tail (torn or corrupt bytes after a crash) simply ends the
    readable prefix — exactly the records a recovery would see.
    """

    def __init__(self, path: str | Path, after_lsn: int = 0) -> None:
        self.path = Path(path)
        #: LSN of the last record delivered (start: the caller's resume point).
        self.last_lsn = int(after_lsn)
        self._offset = 0
        self._synced = False  # offset is valid for the current file layout

    def poll(self) -> tuple[list[WalRecord], bool]:
        """``(new_records, gap)`` — records with ``lsn > last_lsn`` in
        order, and whether a compaction dropped records this tailer never
        delivered (resync from a checkpoint required)."""
        if not self.path.exists():
            return [], False
        size = self.path.stat().st_size
        if not self._synced or size < self._offset:
            return self._rescan()
        if size == self._offset:
            return [], False
        with self.path.open("rb") as fh:
            fh.seek(self._offset)
            raw = fh.read(size - self._offset)
        out: list[WalRecord] = []
        rel = 0
        while True:
            newline = raw.find(b"\n", rel)
            if newline < 0:
                break  # partial line: an append in flight, retry next poll
            record = _parse_line(raw[rel : newline + 1])
            if record is None:
                # A *complete* but invalid line mid-file: either the file
                # was rewritten under us or the tail is corrupt — a full
                # rescan settles which (and where the valid prefix ends).
                return self._rescan()
            if record.op == HEADER_OP:
                return self._rescan()  # file rewritten and regrown
            if record.lsn > self.last_lsn + 1:
                return self._rescan()  # discontinuity: resync
            if record.lsn == self.last_lsn + 1:
                out.append(record)
                self.last_lsn = record.lsn
            rel = newline + 1
        self._offset += rel
        return out, False

    def _rescan(self) -> tuple[list[WalRecord], bool]:
        scan = scan_wal(self.path)
        gap = scan.base_lsn > self.last_lsn
        out = [r for r in scan.records if r.lsn > self.last_lsn]
        if out:
            self.last_lsn = out[-1].lsn
        elif gap:
            # Everything below the new base is gone; future polls resume
            # from the base (the checkpoint the caller restores covers it).
            self.last_lsn = scan.base_lsn
        self._offset = scan.good_offset
        self._synced = True
        return out, gap
