"""Deterministic fault injection: seeded crash points + disk mutilation.

The harness simulates process death *in-process* and disk loss *on the real
file*, so every scenario the recovery engine must survive is reproducible
from a seed:

* :class:`FaultInjector` — raises :class:`CrashError` at the N-th visit of
  a named durability site (the :class:`~repro.durability.wal.WriteAheadLog`
  hook sites: ``wal.before-append`` / ``wal.after-append`` /
  ``wal.before-fsync`` / ``wal.after-fsync``), killing the run *before* or
  *after* each durability boundary.
* :class:`CountdownCrash` — a generic callable that dies after N calls;
  plug it into :attr:`TransactionalInstaller.on_batch` to die mid two-phase
  install, or into a shard WAL's hook to die mid drain.
* Disk mutilation — :func:`lose_unsynced_tail` (drop everything past the
  last fsync: the page cache died with the process), :func:`tear_tail`
  (a half-written last line), :func:`corrupt_tail` (a flipped bit in the
  last record).  Applied to the WAL file after :meth:`WriteAheadLog.abort`,
  they reproduce exactly the on-disk states a real crash can leave.

``crash_sites(...)`` enumerates the seeded sweep the fault suite drives:
every injection site × crash ordinal, deterministic under a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DurabilityError

#: The WAL hook sites a :class:`FaultInjector` can crash at.
WAL_SITES = (
    "wal.before-append",
    "wal.after-append",
    "wal.before-fsync",
    "wal.after-fsync",
)

#: The atomic-rename windows: between ``os.replace`` and the directory
#: fsync that makes it durable, for checkpoint writes and WAL compaction.
CHECKPOINT_SITES = (
    "checkpoint.before-rename",
    "checkpoint.after-rename",
    "wal.compact.before-rename",
    "wal.compact.after-rename",
)

#: Every durability crash site — the HA kill-primary sweep arms all of
#: these on the primary and asserts the promoted standby lands
#: digest-identical at the committed LSN regardless of where death struck.
DURABILITY_SITES = WAL_SITES + CHECKPOINT_SITES

#: How the disk may look after the process dies (applied post-abort).
DISK_MODES = ("keep", "lose-unsynced", "tear", "corrupt")


class CrashError(DurabilityError):
    """The simulated process death.  Raised by injectors at their armed
    site; test harnesses catch it where a real deployment would restart."""


@dataclass(frozen=True)
class CrashPoint:
    """One armed crash: die at the ``at``-th visit of ``site`` (1-based)."""

    site: str
    at: int = 1

    def __post_init__(self) -> None:
        if self.at < 1:
            raise DurabilityError("crash ordinal is 1-based")


class FaultInjector:
    """A WAL ``fault_hook`` that dies at a specific visit of one site.

    Counts every visit of every site (so a test can assert coverage), and
    raises :class:`CrashError` the moment the armed :class:`CrashPoint` is
    reached.  ``fired`` records whether the crash actually happened —
    sweeps use it to skip sites a scenario never visits.
    """

    def __init__(self, point: CrashPoint | None) -> None:
        self.point = point
        self.visits: dict[str, int] = {}
        self.fired = False

    def __call__(self, site: str) -> None:
        self.visits[site] = self.visits.get(site, 0) + 1
        if (
            self.point is not None
            and not self.fired
            and site == self.point.site
            and self.visits[site] == self.point.at
        ):
            self.fired = True
            raise CrashError(f"injected crash at {site} (visit {self.point.at})")


class CountdownCrash:
    """A generic callable that raises :class:`CrashError` on its N-th call.

    Signature-agnostic (``*args, **kwargs``), so it plugs into any hook:
    ``installer.on_batch`` to die between the two phases of an install, or
    a shard WAL's ``fault_hook`` to die partway through a drain's re-homing
    cascade.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise DurabilityError("countdown is 1-based")
        self.remaining = n
        self.calls = 0
        self.fired = False

    def __call__(self, *args, **kwargs) -> None:
        self.calls += 1
        self.remaining -= 1
        if self.remaining == 0 and not self.fired:
            self.fired = True
            raise CrashError(f"injected crash after {self.calls} calls")


# ----------------------------------------------------------------------
# Disk mutilation (applied to the WAL file after abort())
# ----------------------------------------------------------------------
def lose_unsynced_tail(path: str | Path, durable_offset: int) -> int:
    """Drop every byte past ``durable_offset`` — the bytes that only lived
    in the page cache when the process died.  Returns bytes dropped."""
    path = Path(path)
    if not path.exists():
        return 0
    size = path.stat().st_size
    if size <= durable_offset:
        return 0
    with path.open("r+b") as fh:
        fh.truncate(durable_offset)
    return size - durable_offset


def tear_tail(path: str | Path) -> int:
    """Cut the last line in half — a crash mid-write left a torn record.
    Returns bytes dropped (0 if the file has no last line to tear)."""
    path = Path(path)
    if not path.exists():
        return 0
    raw = path.read_bytes()
    if not raw:
        return 0
    body = raw[:-1] if raw.endswith(b"\n") else raw
    start = body.rfind(b"\n") + 1  # 0 when the file holds a single line
    line_len = len(raw) - start
    cut = start + max(1, line_len // 2)
    with path.open("r+b") as fh:
        fh.truncate(cut)
    return len(raw) - cut


def corrupt_tail(path: str | Path) -> bool:
    """Flip one bit inside the last record — silent on-disk corruption the
    CRC must catch.  Returns whether anything was flipped."""
    path = Path(path)
    if not path.exists():
        return False
    raw = bytearray(path.read_bytes())
    if not raw:
        return False
    body_end = len(raw) - 1 if raw.endswith(b"\n") else len(raw)
    start = raw.rfind(b"\n", 0, body_end) + 1
    if start >= body_end:
        return False
    target = start + (body_end - start) // 2
    raw[target] ^= 0x10
    path.write_bytes(bytes(raw))
    return True


def mutilate(path: str | Path, mode: str, durable_offset: int = 0) -> None:
    """Apply one :data:`DISK_MODES` entry to a WAL file post-abort."""
    if mode == "keep":
        return
    if mode == "lose-unsynced":
        lose_unsynced_tail(path, durable_offset)
    elif mode == "tear":
        tear_tail(path)
    elif mode == "corrupt":
        corrupt_tail(path)
    else:
        raise DurabilityError(f"unknown disk mode {mode!r}; choices: {DISK_MODES}")


def crash_sites(
    seed: int, max_ordinal: int, sites: tuple[str, ...] = WAL_SITES
) -> list[CrashPoint]:
    """The seeded crash-point sweep: every site × a deterministic sample of
    crash ordinals in ``[1, max_ordinal]``.  Same seed → same sweep."""
    if max_ordinal < 1:
        raise DurabilityError("max_ordinal must be >= 1")
    rng = random.Random(seed)
    points: list[CrashPoint] = []
    for site in sites:
        ordinals = {1, max_ordinal}
        while len(ordinals) < min(4, max_ordinal):
            ordinals.add(rng.randint(1, max_ordinal))
        points.extend(CrashPoint(site=site, at=n) for n in sorted(ordinals))
    return points
