"""Checkpoints: periodic full snapshots of controller / fabric state.

A checkpoint freezes everything recovery needs to rebuild a **bit-identical**
control-plane state without replaying history: the physical NF layout, every
live tenant's chain and its *actual* committed stages (stages must be
recorded, not re-derived — a tenant's placement depends on the full history
of arrivals and departures, not just the survivors), the fabric directory
with its stitched segments and link charges, and the drained-switch set.
Shapes are JSON-native with sorted keys (the same discipline as
``MetricsRegistry.snapshot``), carry the state digest they were taken at,
and are CRC-protected on disk.

:class:`CheckpointStore` writes checkpoints atomically (tmp + rename +
fsync), retains the most recent few, and skips corrupt files at load time.

:class:`ControllerDurability` / :class:`FabricDurability` are the attach-side
coordinators: they own the write-ahead log(s), write the recovery manifest,
journal every committed op, and checkpoint + compact every
``checkpoint_every`` ops.  The fabric variant keeps **one WAL shard per
switch** (each shard controller journals its own ops) plus the fabric-level
manifest log that recovery replays.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.spec import SFC
from repro.durability.wal import WriteAheadLog, _canonical, _fsync_dir
from repro.errors import DurabilityError

if TYPE_CHECKING:  # import cycle: controller/fabric import this module's users
    from repro.controller.controller import SfcController
    from repro.fabric.orchestrator import FabricOrchestrator

MANIFEST_NAME = "MANIFEST.json"
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Snapshot / restore shapes
# ----------------------------------------------------------------------
def controller_checkpoint(controller: "SfcController", lsn: int) -> dict:
    """Snapshot one controller's full control-plane state at WAL ``lsn``."""
    return {
        "kind": "controller-checkpoint",
        "version": CHECKPOINT_VERSION,
        "lsn": int(lsn),
        "name": controller.name,
        "physical": controller.state.physical.astype(int).tolist(),
        "tenants": [
            {
                "tenant_id": t,
                "sfc": controller.tenants[t].sfc.to_dict(),
                "stages": list(controller.tenants[t].stages),
            }
            for t in sorted(controller.tenants)
        ],
        "digest": controller.state.digest(),
    }


def restore_controller(controller: "SfcController", checkpoint: dict) -> None:
    """Rebuild a freshly constructed controller from a checkpoint.

    The physical layout is adopted wholesale (it includes NFs left installed
    by since-evicted tenants — part of the live state), every tenant is
    re-installed at its *recorded* stages through
    :meth:`SfcController.restore_tenant`, and the backplane float is
    renormalized in sorted-tenant order.  The result must match the
    checkpoint's digest bit for bit, else the checkpoint is rejected.
    """
    if controller.tenants:
        raise DurabilityError("checkpoint restore needs a fresh controller")
    layout = np.asarray(checkpoint["physical"], dtype=bool)
    controller.state.physical = layout
    if controller.with_dataplane:
        created: list[tuple[int, str]] = []
        controller._ensure_physical(np.zeros_like(layout), created)
    for entry in checkpoint["tenants"]:
        controller.restore_tenant(
            SFC.from_dict(entry["sfc"]), tuple(entry["stages"])
        )
    controller._renormalize_backplane()
    controller._refresh_gauges()
    digest = controller.state.digest()
    if digest != checkpoint["digest"]:
        raise DurabilityError(
            f"checkpoint restore diverged: state digest {digest} != "
            f"recorded {checkpoint['digest']}"
        )


def fabric_checkpoint(fabric: "FabricOrchestrator", lsn: int) -> dict:
    """Snapshot a whole fabric: per-switch layouts, the tenant directory
    (segments + links), and the drained set, at fabric WAL ``lsn``."""
    return {
        "kind": "fabric-checkpoint",
        "version": CHECKPOINT_VERSION,
        "lsn": int(lsn),
        "physical": {
            name: fabric.shards[name].state.physical.astype(int).tolist()
            for name in fabric.topology.switch_names
        },
        "tenants": [
            {
                "tenant_id": t,
                "sfc": fabric.tenants[t].sfc.to_dict(),
                "segments": [
                    {
                        "switch": seg.switch,
                        "sfc": seg.sfc.to_dict(),
                        "start": seg.start,
                        "stop": seg.stop,
                        "stages": list(seg.stages),
                    }
                    for seg in fabric.tenants[t].segments
                ],
                "links": [list(key) for key in fabric.tenants[t].links],
            }
            for t in sorted(fabric.tenants)
        ],
        "drained": sorted(fabric.drained),
        "shard_digests": {
            name: fabric.shards[name].state.digest()
            for name in fabric.topology.switch_names
        },
        "digest": fabric.digest(),
    }


def restore_fabric(fabric: "FabricOrchestrator", checkpoint: dict) -> None:
    """Rebuild a freshly constructed fabric from a checkpoint: restore each
    shard's layout, re-install every directory segment at its recorded
    stages, rebuild the directory and drained set, and renormalize link
    loads.  Verified against the recorded per-shard and fabric digests."""
    from repro.fabric.orchestrator import FabricTenant, Segment

    if fabric.tenants:
        raise DurabilityError("checkpoint restore needs a fresh fabric")
    for name, layout in checkpoint["physical"].items():
        if name not in fabric.shards:
            raise DurabilityError(f"checkpoint references unknown switch {name!r}")
        shard = fabric.shards[name]
        matrix = np.asarray(layout, dtype=bool)
        shard.state.physical = matrix
        if shard.with_dataplane:
            created: list[tuple[int, str]] = []
            shard._ensure_physical(np.zeros_like(matrix), created)
    for entry in checkpoint["tenants"]:
        tenant_id = int(entry["tenant_id"])
        segments = []
        for seg in entry["segments"]:
            seg_sfc = SFC.from_dict(seg["sfc"])
            fabric.shards[seg["switch"]].restore_tenant(
                seg_sfc, tuple(seg["stages"])
            )
            segments.append(
                Segment(
                    switch=seg["switch"],
                    sfc=seg_sfc,
                    start=int(seg["start"]),
                    stop=int(seg["stop"]),
                    stages=tuple(seg["stages"]),
                )
            )
        fabric.tenants[tenant_id] = FabricTenant(
            sfc=SFC.from_dict(entry["sfc"]),
            segments=tuple(segments),
            links=tuple(tuple(key) for key in entry["links"]),
        )
    fabric.drained = set(checkpoint["drained"])
    fabric._renormalize_links()
    fabric._refresh_gauges()
    for name, expected in checkpoint["shard_digests"].items():
        digest = fabric.shards[name].state.digest()
        if digest != expected:
            raise DurabilityError(
                f"checkpoint restore diverged on {name}: digest {digest} != "
                f"recorded {expected}"
            )
    digest = fabric.digest()
    if digest != checkpoint["digest"]:
        raise DurabilityError(
            f"checkpoint restore diverged: fabric digest {digest} != "
            f"recorded {checkpoint['digest']}"
        )


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------
class CheckpointStore:
    """Atomic, CRC-protected checkpoint files with bounded retention.

    Files are named ``checkpoint-<lsn>.json`` and written tmp + rename +
    dir-fsync, so a crash mid-checkpoint leaves the previous checkpoint
    intact.  :meth:`load_latest` walks newest-first and skips files that
    fail the CRC self-check, so one corrupt checkpoint degrades to the one
    before it instead of failing recovery outright.
    """

    def __init__(
        self, directory: str | Path, keep: int = 3, fault_hook=None
    ) -> None:
        """``fault_hook`` (same seam as the WAL's) is called at
        ``"checkpoint.before-rename"`` / ``"checkpoint.after-rename"`` —
        the window between the atomic rename and the directory fsync that
        makes it durable — and may raise to simulate a crash there."""
        if keep < 1:
            raise DurabilityError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = keep
        self.fault_hook = fault_hook
        self.directory.mkdir(parents=True, exist_ok=True)

    def _hook(self, site: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(site)

    def path_for(self, lsn: int) -> Path:
        """The on-disk file a checkpoint at ``lsn`` lives in."""
        return self.directory / f"checkpoint-{lsn:012d}.json"

    def lsns(self) -> list[int]:
        """LSNs of the checkpoints on disk, ascending."""
        out = []
        for path in self.directory.glob("checkpoint-*.json"):
            try:
                out.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def save(self, checkpoint: dict) -> Path:
        """Write one checkpoint atomically and prune old ones."""
        lsn = int(checkpoint["lsn"])
        body = _canonical(checkpoint)
        envelope = {"crc": zlib.crc32(body.encode("utf-8")), "checkpoint": checkpoint}
        path = self.path_for(lsn)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(envelope, fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._hook("checkpoint.before-rename")
        os.replace(tmp, path)
        # Crash window: the rename exists only in the directory's page
        # cache until the dir fsync below — an acknowledged checkpoint
        # must not be able to vanish on power loss.
        self._hook("checkpoint.after-rename")
        _fsync_dir(self.directory)
        for old in self.lsns()[: -self.keep]:
            self.path_for(old).unlink(missing_ok=True)
        return path

    def load(self, lsn: int) -> dict | None:
        """One checkpoint by LSN; ``None`` if missing or corrupt."""
        path = self.path_for(lsn)
        if not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            checkpoint = envelope["checkpoint"]
            body = _canonical(checkpoint)
            if zlib.crc32(body.encode("utf-8")) != int(envelope["crc"]):
                return None
            return checkpoint
        except (ValueError, KeyError, TypeError):
            return None

    def load_latest(self) -> dict | None:
        """The newest checkpoint that passes its CRC self-check."""
        for lsn in reversed(self.lsns()):
            checkpoint = self.load(lsn)
            if checkpoint is not None:
                return checkpoint
        return None


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def _write_manifest(directory: Path, manifest: dict) -> None:
    path = directory / MANIFEST_NAME
    if path.exists():
        return  # manifests are immutable once written
    tmp = path.with_suffix(".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(directory)


def read_manifest(directory: str | Path) -> dict:
    """The recovery manifest at ``directory`` (raises if absent/corrupt)."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise DurabilityError(f"no {MANIFEST_NAME} in {directory}")
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise DurabilityError(f"corrupt manifest {path}: {exc}") from exc


def _switch_spec_dict(spec) -> dict:
    return spec.to_dict()


def _policy_dict(policy) -> dict:
    return {
        "max_tenants": policy.max_tenants,
        "check_memory": policy.check_memory,
        "check_backplane": policy.check_backplane,
    }


def controller_manifest(controller: "SfcController") -> dict:
    """Everything needed to reconstruct an equivalent empty controller."""
    return {
        "kind": "controller",
        "version": CHECKPOINT_VERSION,
        "name": controller.name,
        "switch": _switch_spec_dict(controller.base.switch),
        "num_types": controller.base.num_types,
        "max_recirculations": controller.base.max_recirculations,
        "consolidate": controller.consolidate,
        "reserve_physical_block": controller.reserve_physical_block,
        "reconfigure_threshold": controller.reconfigure_threshold,
        "with_dataplane": controller.with_dataplane,
        "policy": _policy_dict(controller.policy),
    }


def fabric_manifest(fabric: "FabricOrchestrator", partitioner_name: str) -> dict:
    """Everything needed to reconstruct an equivalent empty fabric."""
    return {
        "kind": "fabric",
        "version": CHECKPOINT_VERSION,
        "num_types": fabric.num_types,
        "partitioner": partitioner_name,
        "with_dataplane": fabric.with_dataplane,
        "nodes": [
            {
                "name": node.name,
                "spec": _switch_spec_dict(node.spec),
                "max_recirculations": node.max_recirculations,
            }
            for node in (
                fabric.topology.nodes[n] for n in fabric.topology.switch_names
            )
        ],
        "links": [
            {"a": link.a, "b": link.b, "capacity_gbps": link.capacity_gbps}
            for link in (fabric.topology.links[k] for k in sorted(fabric.topology.links))
        ],
        "policy": _policy_dict(next(iter(fabric.shards.values())).policy),
        "consolidate": next(iter(fabric.shards.values())).consolidate,
        "reserve_physical_block": next(
            iter(fabric.shards.values())
        ).reserve_physical_block,
    }


def _partitioner_name(partitioner) -> str:
    from repro.fabric.partitioner import PARTITIONERS

    for name, cls in PARTITIONERS.items():
        if type(partitioner) is cls:
            return name
    raise DurabilityError(
        f"partitioner {type(partitioner).__name__} is not in the registry; "
        f"durable fabrics need a registered partitioner "
        f"(choices: {sorted(PARTITIONERS)})"
    )


# ----------------------------------------------------------------------
# Attach-side coordinators
# ----------------------------------------------------------------------
class ShardWalLogger:
    """The per-switch WAL shard: journals one fabric shard controller's ops
    (no self-checkpointing — the fabric checkpoint supersedes it and the
    fabric coordinator compacts it)."""

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal

    def commit_op(self, controller: "SfcController", op: str, data: dict):
        """Append the op to this shard's audit log (same duck type as
        :class:`ControllerDurability`, so shard controllers need no special
        casing)."""
        return self.wal.append(op, data)


class ControllerDurability:
    """Durability coordinator for one standalone :class:`SfcController`:
    a manifest, one WAL, and a checkpoint store in one directory."""

    WAL_NAME = "wal.jsonl"

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "always",
        batch_every: int = 64,
        checkpoint_every: int = 256,
        keep_checkpoints: int = 3,
        fault_hook=None,
    ) -> None:
        """``checkpoint_every`` committed ops between automatic checkpoints
        (0 = only explicit :meth:`checkpoint` calls)."""
        if checkpoint_every < 0:
            raise DurabilityError("checkpoint_every must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(
            self.directory / self.WAL_NAME,
            fsync=fsync,
            batch_every=batch_every,
            fault_hook=fault_hook,
        )
        self.store = CheckpointStore(
            self.directory, keep=keep_checkpoints, fault_hook=fault_hook
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoints_taken = 0
        self._ops_since_checkpoint = 0

    def attach(self, controller: "SfcController") -> "ControllerDurability":
        """Bind to ``controller``: write the manifest (first attach only)
        and start journaling its committed ops."""
        _write_manifest(self.directory, controller_manifest(controller))
        controller.durability = self
        return self

    def set_epoch(self, epoch: int) -> None:
        """Stamp subsequent journaled records with fencing token ``epoch``."""
        self.wal.epoch = int(epoch)

    def set_fence(self, fence) -> None:
        """Install ``fence`` (raises :class:`~repro.errors.FencedError`)
        on the journal — a deposed primary's appends then fail fast."""
        self.wal.fence = fence

    def commit_op(self, controller: "SfcController", op: str, data: dict):
        """Journal one committed op; auto-checkpoint on the policy cadence."""
        record = self.wal.append(op, data)
        self._ops_since_checkpoint += 1
        if self.checkpoint_every and self._ops_since_checkpoint >= self.checkpoint_every:
            self.checkpoint(controller)
        return record

    def checkpoint(self, controller: "SfcController") -> dict:
        """Snapshot now, then compact the log up to the checkpoint LSN."""
        self.wal.sync()
        checkpoint = controller_checkpoint(controller, self.wal.last_lsn)
        self.store.save(checkpoint)
        self.wal.compact(upto_lsn=checkpoint["lsn"])
        self.checkpoints_taken += 1
        self._ops_since_checkpoint = 0
        return checkpoint

    def close(self) -> None:
        """Clean shutdown: flush + fsync + close the journal."""
        self.wal.close()

    def abort(self) -> None:
        """Simulated process death (fault harness): drop handles without
        the clean-shutdown fsync."""
        self.wal.abort()


class FabricDurability:
    """Durability coordinator for a :class:`FabricOrchestrator`: the fabric
    manifest log plus one WAL shard per switch, and fabric-wide checkpoints
    that compact all of them."""

    WAL_NAME = "fabric.wal.jsonl"
    SHARD_DIR = "shards"

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "always",
        batch_every: int = 64,
        checkpoint_every: int = 256,
        keep_checkpoints: int = 3,
        fault_hook=None,
        start_lsn: int | None = None,
    ) -> None:
        """``start_lsn`` seeds a fresh fabric WAL's base LSN — a promoted
        standby continues the failed primary's LSN sequence with it, so
        the per-LSN digest oracle stays contiguous across a failover."""
        if checkpoint_every < 0:
            raise DurabilityError("checkpoint_every must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.batch_every = batch_every
        self.fault_hook = fault_hook
        self.wal = WriteAheadLog(
            self.directory / self.WAL_NAME,
            fsync=fsync,
            batch_every=batch_every,
            fault_hook=fault_hook,
            start_lsn=start_lsn,
        )
        self.store = CheckpointStore(
            self.directory, keep=keep_checkpoints, fault_hook=fault_hook
        )
        self.checkpoint_every = checkpoint_every
        self.checkpoints_taken = 0
        self._ops_since_checkpoint = 0
        #: Gate on the ``checkpoint_every`` cadence.  The concurrent front
        #: end clears this while its worker pool runs — a checkpoint reads
        #: the whole fabric and may only happen at a quiesce point — and
        #: restores it (and checkpoints) on graceful shutdown.
        self.auto_checkpoints = True
        self.shard_wals: dict[str, WriteAheadLog] = {}
        self._epoch = 0
        self._fence = None

    def shard_wal_path(self, switch: str) -> Path:
        """The per-switch audit WAL file for ``switch``."""
        return self.directory / self.SHARD_DIR / f"{switch}.wal.jsonl"

    def attach(self, fabric: "FabricOrchestrator") -> "FabricDurability":
        """Bind to ``fabric``: write the manifest (first attach only), open
        one WAL shard per switch, and start journaling."""
        _write_manifest(
            self.directory,
            fabric_manifest(fabric, _partitioner_name(fabric.partitioner)),
        )
        for name, shard in fabric.shards.items():
            wal = self.shard_wals.get(name)
            if wal is None:
                wal = self.shard_wals[name] = WriteAheadLog(
                    self.shard_wal_path(name),
                    fsync=self.fsync,
                    batch_every=self.batch_every,
                    fault_hook=self.fault_hook,
                    epoch=self._epoch,
                    fence=self._fence,
                )
            shard.durability = ShardWalLogger(wal)
        fabric.durability = self
        return self

    def set_epoch(self, epoch: int) -> None:
        """Stamp subsequent records — fabric log and every shard WAL —
        with fencing token ``epoch``."""
        self._epoch = int(epoch)
        self.wal.epoch = self._epoch
        for wal in self.shard_wals.values():
            wal.epoch = self._epoch

    def set_fence(self, fence) -> None:
        """Install ``fence`` (raises :class:`~repro.errors.FencedError`)
        on the fabric log and every shard WAL — once this node loses the
        primary lease, no journal on it can commit another record."""
        self._fence = fence
        self.wal.fence = fence
        for wal in self.shard_wals.values():
            wal.fence = fence

    def commit_op(self, fabric: "FabricOrchestrator", op: str, data: dict):
        """Journal one committed fabric op; auto-checkpoint on cadence
        (unless :attr:`auto_checkpoints` is cleared for concurrent use)."""
        record = self.wal.append(op, data)
        self._ops_since_checkpoint += 1
        if (
            self.auto_checkpoints
            and self.checkpoint_every
            and self._ops_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint(fabric)
        return record

    def checkpoint(self, fabric: "FabricOrchestrator") -> dict:
        """Snapshot the whole fabric, then compact the manifest log up to
        the checkpoint LSN and the (superseded) shard WALs entirely."""
        self.wal.sync()
        checkpoint = fabric_checkpoint(fabric, self.wal.last_lsn)
        self.store.save(checkpoint)
        self.wal.compact(upto_lsn=checkpoint["lsn"])
        for wal in self.shard_wals.values():
            wal.sync()
            wal.compact(upto_lsn=wal.last_lsn)
        self.checkpoints_taken += 1
        self._ops_since_checkpoint = 0
        return checkpoint

    def close(self) -> None:
        """Clean shutdown: flush + fsync + close the fabric and shard logs."""
        self.wal.close()
        for wal in self.shard_wals.values():
            wal.close()

    def abort(self) -> None:
        """Simulated process death (fault harness)."""
        self.wal.abort()
        for wal in self.shard_wals.values():
            wal.abort()
