"""Command-line interface.

``sfp fig4`` .. ``sfp fig11`` regenerate each evaluation figure; ``sfp
place`` runs a placement algorithm over a synthesized workload; ``sfp
controller`` replays a synthesized tenant-churn stream through the SFC
controller and prints throughput, latency percentiles and rule churn;
``sfp fabric`` replays churn over a multi-switch fabric (sharded
controllers, cross-switch stitching, optional ``--drain`` failover demo);
``sfp demo`` walks a packet through a virtualized chain; ``sfp trace``
admits a recirculating chain under a control-plane tracer and prints the
causally linked span tree plus an INT-style packet postcard; ``sfp
metrics`` replays churn with sampled telemetry and renders the registry in
Prometheus text format; ``sfp recover`` rebuilds a controller or fabric
from a durability directory (``--wal-dir`` on churn runs) and ``sfp
checkpoint`` snapshots + compacts one.  ``sfp scenario`` lists, compiles
or replays the declarative campaign library (diurnal curves, flash
crowds, correlated failures, rolling upgrades ...) with a fabric
bit-identity audit at every phase boundary.  ``sfp ha`` runs the
high-availability roles: ``demo`` (an in-process kill-primary /
failover drill), ``primary`` / ``standby`` (a real two-process pair
shipping WAL frames over TCP), and ``status`` (lease + log state of a
cluster directory).  ``--quick`` shrinks the paper-scale sweeps to
seconds.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--quick", action="store_true", help="shrunk sweep for a fast run"
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fig4_throughput,
        fig5_latency,
        fig6_num_sfcs,
        fig7_recirculation,
        fig8_solver_runtime,
        fig9_early_termination,
        fig10_algorithms,
        fig11_runtime_update,
    )

    quick = args.quick
    name = args.command
    if name == "fig4":
        result = fig4_throughput.run(seed=args.seed)
    elif name == "fig5":
        result = fig5_latency.run(seed=args.seed)
    elif name == "fig6":
        result = fig6_num_sfcs.run(
            l_values=(10, 20, 30) if quick else (10, 20, 30, 40, 50),
            trials=1 if quick else 5,
            seed=args.seed,
        )
    elif name == "fig7":
        result = fig7_recirculation.run(
            recirculations=(0, 1, 2) if quick else (0, 1, 2, 3, 4, 5, 6),
            trials=1 if quick else 5,
            seed=args.seed,
        )
    elif name == "fig8":
        result = fig8_solver_runtime.run(
            l_values=(5, 10, 15) if quick else (10, 20, 30, 40, 50),
            ilp_time_limit=30.0 if quick else 300.0,
            seed=args.seed,
        )
    elif name == "fig9":
        result = fig9_early_termination.run(
            time_limits=(1.0, 5.0, 20.0) if quick else (5.0, 10.0, 20.0, 30.0, 60.0),
            num_sfcs=15 if quick else 25,
            seed=args.seed,
        )
    elif name == "fig10":
        result = fig10_algorithms.run(
            l_values=(10, 20, 30) if quick else (10, 20, 30, 40, 50, 60),
            ilp_time_limit=30.0 if quick else 300.0,
            seed=args.seed,
        )
    elif name == "fig11":
        result = fig11_runtime_update.run(
            drop_rates=(0.2, 0.6, 1.0) if quick else (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
            seed=args.seed,
        )
    else:  # pragma: no cover
        raise SystemExit(f"unknown figure {name}")
    result.print()
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.core.greedy import greedy_place
    from repro.core.ilp import solve_ilp
    from repro.core.rounding import solve_with_rounding
    from repro.core.verify import check_placement
    from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
    from repro.traffic.workload import make_instance

    config = replace(PAPER_WORKLOAD, num_sfcs=args.num_sfcs)
    instance = make_instance(
        config,
        switch=PAPER_SWITCH,
        max_recirculations=args.recirculations,
        rng=args.seed,
    )
    if args.algorithm == "greedy":
        placement = greedy_place(instance)
    elif args.algorithm == "appro":
        placement = solve_with_rounding(instance, rng=args.seed).placement
    else:
        placement = solve_ilp(instance, time_limit=args.time_limit)
    problems = check_placement(placement)
    print(placement)
    for key, value in placement.summary().items():
        print(f"  {key:>18}: {value:.3f}")
    print(f"  feasibility: {'OK' if not problems else problems}")
    return 0 if not problems else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    # The CLI always runs quick scale; paper-scale reports go through
    # `python -m repro.experiments.report --paper-scale`.
    text = generate_report(quick=True, seed=args.seed if args.seed is not None else 11)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


def _cmd_controller(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.controller import (
        ChurnConfig,
        ChurnEngine,
        SfcController,
        save_events,
        synthesize_churn,
    )
    from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
    from repro.traffic.workload import make_instance

    workload = replace(PAPER_WORKLOAD, num_sfcs=0)
    config = ChurnConfig(
        duration_s=(5.0 if args.quick else args.duration),
        arrival_rate_per_s=args.rate,
        mean_lifetime_s=args.lifetime,
        modify_fraction=args.modify_fraction,
        workload=workload,
    )
    instance = make_instance(
        workload, switch=PAPER_SWITCH, max_recirculations=2, rng=args.seed
    )
    controller = SfcController.for_instance(
        instance, with_dataplane=not args.no_dataplane
    )
    if args.wal_dir:
        from repro.durability import ControllerDurability

        ControllerDurability(args.wal_dir, fsync=args.fsync).attach(controller)
        print(f"journaling to {args.wal_dir} (fsync={args.fsync})")
    events = synthesize_churn(config, rng=args.seed)
    if args.save_trace:
        save_events(args.save_trace, events, seed=args.seed, config=config)
        print(f"wrote churn trace: {args.save_trace}")
    report = ChurnEngine(controller).replay(events)
    print(report.describe())
    print(f"live tenants: {len(controller.tenants)}")
    snapshot = controller.metrics.snapshot()
    for name, value in snapshot["counters"].items():
        print(f"  counter {name:>28}: {value}")
    for name, value in snapshot["gauges"].items():
        print(f"  gauge   {name:>28}: {value:.3f}")
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.controller import ChurnConfig, load_events, save_events, synthesize_churn
    from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
    from repro.fabric import (
        FabricChurnEngine,
        FabricOrchestrator,
        FabricTopology,
        make_partitioner,
    )

    topology = FabricTopology.full_mesh(
        args.switches,
        spec=PAPER_SWITCH,
        link_capacity_gbps=args.link_capacity,
    )
    fabric = FabricOrchestrator(
        topology,
        num_types=PAPER_WORKLOAD.num_types,
        partitioner=make_partitioner(args.partitioner),
        with_dataplane=not args.no_dataplane,
    )
    if args.wal_dir:
        from repro.durability import FabricDurability

        FabricDurability(args.wal_dir, fsync=args.fsync).attach(fabric)
        print(f"journaling to {args.wal_dir} (fsync={args.fsync})")
    if args.trace:
        events = load_events(args.trace)
    else:
        workload = replace(PAPER_WORKLOAD, num_sfcs=0)
        config = ChurnConfig(
            duration_s=(5.0 if args.quick else args.duration),
            arrival_rate_per_s=args.rate,
            mean_lifetime_s=args.lifetime,
            modify_fraction=args.modify_fraction,
            workload=workload,
        )
        events = synthesize_churn(config, rng=args.seed)
        if args.save_trace:
            save_events(args.save_trace, events, seed=args.seed, config=config)
            print(f"wrote churn trace: {args.save_trace}")
    report = FabricChurnEngine(fabric).replay(events)
    print(f"fabric: {args.switches} switches ({args.partitioner}), "
          f"{len(fabric.links)} links")
    print(report.describe())
    summary = fabric.summary()
    print(f"live tenants: {summary['tenants']} "
          f"({summary['stitched_tenants']} stitched across switches)")
    for name, stats in summary["switches"].items():
        print(f"  {name}: {stats['tenants']} tenants, "
              f"backplane {stats['backplane_gbps']:.1f} Gbps")
    counters = fabric.metrics_snapshot()["counters"]
    for name in ("spillovers", "stitched"):
        print(f"  counter {name:>12}: {counters.get(name, 0)}")
    problems = fabric.check_invariant()
    print(f"fabric invariant: {'OK' if not problems else problems}")
    if problems:
        return 1

    if args.drain:
        victim = (
            args.drain
            if args.drain != "auto"
            else max(fabric.shards, key=lambda n: len(fabric.shards[n].tenants))
        )
        drain = fabric.drain(victim)
        print(drain.describe())
        if not args.no_dataplane and drain.rehomed:
            forwarding = sum(
                1 for t in drain.rehomed if fabric.probe_tenant(t)
            )
            print(f"  probes: {forwarding}/{drain.num_rehomed} re-homed "
                  f"chains forward end-to-end")
            if forwarding != drain.num_rehomed:
                return 1
        problems = fabric.check_invariant()
        print(f"fabric invariant after drain: "
              f"{'OK' if not problems else problems}")
        if problems:
            return 1
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.durability import read_manifest, recover_controller, recover_fabric

    manifest = read_manifest(args.dir)
    if manifest.get("kind") == "fabric":
        fabric, report = recover_fabric(
            args.dir, with_dataplane=(False if args.no_dataplane else None)
        )
        print(report.describe())
        for note in report.notes:
            print(f"  note: {note}")
        for problem in report.problems:
            print(f"  problem: {problem}")
        summary = fabric.summary()
        print(f"live tenants: {summary['tenants']} "
              f"({summary['stitched_tenants']} stitched across switches)")
        problems = fabric.check_invariant()
        print(f"fabric invariant: {'OK' if not problems else problems}")
        return 0 if report.ok and not problems else 1
    controller, report = recover_controller(
        args.dir, with_dataplane=(False if args.no_dataplane else None)
    )
    print(report.describe())
    for problem in report.problems:
        print(f"  problem: {problem}")
    print(f"live tenants: {len(controller.tenants)}")
    print(f"state digest: {controller.state.digest()}")
    return 0 if report.ok else 1


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.durability import (
        CheckpointStore,
        ControllerDurability,
        FabricDurability,
        read_manifest,
        recover_controller,
        recover_fabric,
        scan_wal,
    )

    manifest = read_manifest(args.dir)
    # Recovery replays the log and — when it verifies clean — takes a fresh
    # checkpoint and compacts; this command is that plus a status printout.
    if manifest.get("kind") == "fabric":
        _fabric, report = recover_fabric(
            args.dir, with_dataplane=(False if args.no_dataplane else None)
        )
        wal_name = FabricDurability.WAL_NAME
    else:
        _controller, report = recover_controller(
            args.dir, with_dataplane=(False if args.no_dataplane else None)
        )
        wal_name = ControllerDurability.WAL_NAME
    if not report.ok:
        print(f"not checkpointed — recovery failed: {report.describe()}")
        for problem in report.problems:
            print(f"  problem: {problem}")
        return 1
    store = CheckpointStore(args.dir)
    scan = scan_wal(Path(args.dir) / wal_name)
    print(f"checkpointed {manifest['kind']} at lsn {report.last_lsn} "
          f"(digest {report.digest})")
    print(f"checkpoints on disk: {store.lsns()}")
    print(f"wal: {len(scan.records)} records past lsn {scan.base_lsn}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        campaign_names,
        compile_scenario,
        get_campaign,
        load_spec,
        run_campaign,
        save_campaign,
    )

    if args.action == "list":
        for name in campaign_names():
            spec = get_campaign(name)
            print(
                f"{name:>20}: {len(spec.phases)} phases over "
                f"{spec.duration_s:.0f}s (seed {spec.seed}) — "
                f"{spec.description}"
            )
        return 0
    if args.spec_file:
        spec = load_spec(args.spec_file)
    elif args.name:
        spec = get_campaign(args.name)
    else:
        print(
            "scenario run/compile needs a campaign NAME or --spec FILE",
            file=sys.stderr,
        )
        return 2
    if args.smoke:
        spec = spec.shrunk(0.2)
    if args.action == "compile":
        campaign = compile_scenario(spec, args.seed)
        out = args.out or f"{spec.name}.jsonl"
        save_campaign(out, campaign)
        print(
            f"wrote {campaign.num_events} events to {out} "
            f"(trace {campaign.digest()})"
        )
        return 0
    if args.wal_dir:
        print(f"journaling to {args.wal_dir} (fsync={args.fsync})")
    fabric, report = run_campaign(
        spec,
        seed=args.seed,
        with_dataplane=args.dataplane,
        wal_dir=args.wal_dir,
        fsync=args.fsync,
        partitioner=args.partitioner,
        fastpath=args.fastpath,
        fastpath_backend=args.fastpath_backend,
        traffic_packets=args.traffic,
    )
    print(report.describe())
    summary = fabric.summary()
    print(f"live tenants: {summary['tenants']} "
          f"({summary['stitched_tenants']} stitched across switches)")
    if args.fastpath:
        stats = {
            "compiles": 0, "cache_hits": 0, "invalidations": 0,
            "compiled_packets": 0, "interpreted_packets": 0,
        }
        for shard in fabric.shards.values():
            if shard.fastpath is not None:
                for key in stats:
                    stats[key] += shard.fastpath.stats[key]
        print(
            "fastpath: "
            f"{stats['compiled_packets']} packets compiled, "
            f"{stats['interpreted_packets']} interpreted; "
            f"{stats['compiles']} compiles, {stats['cache_hits']} cache "
            f"hits, {stats['invalidations']} invalidations"
        )
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.controller import ChurnConfig, synthesize_churn
    from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
    from repro.fabric import FabricOrchestrator, FabricTopology, make_partitioner
    from repro.frontend import FrontendClient, FrontendServer, IntentQueue

    topology = FabricTopology.full_mesh(
        args.switches, spec=PAPER_SWITCH, link_capacity_gbps=args.link_capacity
    )
    fabric = FabricOrchestrator(
        topology,
        num_types=PAPER_WORKLOAD.num_types,
        partitioner=make_partitioner(args.partitioner),
        with_dataplane=not args.no_dataplane,
    )
    if args.wal_dir:
        from repro.durability import FabricDurability

        if args.partitioner == "least-backplane":
            # Occupancy-sensitive routing: the shard a worker picked at
            # take time need not match what a serial WAL replay would
            # pick, so recovery could diverge.  Pure partitioners only.
            print(
                "serve: --wal-dir needs a pure partitioner (hash or "
                "modulo); least-backplane routing is occupancy-dependent "
                "and would not replay deterministically",
                file=sys.stderr,
            )
            return 2
        FabricDurability(args.wal_dir, fsync=args.fsync).attach(fabric)
        print(f"journaling to {args.wal_dir} (fsync={args.fsync})")
    server = FrontendServer(
        fabric,
        host=args.host,
        port=args.port,
        queue=IntentQueue(capacity=args.queue_capacity),
    )
    server.start()
    print(f"serving {args.switches} switches ({args.partitioner}) "
          f"on http://{server.address} — one worker per shard")
    try:
        if args.demo_events:
            # Self-driving demo/CI mode: synthesize a short churn stream,
            # push it through the in-process client, then shut down.
            from dataclasses import replace

            client = FrontendClient(server.pool)
            config = ChurnConfig(
                duration_s=max(1.0, args.demo_events / 8.0),
                arrival_rate_per_s=8.0,
                workload=replace(PAPER_WORKLOAD, num_sfcs=0),
            )
            events = synthesize_churn(config, rng=args.seed)[: args.demo_events]
            ok = 0
            for event in events:
                if event.kind.value == "arrival":
                    assert event.sfc is not None
                    ok += client.admit(event.sfc).ok
                elif event.kind.value == "departure":
                    ok += client.evict(event.tenant_id).ok
                else:
                    assert event.sfc is not None
                    ok += client.modify(event.tenant_id, event.sfc).ok
            print(f"demo: {ok}/{len(events)} intents accepted, "
                  f"{fabric.summary()['tenants']} tenants live")
        else:  # pragma: no cover — interactive serve loop
            import time

            while True:
                time.sleep(1.0)
    except KeyboardInterrupt:  # pragma: no cover
        print("\ndraining intent queue ...")
    finally:
        server.close()
    problems = fabric.check_invariant()
    print(f"fabric invariant after drain: {'OK' if not problems else problems}")
    return 0 if not problems else 1


def _cmd_ha(args: argparse.Namespace) -> int:
    import json
    import time
    from dataclasses import replace
    from pathlib import Path

    from repro.controller import ChurnConfig, synthesize_churn
    from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
    from repro.fabric import FabricOrchestrator, FabricTopology, make_partitioner

    root = Path(args.dir)
    node = args.node or args.action

    def make_fabric():
        topology = FabricTopology.full_mesh(
            args.switches, spec=PAPER_SWITCH, link_capacity_gbps=400.0
        )
        return FabricOrchestrator(
            topology,
            num_types=PAPER_WORKLOAD.num_types,
            partitioner=make_partitioner("hash"),
            with_dataplane=False,
        )

    def churn_events(n: int):
        config = ChurnConfig(
            duration_s=max(1.0, n / 8.0),
            arrival_rate_per_s=8.0,
            workload=replace(PAPER_WORKLOAD, num_sfcs=0),
        )
        return synthesize_churn(config, rng=args.seed)[:n]

    def apply_event(fabric, event):
        kind = event.kind.value
        if kind == "arrival":
            return fabric.admit(event.sfc)
        if kind == "departure":
            return fabric.evict(event.tenant_id)
        return fabric.modify(event.tenant_id, event.sfc)

    if args.action == "status":
        from repro.durability import CheckpointStore, FabricDurability, scan_wal
        from repro.ha import LeaseStore

        lease = LeaseStore(root / "lease").read()
        print(f"lease: holder={lease.holder!r} epoch={lease.epoch} "
              f"max_epoch={lease.max_epoch} "
              f"expires_in={lease.deadline - time.time():+.1f}s")
        for role in ("primary", "standby"):
            directory = root / role
            scan = scan_wal(directory / FabricDurability.WAL_NAME)
            checkpoints = CheckpointStore(directory).lsns()
            print(f"{role}: wal {len(scan.records)} records past base lsn "
                  f"{scan.base_lsn} (last lsn {scan.last_lsn}), "
                  f"checkpoints {checkpoints}")
        return 0

    if args.action == "demo":
        from repro.ha import HaCluster

        cluster = HaCluster(
            root, make_fabric, ttl_s=args.ttl,
            checkpoint_every=16, verify_every=4,
        )
        cluster.start()
        print(f"primary elected at epoch {cluster.primary_lease.epoch}; "
              f"shipping to an in-process standby")
        events = churn_events(args.events)
        decided = 0
        acked = 0
        for event in events:
            result = apply_event(cluster.fabric, event)
            decided += bool(result.ok)
            acked = cluster.durability.wal.last_lsn
            cluster.pump()
        print(f"drove {len(events)} churn events ({decided} accepted); "
              f"acked lsn {acked}, standby applied "
              f"{cluster.standby.applied_lsn} "
              f"({cluster.standby.checkpoints_restored} checkpoints shipped)")
        print(f"killing the primary (disk mode: {args.kill_mode}) ...")
        cluster.kill_primary(args.kill_mode)
        report = cluster.failover(max_wait_s=args.ttl * 10 + 5)
        print(report.describe())
        preserved = report.applied_lsn >= acked
        print(f"acknowledged ops preserved: "
              f"{'YES' if preserved else f'NO (lost {acked - report.applied_lsn})'}")
        from repro.errors import FencedError

        try:
            cluster.primary_lease.check_fence()
            print("FENCE BREACH: the deposed primary still passes its fence")
            preserved = False
        except FencedError:
            print(f"deposed primary fenced (epoch "
                  f"{report.epoch - 1} < {report.epoch})")
        cluster.close()
        return 0 if report.ok and preserved else 1

    if args.action == "primary":
        from repro.durability import FabricDurability
        from repro.ha import LeaseCoordinator, LeaseStore, SocketSink, WalShipper

        lease = LeaseCoordinator(node, LeaseStore(root / "lease"), ttl_s=args.ttl)
        if lease.try_acquire() is None:
            print("could not acquire the primary lease", file=sys.stderr)
            return 1
        fabric = make_fabric()
        durability = FabricDurability(
            root / "primary", fsync=args.fsync, checkpoint_every=64
        ).attach(fabric)
        durability.set_epoch(lease.epoch)
        durability.set_fence(lease.check_fence)
        fabric.epoch = lease.epoch
        shipper = None
        if args.peer:
            host, _, port = args.peer.rpartition(":")
            shipper = WalShipper(
                root / "primary",
                SocketSink(host or "127.0.0.1", int(port)),
                epoch_fn=lambda: lease.epoch or 0,
            )
            print(f"shipping WAL frames to {args.peer}")
        print(f"primary {node!r} at epoch {lease.epoch}, "
              f"journaling to {root / 'primary'}")
        events = churn_events(args.events)
        decided = 0
        for event in events:
            decided += bool(apply_event(fabric, event).ok)
            lease.renew()
            if shipper is not None:
                shipper.pump()
        if shipper is not None:
            shipper.pump()
            shipper.close()
        print(f"drove {len(events)} churn events ({decided} accepted) to "
              f"lsn {durability.wal.last_lsn}, digest {fabric.digest()}")
        durability.close()
        lease.release()
        return 0

    if args.action == "standby":
        from repro.ha import LeaseCoordinator, LeaseStore, ReplicationListener, StandbyReplica

        standby = StandbyReplica()
        host, _, port = args.listen.rpartition(":")
        listener = ReplicationListener(
            standby, host=host or "127.0.0.1", port=int(port)
        )
        print(f"standby {node!r} accepting replication on "
              f"{listener.host}:{listener.port} for {args.duration:.0f}s")
        deadline = time.time() + args.duration
        while time.time() < deadline:
            time.sleep(0.2)
        listener.close()
        print(json.dumps(standby.status(), indent=2, sort_keys=True))
        if not args.promote:
            return 0
        lease = LeaseCoordinator(node, LeaseStore(root / "lease"), ttl_s=args.ttl)
        print("waiting out the primary lease ...")
        wait_deadline = time.time() + args.ttl * 10 + 5
        epoch = lease.try_acquire()
        while epoch is None and time.time() < wait_deadline:
            time.sleep(0.1)
            epoch = lease.try_acquire()
        if epoch is None:
            print("could not win the lease (primary still alive?)",
                  file=sys.stderr)
            return 1
        from repro.durability import FabricDurability

        caught_up = standby.catch_up_from(root / "primary", epoch=epoch)
        durability = FabricDurability(
            root / "standby", fsync=args.fsync,
            start_lsn=standby.applied_lsn,
        )
        problems = standby.promote(epoch, durability=durability)
        durability.set_fence(lease.check_fence)
        print(f"promoted at epoch {epoch}: caught up {caught_up} records "
              f"to lsn {standby.applied_lsn}, digest "
              f"{standby.fabric.digest()}")
        for problem in problems:
            print(f"  problem: {problem}")
        durability.close()
        return 0 if not problems else 1

    raise SystemExit(f"unknown ha action {args.action}")  # pragma: no cover


def _cmd_reoptimize(args: argparse.Namespace) -> int:
    if args.url:
        # Drive a running frontend: POST /v1/reoptimize and print its
        # summary (the pass executes inside the server process).
        from repro.frontend import HttpFrontendClient

        options: dict = {
            "mode": args.mode,
            "min_benefit": args.min_benefit,
            "execute": not args.dry_run,
        }
        if args.max_moves is not None:
            options["max_moves"] = args.max_moves
        summary = HttpFrontendClient(args.url).reoptimize(**options)
        for key in sorted(summary):
            print(f"  {key:>20}: {summary[key]}")
        return 0 if summary.get("ok") else 1

    # Local demo: fragment a deliberately tight fabric with churn, then
    # run one re-optimization pass over the survivors.
    from dataclasses import replace

    from repro.controller import ChurnConfig, synthesize_churn
    from repro.core.spec import SwitchSpec
    from repro.experiments.config import PAPER_WORKLOAD
    from repro.fabric import (
        FabricChurnEngine,
        FabricOrchestrator,
        FabricTopology,
        make_partitioner,
    )

    spec = SwitchSpec(
        stages=4, blocks_per_stage=8, block_bits=6400, rule_bits=64,
        capacity_gbps=40.0,
    )
    topology = FabricTopology.full_mesh(
        args.switches, spec=spec, link_capacity_gbps=100.0,
        max_recirculations=1,
    )
    fabric = FabricOrchestrator(
        topology,
        num_types=6,
        partitioner=make_partitioner(args.partitioner),
        with_dataplane=not args.no_dataplane,
    )
    config = ChurnConfig(
        duration_s=(5.0 if args.quick else args.duration),
        arrival_rate_per_s=12.0,
        mean_lifetime_s=6.0,
        modify_fraction=0.25,
        workload=replace(
            PAPER_WORKLOAD, num_sfcs=0, num_types=6, avg_chain_length=3,
            chain_length_spread=2, rules_min=1, rules_max=4,
            mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
        ),
    )
    events = synthesize_churn(config, rng=args.seed)
    FabricChurnEngine(fabric).replay(events)
    before = fabric.summary()
    print(f"after churn: {before['tenants']} tenants live, "
          f"{before['stitched_tenants']} stitched across switches")
    report = fabric.reoptimize(
        mode=args.mode,
        min_benefit=args.min_benefit,
        max_moves=args.max_moves,
        execute=not args.dry_run,
    )
    print(report.describe())
    for note in report.notes:
        print(f"  note: {note}")
    if report.migration is not None:
        for step in report.migration.results:
            print(f"  tenant {step.tenant_id}: {step.action}"
                  f"{' (' + step.reason + ')' if step.reason else ''}")
    problems = fabric.check_invariant()
    print(f"fabric invariant: {'OK' if not problems else problems}")
    return 0 if report.ok and not problems else 1


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.experiments.fig4_throughput import build_demo_pipeline
    from repro.traffic.flows import FlowGenerator

    pipeline, virtualizer = build_demo_pipeline(args.seed)
    gen = FlowGenerator(args.seed)
    flow = gen.flows(1, tenant_id=1)[0]
    result = pipeline.process(flow.make_packet(64), trace=True)
    print(f"pipeline: {pipeline}")
    print(f"packet delivered={result.delivered} passes={result.passes} "
          f"latency={result.latency_ns:.0f}ns")
    for pass_id, stage, table, action in result.trace:
        print(f"  pass {pass_id} stage {stage}: {table} -> {action}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.core.spec import SFC
    from repro.dataplane.packet import Packet
    from repro.fabric import FabricOrchestrator, FabricTopology
    from repro.telemetry import Tracer

    topology = FabricTopology.full_mesh(args.switches)
    tracer = Tracer()
    fabric = FabricOrchestrator(topology, num_types=3, tracer=tracer)

    # A chain longer than the physical pipeline, so the folded placement
    # recirculates and the postcard shows multi-pass hops.
    length = args.chain_length
    sfc = SFC(
        name="traced-chain",
        nf_types=tuple((j % 3) + 1 for j in range(length)),
        rules=(2,) * length,
        bandwidth_gbps=1.0,
        tenant_id=1,
    )
    result = fabric.admit(sfc)
    print(f"admit tenant {sfc.tenant_id} ({length}-NF chain): "
          f"ok={result.ok} switches={result.switches}")
    if not result.ok:
        print(f"  rejected: {result.reason} ({result.detail})")
        return 1

    print("\ncontrol-plane trace (one admit, one causally linked tree):")
    for root in tracer.roots():
        print(tracer.render_tree(root))

    print("dataplane postcard (traced probe packet):")
    for switch in result.switches:
        shard = fabric.shards[switch]
        assert shard.pipeline is not None
        probe = shard.pipeline.process(
            Packet(tenant_id=sfc.tenant_id, pass_id=1), trace=True
        )
        assert probe.postcard is not None
        print(probe.postcard.describe())

    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(tracer.to_chrome_trace(), fh)
        print(f"\nwrote Chrome trace_event file: {args.chrome} "
              f"(load via chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            fh.write(tracer.export_jsonl())
        print(f"wrote span JSONL: {args.jsonl}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.controller import ChurnConfig, ChurnEngine, SfcController, synthesize_churn
    from repro.dataplane.packet import Packet
    from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
    from repro.telemetry import PostcardCollector, render_prometheus
    from repro.traffic.workload import make_instance

    workload = replace(PAPER_WORKLOAD, num_sfcs=0)
    config = ChurnConfig(
        duration_s=(5.0 if args.quick else args.duration),
        arrival_rate_per_s=args.rate,
        workload=workload,
    )
    instance = make_instance(
        workload, switch=PAPER_SWITCH, max_recirculations=2, rng=args.seed
    )
    controller = SfcController.for_instance(instance)
    collector = PostcardCollector(sample_every=args.sample_every)
    assert controller.pipeline is not None
    controller.pipeline.telemetry = collector
    ChurnEngine(controller).replay(synthesize_churn(config, rng=args.seed))
    # Push probe traffic through the survivors so the postcard sampler has
    # packets to observe (churn alone only exercises the control plane).
    for tenant_id in sorted(controller.tenants):
        controller.pipeline.process_batch(
            [Packet(tenant_id=tenant_id, pass_id=1) for _ in range(args.probes)]
        )
    collector.publish(controller.metrics)
    text = render_prometheus(controller.metrics)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="sfp",
        description="SFP reproduction: SFC provision on programmable switches",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    for fig in ("fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"):
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        _add_common(p)
        p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("place", help="run one placement algorithm")
    _add_common(p)
    p.add_argument("--algorithm", choices=("ilp", "appro", "greedy"), default="appro")
    p.add_argument("--num-sfcs", type=int, default=25)
    p.add_argument("--recirculations", type=int, default=2)
    p.add_argument("--time-limit", type=float, default=60.0)
    p.set_defaults(func=_cmd_place)

    p = sub.add_parser(
        "controller", help="replay a synthesized churn stream through the controller"
    )
    _add_common(p)
    p.add_argument("--duration", type=float, default=20.0, help="stream horizon (s)")
    p.add_argument("--rate", type=float, default=8.0, help="tenant arrivals per second")
    p.add_argument("--lifetime", type=float, default=5.0, help="mean tenant lifetime (s)")
    p.add_argument(
        "--modify-fraction", type=float, default=0.2,
        help="fraction of tenants issuing one mid-lifetime chain modification",
    )
    p.add_argument(
        "--no-dataplane", action="store_true",
        help="control-plane only (skip the behavioural pipeline mirror)",
    )
    p.add_argument(
        "--save-trace", default=None, metavar="OUT",
        help="also write the synthesized churn stream as a JSONL trace "
             "(header records the seed, so the file alone replays the run)",
    )
    p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="journal every committed op to a write-ahead log in DIR "
             "(recover later with `sfp recover DIR`)",
    )
    p.add_argument(
        "--fsync", choices=("always", "batch", "off"), default="batch",
        help="WAL fsync policy when --wal-dir is set",
    )
    p.set_defaults(func=_cmd_controller)

    p = sub.add_parser(
        "fabric",
        help="replay tenant churn over a multi-switch fabric (with optional "
             "drain demo)",
    )
    _add_common(p)
    p.add_argument(
        "--switches", type=int, default=4, help="number of fabric switches"
    )
    p.add_argument(
        "--partitioner",
        choices=("hash", "least-backplane", "modulo"), default="hash",
        help="tenant->switch routing strategy",
    )
    p.add_argument(
        "--link-capacity", type=float, default=400.0,
        help="inter-switch link capacity (Gbps)",
    )
    p.add_argument(
        "--trace", default=None,
        help="replay a JSONL churn trace instead of synthesizing one",
    )
    p.add_argument("--duration", type=float, default=20.0, help="stream horizon (s)")
    p.add_argument("--rate", type=float, default=8.0, help="tenant arrivals per second")
    p.add_argument("--lifetime", type=float, default=5.0, help="mean tenant lifetime (s)")
    p.add_argument(
        "--modify-fraction", type=float, default=0.2,
        help="fraction of tenants issuing one mid-lifetime chain modification",
    )
    p.add_argument(
        "--drain", nargs="?", const="auto", default=None, metavar="SWITCH",
        help="after the replay, drain SWITCH (default: the busiest) and "
             "verify every re-homed chain still forwards",
    )
    p.add_argument(
        "--no-dataplane", action="store_true",
        help="control-plane only (skip the behavioural pipeline mirror)",
    )
    p.add_argument(
        "--save-trace", default=None, metavar="OUT",
        help="also write the synthesized churn stream as a JSONL trace "
             "(header records the seed, so the file alone replays the run)",
    )
    p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="journal every committed fabric op (plus per-switch WAL "
             "shards) to DIR (recover later with `sfp recover DIR`)",
    )
    p.add_argument(
        "--fsync", choices=("always", "batch", "off"), default="batch",
        help="WAL fsync policy when --wal-dir is set",
    )
    p.set_defaults(func=_cmd_fabric)

    p = sub.add_parser(
        "recover",
        help="rebuild a controller/fabric from a durability directory "
             "(checkpoint + WAL replay) and verify it bit-for-bit",
    )
    p.add_argument("dir", help="durability directory (the --wal-dir of a run)")
    p.add_argument(
        "--no-dataplane", action="store_true",
        help="recover control-plane only, regardless of the journaled mode",
    )
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser(
        "checkpoint",
        help="checkpoint a durability directory: recover, snapshot the "
             "state, compact the write-ahead log",
    )
    p.add_argument("dir", help="durability directory (the --wal-dir of a run)")
    p.add_argument(
        "--no-dataplane", action="store_true",
        help="recover control-plane only, regardless of the journaled mode",
    )
    p.set_defaults(func=_cmd_checkpoint)

    p = sub.add_parser(
        "scenario",
        help="list, compile or replay declarative campaign scenarios with "
             "phase-boundary fabric audits",
    )
    p.add_argument(
        "action", choices=("list", "run", "compile"),
        help="list the campaign library, replay a campaign against a "
             "fabric, or compile one to a JSONL event trace",
    )
    p.add_argument(
        "name", nargs="?", default=None,
        help="library campaign name (see `sfp scenario list`)",
    )
    p.add_argument(
        "--spec", dest="spec_file", default=None, metavar="FILE",
        help="load the scenario from a JSON/YAML spec file instead of "
             "the library",
    )
    p.add_argument("--seed", type=int, default=None, help="RNG seed override")
    p.add_argument(
        "--smoke", action="store_true",
        help="time-shrunk replay (5x shorter phases) for CI",
    )
    p.add_argument(
        "--dataplane", action="store_true",
        help="mirror installs into behavioural pipelines (~10x slower)",
    )
    p.add_argument(
        "--fastpath", action="store_true",
        help="attach the compiled dataplane fast path to every shard "
             "pipeline (implies --dataplane)",
    )
    p.add_argument(
        "--fastpath-backend",
        choices=("auto", "numpy", "python"), default="auto",
        help="fast-path kernel backend (auto = numpy when installed)",
    )
    p.add_argument(
        "--traffic", type=int, default=0, metavar="N",
        help="inject N packets per live tenant at every phase boundary "
             "(needs the data plane; with --fastpath this drives the "
             "compiled kernels end to end)",
    )
    p.add_argument(
        "--partitioner",
        choices=("hash", "least-backplane", "modulo"), default=None,
        help="override the spec's tenant->switch routing strategy",
    )
    p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="journal every committed fabric op to a write-ahead log in "
             "DIR (recover later with `sfp recover DIR`)",
    )
    p.add_argument(
        "--fsync", choices=("always", "batch", "off"), default="batch",
        help="WAL fsync policy when --wal-dir is set",
    )
    p.add_argument(
        "-o", "--out", default=None, metavar="OUT",
        help="output path for `compile` (default: <campaign>.jsonl)",
    )
    p.set_defaults(func=_cmd_scenario)

    p = sub.add_parser(
        "serve",
        help="run the tenant-facing HTTP/JSON API server over a fabric "
             "(one shard worker per switch, ordered intent queue)",
    )
    _add_common(p)
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 = ephemeral, printed at startup)",
    )
    p.add_argument(
        "--switches", type=int, default=4,
        help="fabric switches = shard workers",
    )
    p.add_argument(
        "--partitioner",
        choices=("hash", "least-backplane", "modulo"), default="hash",
        help="tenant->switch routing strategy (pure strategies keep "
             "concurrent routing replayable)",
    )
    p.add_argument(
        "--link-capacity", type=float, default=400.0,
        help="inter-switch link capacity (Gbps)",
    )
    p.add_argument(
        "--queue-capacity", type=int, default=4096,
        help="intent queue bound (submissions past it get HTTP 429)",
    )
    p.add_argument(
        "--no-dataplane", action="store_true",
        help="control-plane only (skip the behavioural pipeline mirror)",
    )
    p.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="journal every committed fabric op to a write-ahead log in "
             "DIR (recover later with `sfp recover DIR`); a quiesce "
             "checkpoint is taken on graceful shutdown",
    )
    p.add_argument(
        "--fsync", choices=("always", "batch", "off"), default="batch",
        help="WAL fsync policy when --wal-dir is set",
    )
    p.add_argument(
        "--demo-events", type=int, default=0, metavar="N",
        help="self-driving mode: push N synthesized churn intents through "
             "the in-process client, then drain and exit (CI/tests)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "ha",
        help="high availability: lease-elected primary, WAL-shipping "
             "standby, fenced failover (demo / primary / standby / status)",
    )
    p.add_argument(
        "action", choices=("demo", "primary", "standby", "status"),
        help="demo = in-process kill-primary drill; primary/standby = a "
             "real two-process pair over TCP; status = lease + log state",
    )
    p.add_argument(
        "--dir", required=True, metavar="DIR",
        help="cluster root directory (holds lease/, primary/, standby/)",
    )
    p.add_argument("--seed", type=int, default=None, help="RNG seed")
    p.add_argument(
        "--switches", type=int, default=3, help="fabric switches"
    )
    p.add_argument(
        "--events", type=int, default=40,
        help="churn events the primary drives",
    )
    p.add_argument(
        "--ttl", type=float, default=1.0, help="lease TTL (seconds)"
    )
    p.add_argument(
        "--kill-mode",
        choices=("keep", "lose-unsynced", "tear", "corrupt"), default="tear",
        help="demo: how the dead primary's WAL tail is mutilated",
    )
    p.add_argument(
        "--node", default=None,
        help="this node's lease name (default: the action name)",
    )
    p.add_argument(
        "--fsync", choices=("always", "batch", "off"), default="always",
        help="WAL fsync policy (always = zero lost acknowledged ops)",
    )
    p.add_argument(
        "--peer", default=None, metavar="HOST:PORT",
        help="primary: ship WAL frames to this standby listener",
    )
    p.add_argument(
        "--listen", default="127.0.0.1:7070", metavar="HOST:PORT",
        help="standby: replication listen address",
    )
    p.add_argument(
        "--duration", type=float, default=10.0,
        help="standby: seconds to serve replication before exiting",
    )
    p.add_argument(
        "--promote", action="store_true",
        help="standby: after serving, wait out the lease and take over",
    )
    p.set_defaults(func=_cmd_ha)

    p = sub.add_parser(
        "reoptimize",
        help="fleet-wide re-optimization: re-solve tenant placement and "
             "hitlessly migrate the wins (local demo, or --url to drive a "
             "running frontend)",
    )
    _add_common(p)
    p.add_argument(
        "--url", default=None, metavar="URL",
        help="POST /v1/reoptimize to a running `sfp serve` frontend "
             "instead of running the local demo",
    )
    p.add_argument(
        "--mode", choices=("auto", "ilp", "greedy"), default="auto",
        help="solver mode (auto = ILP for small fleets, greedy at scale)",
    )
    p.add_argument(
        "--min-benefit", type=float, default=0.5,
        help="cost/benefit gate: skip moves scoring below this",
    )
    p.add_argument(
        "--max-moves", type=int, default=None,
        help="cap the number of executed migrations",
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="solve and plan only; migrate nothing",
    )
    p.add_argument(
        "--switches", type=int, default=3,
        help="local demo: number of fabric switches",
    )
    p.add_argument(
        "--duration", type=float, default=20.0,
        help="local demo: churn horizon used to fragment the fabric (s)",
    )
    p.add_argument(
        "--partitioner",
        choices=("hash", "least-backplane", "modulo"), default="hash",
        help="local demo: tenant->switch routing strategy",
    )
    p.add_argument(
        "--no-dataplane", action="store_true",
        help="local demo: control-plane only (skips migration probes)",
    )
    p.set_defaults(func=_cmd_reoptimize)

    p = sub.add_parser("demo", help="trace a packet through a virtualized chain")
    _add_common(p)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser(
        "trace",
        help="admit a chain under the control-plane tracer and print the "
             "span tree plus an INT-style packet postcard",
    )
    _add_common(p)
    p.add_argument(
        "--switches", type=int, default=2, help="number of fabric switches"
    )
    p.add_argument(
        "--chain-length", type=int, default=10,
        help="NFs in the traced chain (longer than the pipeline => the "
             "postcard shows recirculation passes)",
    )
    p.add_argument(
        "--chrome", default=None, metavar="OUT",
        help="also export the spans as a Chrome trace_event JSON file",
    )
    p.add_argument(
        "--jsonl", default=None, metavar="OUT",
        help="also export the spans as JSONL, one span per line",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="replay churn with sampled telemetry and print the metrics "
             "registry in Prometheus text format",
    )
    _add_common(p)
    p.add_argument("--duration", type=float, default=20.0, help="stream horizon (s)")
    p.add_argument("--rate", type=float, default=8.0, help="tenant arrivals per second")
    p.add_argument(
        "--sample-every", type=int, default=64,
        help="postcard sampling period (0 = armed but never samples)",
    )
    p.add_argument(
        "--probes", type=int, default=64,
        help="probe packets per surviving tenant after the replay",
    )
    p.add_argument(
        "-o", "--out", default=None,
        help="write the exposition text to a file instead of stdout",
    )
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "report", help="run all figures and write the EXPERIMENTS.md report"
    )
    _add_common(p)
    p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
