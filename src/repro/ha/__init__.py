"""Controller high availability: WAL shipping, hot standby, lease failover.

The durability layer (:mod:`repro.durability`) makes one controller
survive its own crashes; this package makes the *service* survive them.
A primary fabric journals as usual, a :class:`~repro.ha.ship.WalShipper`
streams every committed record (plus checkpoints across compaction gaps)
to a :class:`~repro.ha.standby.StandbyReplica` that replays them through
the recovery machinery into a digest-verified shadow fabric, and a
:class:`~repro.ha.lease.LeaseCoordinator` elects the primary with
strictly monotonic fencing epochs.  When the primary dies, the standby
wins the lease, drains the surviving WAL tail, and promotes — holding
every acknowledged op, at the committed state digest, behind a fence that
makes the deposed primary unable to journal or acknowledge anything ever
again.  :class:`~repro.ha.cluster.HaCluster` wires the whole pair up in
one process for the failover drills, the kill-primary sweep, and
``BENCH_ha``.
"""

from repro.ha.cluster import FailoverReport, HaCluster
from repro.ha.lease import LeaseCoordinator, LeaseState, LeaseStore
from repro.ha.ship import (
    InProcessSink,
    ReplicationListener,
    SocketSink,
    WalShipper,
    encode_frame,
    recv_frame,
)
from repro.ha.standby import StandbyReplica

__all__ = [
    "FailoverReport",
    "HaCluster",
    "LeaseCoordinator",
    "LeaseState",
    "LeaseStore",
    "InProcessSink",
    "ReplicationListener",
    "SocketSink",
    "WalShipper",
    "encode_frame",
    "recv_frame",
    "StandbyReplica",
]
