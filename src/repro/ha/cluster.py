"""An in-process HA pair: primary + hot standby + lease, wired end to end.

:class:`HaCluster` is the harness the failover tests, the kill-primary
sweep, and ``BENCH_ha`` drive: one primary fabric journaling to
``<root>/primary`` behind a lease-installed fence, one
:class:`~repro.ha.standby.StandbyReplica` fed by an in-process
:class:`~repro.ha.ship.WalShipper`, and one shared
:class:`~repro.ha.lease.LeaseStore` both sides elect through.  Everything
time-dependent goes through an injectable clock/sleep pair, so tests drive
lease expiry deterministically while the benchmark measures real seconds.

The failure drill it exists for:

1. drive committed ops through :attr:`fabric` (acknowledged = the WAL
   append returned), :meth:`pump` shipping as you go;
2. :meth:`kill_primary` — abort the durability coordinator mid-flight
   (optionally under an armed fault injector) and mutilate the on-disk WAL
   tail the way a real crash would;
3. :meth:`failover` — the standby waits out the lease, takes it over at a
   bumped epoch, drains whatever the dead primary's disk still readably
   holds (:meth:`StandbyReplica.catch_up_from`), and promotes with a fresh
   durability coordinator continuing the LSN sequence.

After step 3 the promoted fabric must be digest-identical to the
committed-LSN oracle and hold **every acknowledged op** — the invariant
the sweep asserts across every crash site × disk-mutilation mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.durability.checkpoint import FabricDurability
from repro.durability.faults import mutilate
from repro.errors import DurabilityError
from repro.ha.lease import LeaseCoordinator, LeaseStore
from repro.ha.ship import InProcessSink, WalShipper
from repro.ha.standby import StandbyReplica


@dataclass
class FailoverReport:
    """What one takeover did: the new epoch, where the promoted fabric
    landed, and how long the outage window was."""

    epoch: int
    applied_lsn: int
    caught_up: int
    digest: str
    problems: list[str] = field(default_factory=list)
    failover_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self) -> str:
        """One-line human-readable summary (the CLI's output)."""
        status = "ok" if self.ok else f"FAILED ({len(self.problems)} problems)"
        return (
            f"failover to epoch {self.epoch}: caught up {self.caught_up} "
            f"records to lsn {self.applied_lsn} in "
            f"{self.failover_s * 1e3:.1f} ms — {status}"
        )


class HaCluster:
    """One primary + one standby + one lease, all in this process."""

    def __init__(
        self,
        root: str | Path,
        make_fabric: Callable[[], object],
        ttl_s: float = 2.0,
        fsync: str = "always",
        checkpoint_every: int = 256,
        keep_checkpoints: int = 3,
        verify_every: int = 8,
        fault_hook=None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
        with_dataplane: bool | None = None,
    ) -> None:
        self.root = Path(root)
        self.primary_dir = self.root / "primary"
        self.standby_dir = self.root / "standby"
        self.make_fabric = make_fabric
        self.ttl_s = float(ttl_s)
        self.fsync = fsync
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        self.fault_hook = fault_hook
        self.clock = clock
        self.sleep = sleep
        self.with_dataplane = with_dataplane
        self.lease_store = LeaseStore(self.root / "lease")
        self.primary_lease = LeaseCoordinator(
            "primary", self.lease_store, ttl_s=self.ttl_s, clock=clock
        )
        self.standby_lease = LeaseCoordinator(
            "standby", self.lease_store, ttl_s=self.ttl_s, clock=clock
        )
        self.fabric = None
        self.durability: FabricDurability | None = None
        self.standby = StandbyReplica(
            with_dataplane=with_dataplane, verify_every=verify_every, clock=clock
        )
        self.shipper: WalShipper | None = None
        self.primary_alive = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Elect the primary (epoch 1 on a fresh lease), attach its fenced
        durability, and connect the in-process replication stream."""
        if self.primary_lease.try_acquire() is None:
            raise DurabilityError("primary could not acquire the initial lease")
        self.fabric = self.make_fabric()
        self.durability = FabricDurability(
            self.primary_dir,
            fsync=self.fsync,
            checkpoint_every=self.checkpoint_every,
            keep_checkpoints=self.keep_checkpoints,
            fault_hook=self.fault_hook,
        )
        self.durability.attach(self.fabric)
        epoch = self.primary_lease.epoch
        assert epoch is not None
        self.durability.set_epoch(epoch)
        self.durability.set_fence(self.primary_lease.check_fence)
        self.fabric.epoch = epoch
        self.shipper = WalShipper(
            self.primary_dir,
            InProcessSink(self.standby),
            epoch_fn=lambda: self.primary_lease.epoch or 0,
            clock=self.clock,
        )
        self.primary_alive = True

    def pump(self) -> int:
        """One replication beat: renew the primary's lease and ship
        everything new.  Returns the number of records shipped."""
        if not self.primary_alive or self.shipper is None:
            raise DurabilityError("cluster not started or primary dead")
        self.primary_lease.renew()
        return self.shipper.pump()

    # ------------------------------------------------------------------
    def kill_primary(self, mode: str = "keep") -> dict:
        """Simulated primary death: abort the durability coordinator (no
        clean-shutdown sync) and apply one
        :data:`~repro.durability.faults.DISK_MODES` mutilation to the
        fabric WAL — reproducing the on-disk state a real crash leaves.
        The lease is *not* released: the standby must wait it out (or win
        it once expired), exactly like a real silent death."""
        if self.durability is None:
            raise DurabilityError("cluster not started")
        wal_path = self.durability.wal.path
        durable_offset = self.durability.wal.durable_offset
        committed_lsn = self.durability.wal.last_lsn
        self.durability.abort()
        mutilate(wal_path, mode, durable_offset)
        self.primary_alive = False
        return {
            "mode": mode,
            "durable_offset": durable_offset,
            "committed_lsn": committed_lsn,
        }

    def failover(
        self, max_wait_s: float = 30.0, poll_s: float = 0.02
    ) -> FailoverReport:
        """The standby's takeover: win the lease (waiting out the dead
        primary's TTL), raise its epoch bar, drain the primary's surviving
        WAL tail, and promote with a fresh fenced durability coordinator
        continuing the LSN sequence."""
        t0 = self.clock()
        deadline = t0 + max_wait_s
        epoch = self.standby_lease.try_acquire()
        while epoch is None:
            if self.clock() >= deadline:
                raise DurabilityError(
                    f"standby could not win the lease within {max_wait_s}s"
                )
            self.sleep(poll_s)
            epoch = self.standby_lease.try_acquire()
        # Fence first: from here on, no frame or append stamped with the
        # old epoch can be accepted anywhere.
        self.standby.observe_epoch(epoch)
        caught_up = self.standby.catch_up_from(self.primary_dir, epoch=epoch)
        durability = FabricDurability(
            self.standby_dir,
            fsync=self.fsync,
            checkpoint_every=self.checkpoint_every,
            keep_checkpoints=self.keep_checkpoints,
            start_lsn=self.standby.applied_lsn,
        )
        problems = self.standby.promote(epoch, durability=durability)
        durability.set_fence(self.standby_lease.check_fence)
        self.durability = durability
        self.fabric = self.standby.fabric
        # The promoted standby is the live node now; close() treats its
        # durability as cleanly closeable.
        self.primary_alive = True
        self.shipper = None
        report = FailoverReport(
            epoch=epoch,
            applied_lsn=self.standby.applied_lsn,
            caught_up=caught_up,
            digest=self.standby.fabric.digest(),
            problems=list(problems),
            failover_s=self.clock() - t0,
        )
        return report

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Clean shutdown of whatever is still holding file handles."""
        if self.durability is not None and self.primary_alive:
            try:
                self.durability.close()
            except DurabilityError:  # pragma: no cover — fenced close
                self.durability.abort()
        elif self.durability is not None:
            self.durability.abort()
