"""WAL shipping: stream committed records from a primary to a standby.

The wire unit is a **frame**: a 4-byte big-endian length prefix followed by
one JSON object.  Five kinds flow:

``hello``
    standby → shipper, once per connection: ``{"kind": "hello",
    "last_lsn": N, "epoch": E}`` — where the replica wants the stream to
    resume and the highest sender epoch it has accepted.
``manifest``
    the recovery manifest, shipped first so a blank replica can construct
    an equivalent empty fabric before any record arrives.
``checkpoint``
    a full checkpoint, shipped when the tailer reports a *gap* (records
    the replica never saw were compacted away) — the replica restores it
    and resumes record replay from its LSN.
``record``
    one WAL line, verbatim: ``{"kind": "record", "epoch": E, "line":
    "<the JSONL line>"}``.  The replica re-parses and re-CRCs the line
    itself, so a bit flipped anywhere between the primary's disk and the
    replica's memory is caught by the same check that guards recovery.
``heartbeat``
    ``{"kind": "heartbeat", "epoch": E, "last_lsn": N, "sent_at": T}`` —
    closes every pump so the replica can measure replication lag even
    when no records flowed.

Every frame the shipper sends carries the **sender's lease epoch** (from
``epoch_fn``, read per pump so promotions re-stamp the stream).  The
replica rejects any frame whose epoch is below the highest it has accepted
— the receive-side half of fencing: once a new primary's first frame lands,
a deposed primary's stream is dead no matter how its socket limps on.
Note the *records inside* the stream keep their original epochs (history is
immutable); only the envelope epoch is checked.

Transports: :class:`InProcessSink` couples a shipper directly to a
:class:`~repro.ha.standby.StandbyReplica` in the same process (the failover
harness and tests), :class:`SocketSink` / :class:`ReplicationListener` run
the identical frame protocol over TCP for real two-process deployments.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from pathlib import Path
from typing import Callable

from repro.durability.checkpoint import CheckpointStore, read_manifest
from repro.durability.wal import WalTailer
from repro.errors import DurabilityError

#: Frames larger than this are rejected — a length prefix this big means a
#: corrupt or hostile stream, not a checkpoint (even million-tenant
#: checkpoints stay far below it).
MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_frame(payload: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(body) > MAX_FRAME_BYTES:
        raise DurabilityError(f"frame too large: {len(body)} bytes")
    return struct.pack(">I", len(body)) + body


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """``n`` bytes off the socket, or ``None`` on a clean EOF."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame off a socket (``None`` on clean EOF at a boundary)."""
    header = _recv_exact(sock, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > MAX_FRAME_BYTES:
        raise DurabilityError(f"frame too large: {length} bytes")
    body = _recv_exact(sock, length)
    if body is None:
        raise DurabilityError("connection died mid-frame")
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise DurabilityError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise DurabilityError("frame payload must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# Sinks (the shipper's output side)
# ----------------------------------------------------------------------
class InProcessSink:
    """Couples a shipper to a standby living in the same process: frames
    are fed synchronously, so after :meth:`WalShipper.pump` returns the
    replica has applied everything the call shipped."""

    def __init__(self, standby) -> None:
        self.standby = standby

    def hello(self) -> dict:
        """The resume handshake, read straight off the live replica."""
        return {
            "kind": "hello",
            "last_lsn": self.standby.applied_lsn,
            "epoch": self.standby.accepted_epoch,
        }

    def send(self, frame: dict) -> None:
        """Deliver one frame synchronously to the replica."""
        self.standby.feed(frame)

    def close(self) -> None:
        """Nothing to release for the in-process coupling."""


class SocketSink:
    """Ships frames over TCP to a :class:`ReplicationListener`.

    The connection handshake is pull-then-push: the listener speaks first
    (its ``hello`` carries the resume LSN), then frames flow one way.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 10.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._hello = recv_frame(self.sock)
        if self._hello is None or self._hello.get("kind") != "hello":
            self.sock.close()
            raise DurabilityError(
                f"replication handshake failed: expected hello, "
                f"got {self._hello!r}"
            )

    def hello(self) -> dict:
        """The hello the listener sent when this connection opened."""
        return self._hello

    def send(self, frame: dict) -> None:
        """Encode and write one frame to the socket."""
        self.sock.sendall(encode_frame(frame))

    def close(self) -> None:
        """Close the connection (best-effort)."""
        try:
            self.sock.close()
        except OSError:  # pragma: no cover — close is best-effort
            pass


class ReplicationListener:
    """The standby's accept loop: speaks ``hello``, then feeds every
    incoming frame to the replica.  One connection at a time (WAL shipping
    has exactly one upstream); a new connection after a disconnect gets a
    fresh hello at the replica's current resume point."""

    def __init__(
        self, standby, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.standby = standby
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self._closing = False
        self._thread = threading.Thread(
            target=self._serve, name="repl-listener", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # listener closed
            try:
                conn.sendall(
                    encode_frame(
                        {
                            "kind": "hello",
                            "last_lsn": self.standby.applied_lsn,
                            "epoch": self.standby.accepted_epoch,
                        }
                    )
                )
                while True:
                    frame = recv_frame(conn)
                    if frame is None:
                        break
                    self.standby.feed(frame)
            except DurabilityError:
                pass  # bad stream: drop the connection, await the next
            finally:
                conn.close()

    def close(self) -> None:
        """Stop accepting and join the accept-loop thread."""
        self._closing = True
        try:
            self._server.close()
        except OSError:  # pragma: no cover
            pass
        self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# The shipper
# ----------------------------------------------------------------------
class WalShipper:
    """Streams one durability directory's fabric WAL to a sink.

    Reads the *files* a :class:`~repro.durability.checkpoint.FabricDurability`
    maintains — not the coordinator object — so the same class ships from a
    live primary (tailing its log as it grows) and from a dead one's
    surviving directory (the promoted standby's final catch-up).  Resume is
    LSN-based: the sink's ``hello`` says where to start, the tailer follows
    appends incrementally, and a compaction gap triggers a checkpoint frame
    before the records after it.
    """

    WAL_NAME = "fabric.wal.jsonl"

    def __init__(
        self,
        directory: str | Path,
        sink,
        epoch_fn: Callable[[], int] = lambda: 0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        """``epoch_fn`` supplies the sender's current lease epoch, read on
        every pump — so a coordinator's live epoch (or a fixed token for
        catch-up shipping) stamps every frame."""
        self.directory = Path(directory)
        self.sink = sink
        self.epoch_fn = epoch_fn
        self.clock = clock
        self.store = CheckpointStore(self.directory)
        hello = sink.hello()
        self.tailer = WalTailer(
            self.directory / self.WAL_NAME,
            after_lsn=int(hello.get("last_lsn", 0)),
        )
        self._manifest_sent = False
        self.shipped_records = 0
        self.shipped_checkpoints = 0

    def pump(self) -> int:
        """Ship everything new since the last pump; returns the number of
        record frames sent.  Always ends with a heartbeat."""
        epoch = int(self.epoch_fn())
        if not self._manifest_sent:
            self.sink.send(
                {
                    "kind": "manifest",
                    "epoch": epoch,
                    "manifest": read_manifest(self.directory),
                }
            )
            self._manifest_sent = True
        records, gap = self.tailer.poll()
        if gap:
            checkpoint = self.store.load_latest()
            if checkpoint is None:
                raise DurabilityError(
                    f"wal in {self.directory} was compacted past the "
                    f"replica's resume point but no loadable checkpoint "
                    f"covers the gap"
                )
            self.sink.send(
                {"kind": "checkpoint", "epoch": epoch, "checkpoint": checkpoint}
            )
            self.shipped_checkpoints += 1
        for record in records:
            self.sink.send(
                {
                    "kind": "record",
                    "epoch": epoch,
                    "line": record.to_line().decode("utf-8").rstrip("\n"),
                }
            )
        self.shipped_records += len(records)
        self.sink.send(
            {
                "kind": "heartbeat",
                "epoch": epoch,
                "last_lsn": self.tailer.last_lsn,
                "sent_at": self.clock(),
            }
        )
        return len(records)

    def close(self) -> None:
        """Close the sink (and with it any socket it holds)."""
        self.sink.close()
