"""Lease-based primary election with monotonic fencing tokens.

One small file — ``lease.json`` in a shared directory — is the whole
election substrate.  A node holds the primary role iff the file names it
as ``holder`` at the node's own ``epoch`` and the ``deadline`` has not
passed.  Every takeover bumps the epoch past ``max_epoch``, the high-water
mark of every epoch ever granted, so fencing tokens are **strictly
monotonic across elections and crashes**: a node that restarts, a file
that loses its current holder, even a release-and-reacquire by the same
node — none of them can ever mint an epoch the cluster has seen before.

The file is written atomically (tmp + fsync + rename + dir-fsync, the same
discipline as checkpoints), so a crash mid-write leaves the previous lease
intact and two racing writers serialize on the rename.  :class:`LeaseStore`
additionally holds an in-process mutex so the in-process failover harness
(:mod:`repro.ha.cluster`) gets linearizable read-modify-write without
depending on OS file locking.

Fencing is pull-based: :meth:`LeaseCoordinator.check_fence` re-reads the
file and raises :class:`~repro.errors.FencedError` unless this node is the
current, unexpired holder at its own epoch.  Installed as the
:class:`~repro.durability.wal.WriteAheadLog` fence and at the front-end
dispatch seam, it makes a deposed primary's appends and HTTP writes fail
fast instead of racing the new primary.

The clock is injectable (``clock=time.time`` by default) so tests drive
expiry deterministically; production nodes compare wall-clock deadlines,
which is safe because expiry only ever *widens* the no-primary window —
a slow clock delays takeover, it never permits two holders.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.durability.wal import _fsync_dir
from repro.errors import DurabilityError, FencedError

LEASE_NAME = "lease.json"


@dataclass(frozen=True)
class LeaseState:
    """One decoded ``lease.json``: who holds the lease, at which epoch,
    until when — plus ``max_epoch``, the never-decreasing high-water mark
    new grants must exceed."""

    holder: str | None
    epoch: int
    deadline: float
    max_epoch: int

    def to_dict(self) -> dict:
        """JSON-native form (exactly what ``lease.json`` holds)."""
        return {
            "holder": self.holder,
            "epoch": int(self.epoch),
            "deadline": float(self.deadline),
            "max_epoch": int(self.max_epoch),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "LeaseState":
        return cls(
            holder=raw.get("holder"),
            epoch=int(raw.get("epoch", 0)),
            deadline=float(raw.get("deadline", 0.0)),
            max_epoch=int(raw.get("max_epoch", 0)),
        )

    @classmethod
    def empty(cls) -> "LeaseState":
        return cls(holder=None, epoch=0, deadline=0.0, max_epoch=0)


class LeaseStore:
    """The ``lease.json`` file plus the mutex that serializes writers.

    Reads tolerate a missing or corrupt file by degrading to the empty
    lease (no holder, max_epoch 0) — corruption can only *lose* the
    high-water mark if the file itself is destroyed, which is the same
    failure domain as losing the WAL directory it fences.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / LEASE_NAME
        self._lock = threading.Lock()

    def read(self) -> LeaseState:
        """The current lease (the empty lease when missing/corrupt)."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return LeaseState.empty()
        try:
            return LeaseState.from_dict(raw)
        except (TypeError, ValueError):
            return LeaseState.empty()

    def _write(self, state: LeaseState) -> None:
        tmp = self.path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(state.to_dict(), fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.directory)

    def mutate(
        self, fn: Callable[[LeaseState], LeaseState | None]
    ) -> LeaseState:
        """Atomically read-modify-write: ``fn`` maps the current state to
        the next one (or ``None`` to leave it untouched).  Returns the
        state in force after the call."""
        with self._lock:
            state = self.read()
            nxt = fn(state)
            if nxt is None:
                return state
            self._write(nxt)
            return nxt


class LeaseCoordinator:
    """One node's view of the election: acquire, renew, release, fence.

    ``epoch`` is ``None`` whenever this node does not believe it holds the
    lease; it becomes the granted fencing token on a successful
    :meth:`try_acquire` and reverts to ``None`` the moment a renewal
    discovers the lease expired or changed hands.
    """

    def __init__(
        self,
        node: str,
        store: LeaseStore,
        ttl_s: float = 2.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl_s <= 0:
            raise DurabilityError("lease ttl must be > 0")
        self.node = node
        self.store = store
        self.ttl_s = float(ttl_s)
        self.clock = clock
        self.epoch: int | None = None

    @property
    def is_primary(self) -> bool:
        """Whether this node currently believes it holds the lease.  Belief,
        not truth: only :meth:`check_fence` re-reads the file."""
        return self.epoch is not None

    def try_acquire(self) -> int | None:
        """Claim the lease if it is free, expired, or already ours.

        A fresh grant gets epoch ``max_epoch + 1``; re-acquiring our own
        live lease keeps the current epoch (it is a renewal).  Returns the
        held epoch, or ``None`` if another node holds an unexpired lease.
        """
        now = self.clock()

        def fn(state: LeaseState) -> LeaseState | None:
            ours = state.holder == self.node and state.epoch == self.epoch
            free = state.holder is None or state.deadline <= now or ours
            if not free:
                return None
            epoch = state.epoch if ours else state.max_epoch + 1
            return LeaseState(
                holder=self.node,
                epoch=epoch,
                deadline=now + self.ttl_s,
                max_epoch=max(state.max_epoch, epoch),
            )

        state = self.store.mutate(fn)
        if state.holder == self.node and state.deadline > now:
            self.epoch = state.epoch
            return self.epoch
        self.epoch = None
        return None

    def renew(self) -> bool:
        """Extend our lease if we still hold it **and it has not expired**.
        An expired lease may already belong to someone else's takeover —
        renewal must go back through :meth:`try_acquire` (new epoch)."""
        if self.epoch is None:
            return False
        now = self.clock()

        def fn(state: LeaseState) -> LeaseState | None:
            if (
                state.holder != self.node
                or state.epoch != self.epoch
                or state.deadline <= now
            ):
                return None
            return LeaseState(
                holder=self.node,
                epoch=state.epoch,
                deadline=now + self.ttl_s,
                max_epoch=state.max_epoch,
            )

        state = self.store.mutate(fn)
        held = (
            state.holder == self.node
            and state.epoch == self.epoch
            and state.deadline > now
        )
        if not held:
            self.epoch = None
        return held

    def release(self) -> None:
        """Step down voluntarily: clear the holder (keeping ``max_epoch``)
        so a successor can take over without waiting out the TTL."""
        epoch = self.epoch
        self.epoch = None
        if epoch is None:
            return

        def fn(state: LeaseState) -> LeaseState | None:
            if state.holder != self.node or state.epoch != epoch:
                return None
            return LeaseState(
                holder=None,
                epoch=state.epoch,
                deadline=0.0,
                max_epoch=state.max_epoch,
            )

        self.store.mutate(fn)

    def check_fence(self) -> int:
        """The fence: re-read the lease and raise
        :class:`~repro.errors.FencedError` unless this node is the current,
        unexpired holder at its own epoch.  Returns the epoch on success.
        Installed as :attr:`WriteAheadLog.fence` this makes every journal
        append on a deposed primary fail before it allocates an LSN."""
        epoch = self.epoch
        if epoch is None:
            raise FencedError(f"node {self.node!r} holds no lease")
        state = self.store.read()
        if state.holder != self.node or state.epoch != epoch:
            raise FencedError(
                f"node {self.node!r} fenced: lease now held by "
                f"{state.holder!r} at epoch {state.epoch} (ours was {epoch})"
            )
        if state.deadline <= self.clock():
            raise FencedError(
                f"node {self.node!r} fenced: lease epoch {epoch} expired"
            )
        return epoch
