"""The hot standby: replays shipped WAL frames into a live shadow fabric.

A :class:`StandbyReplica` consumes the frame stream of
:mod:`repro.ha.ship` and maintains a fabric that is **bit-identical** to
the primary's at every applied LSN.  Replay goes through exactly the
machinery crash recovery uses — :func:`fabric_from_manifest` for the empty
shell, :func:`restore_fabric` for checkpoint frames, and an LSN-gated
:class:`RecoveryEngine` driving :func:`apply_fabric_record` for record
frames — so the standby *is* a continuously-running recovery, not a second
implementation of one.

Three guards keep the shadow honest:

* **Epoch gate** — every frame carries its sender's lease epoch; frames
  below the highest accepted epoch are dropped and counted.  The moment a
  new primary's stream (or :meth:`observe_epoch` at takeover) raises the
  bar, a deposed primary's frames can never touch the replica again.
* **CRC re-verification** — record frames carry the WAL line verbatim and
  the replica re-parses it through the same CRC check recovery uses; a byte
  corrupted in flight kills the frame, not the fabric.
* **Digest cross-check** — journaled records carry the primary's post-op
  fabric digest.  Every ``verify_every``-th LSN the replica leaves the
  digest in place so :func:`apply_fabric_record` compares it against the
  shadow fabric (strict, fails the frame); on the other records it strips
  the digest (skipping the ~full-state hash) but remembers it, so
  :meth:`promote` can do one final full-state comparison at the exact
  promoted LSN.

Promotion (:meth:`promote`) verifies that retained digest, then flips the
fabric to the primary role at the new epoch via
:meth:`FabricOrchestrator.promote` — attaching a fresh durability
coordinator whose WAL continues the primary's LSN sequence.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from repro.durability.recover import (
    RecoveryEngine,
    apply_fabric_record,
    fabric_from_manifest,
    restore_fabric,
)
from repro.durability.wal import WalRecord, _parse_line
from repro.errors import DurabilityError
from repro.telemetry.metrics import REPLICATION_LAG_BUCKETS, MetricsRegistry
from repro.telemetry.recorder import FlightRecorder


class StandbyReplica:
    """One hot standby, fed frames by a :class:`~repro.ha.ship.WalShipper`
    (in-process or via a :class:`~repro.ha.ship.ReplicationListener`)."""

    def __init__(
        self,
        with_dataplane: bool | None = None,
        verify_every: int = 8,
        metrics: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        """``verify_every`` is the digest cross-check cadence in LSNs
        (0 = only the promote-time final check); ``with_dataplane``
        overrides the manifest's mode — a control-plane-only shadow
        replays faster and is state-wise identical."""
        if verify_every < 0:
            raise DurabilityError("verify_every must be >= 0")
        self.with_dataplane = with_dataplane
        self.verify_every = verify_every
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.clock = clock
        self.fabric = None
        self.manifest: dict | None = None
        self._engine: RecoveryEngine | None = None
        #: Highest sender epoch accepted so far — the receive-side fence.
        self.accepted_epoch = 0
        #: The primary's last shipped LSN (from heartbeats) — lag baseline.
        self.primary_lsn = 0
        #: Digest carried by the newest applied record, and its LSN — the
        #: promote-time oracle (only valid when the LSNs line up).
        self.last_digest: str | None = None
        self.last_digest_lsn = 0
        self.records_applied = 0
        self.checkpoints_restored = 0
        self.frames_rejected = 0
        self.problems: list[str] = []

    # ------------------------------------------------------------------
    @property
    def applied_lsn(self) -> int:
        """LSN the shadow fabric currently sits at (0 before the manifest)."""
        return self._engine.applied_lsn if self._engine is not None else 0

    def observe_epoch(self, epoch: int) -> None:
        """Raise the epoch bar without a frame — a standby that just won
        the lease calls this *before* its final catch-up, so the deposed
        primary's straggler frames are already un-acceptable."""
        self.accepted_epoch = max(self.accepted_epoch, int(epoch))

    # ------------------------------------------------------------------
    def feed(self, frame: dict) -> bool:
        """Apply one frame.  Returns whether it was accepted (stale-epoch
        frames are dropped and counted, never applied).  Raises
        :class:`DurabilityError` on a malformed frame — the transport drops
        the connection and the next one resyncs."""
        kind = frame.get("kind")
        epoch = int(frame.get("epoch", 0))
        if epoch < self.accepted_epoch:
            self.frames_rejected += 1
            self.metrics.inc("ha.frames_rejected_stale_epoch")
            return False
        self.accepted_epoch = epoch
        if kind == "manifest":
            self._feed_manifest(frame)
        elif kind == "checkpoint":
            self._feed_checkpoint(frame)
        elif kind == "record":
            self._feed_record(frame)
        elif kind == "heartbeat":
            self._feed_heartbeat(frame)
        elif kind == "hello":
            pass  # harmless echo; hellos are transport handshake, not state
        else:
            raise DurabilityError(f"unknown frame kind {kind!r}")
        return True

    def _feed_manifest(self, frame: dict) -> None:
        manifest = frame.get("manifest")
        if not isinstance(manifest, dict):
            raise DurabilityError("manifest frame without a manifest body")
        if self.fabric is not None:
            return  # manifests are immutable; a reconnect re-ships it
        self.manifest = manifest
        self.fabric = fabric_from_manifest(
            manifest, with_dataplane=self.with_dataplane, recorder=self.recorder
        )
        self.fabric.role = "standby"
        self._engine = RecoveryEngine(
            lambda record: apply_fabric_record(self.fabric, record),
            applied_lsn=0,
        )

    def _feed_checkpoint(self, frame: dict) -> None:
        checkpoint = frame.get("checkpoint")
        if not isinstance(checkpoint, dict) or "lsn" not in checkpoint:
            raise DurabilityError("checkpoint frame without a checkpoint body")
        if self.manifest is None:
            raise DurabilityError("checkpoint frame before the manifest")
        lsn = int(checkpoint["lsn"])
        if lsn <= self.applied_lsn:
            return  # we are already past it; the LSN gate covers the rest
        # restore_fabric needs a *fresh* fabric: rebuild the empty shell
        # and land directly on the checkpoint state.
        self.fabric = fabric_from_manifest(
            self.manifest,
            with_dataplane=self.with_dataplane,
            recorder=self.recorder,
        )
        self.fabric.role = "standby"
        restore_fabric(self.fabric, checkpoint)
        self._engine = RecoveryEngine(
            lambda record: apply_fabric_record(self.fabric, record),
            applied_lsn=lsn,
        )
        self.last_digest = checkpoint.get("digest")
        self.last_digest_lsn = lsn
        self.checkpoints_restored += 1
        self.metrics.inc("ha.checkpoints_restored")
        self.recorder.snap("ha-checkpoint-restore", lsn=lsn)

    def _feed_record(self, frame: dict) -> None:
        line = frame.get("line")
        if not isinstance(line, str):
            raise DurabilityError("record frame without a line")
        record = _parse_line(line.encode("utf-8") + b"\n")
        if record is None:
            raise DurabilityError(
                "record frame failed CRC re-verification (corrupt in flight)"
            )
        if self._engine is None:
            raise DurabilityError("record frame before the manifest")
        if record.lsn <= self.applied_lsn:
            self._engine.skipped += 1
            return
        digest = record.data.get("digest")
        verify = bool(
            digest is not None
            and self.verify_every
            and record.lsn % self.verify_every == 0
        )
        if digest is not None and not verify:
            # Skip the full-state hash on off-cadence records, but keep the
            # value: promote() replays the final comparison.
            data = {k: v for k, v in record.data.items() if k != "digest"}
            record = WalRecord(
                lsn=record.lsn, op=record.op, data=data, epoch=record.epoch
            )
        before = len(self._engine.problems)
        self._engine.apply(record)
        new_problems = self._engine.problems[before:]
        if new_problems:
            self.problems.extend(new_problems)
            self.metrics.inc("ha.replay_problems", len(new_problems))
        if verify:
            self.metrics.inc("ha.digest_verifications")
        if digest is not None:
            self.last_digest = digest
            self.last_digest_lsn = record.lsn
        self.records_applied += 1
        self.metrics.inc("ha.records_applied")

    def _feed_heartbeat(self, frame: dict) -> None:
        self.primary_lsn = max(self.primary_lsn, int(frame.get("last_lsn", 0)))
        lag_records = max(0, self.primary_lsn - self.applied_lsn)
        self.metrics.gauge("ha.replication_lag_records").set(lag_records)
        sent_at = frame.get("sent_at")
        if sent_at is not None:
            self.metrics.histogram(
                "ha.heartbeat_delay_s", REPLICATION_LAG_BUCKETS
            ).observe(max(0.0, self.clock() - float(sent_at)))

    # ------------------------------------------------------------------
    def catch_up_from(self, directory: str | Path, epoch: int | None = None) -> int:
        """One-shot tail sync straight from a durability directory — the
        takeover step that drains whatever the dead primary's disk still
        holds (shared-disk deployments) before promotion.  Mutilated tails
        simply end the readable prefix, exactly as recovery would see them.
        Returns the number of records applied."""
        from repro.ha.ship import InProcessSink, WalShipper

        if epoch is not None:
            self.observe_epoch(epoch)
        token = self.accepted_epoch
        shipper = WalShipper(
            directory, InProcessSink(self), epoch_fn=lambda: token
        )
        return shipper.pump()

    def promote(self, epoch: int, durability=None) -> list[str]:
        """Take over as primary at lease ``epoch``.

        First the promote-time oracle check: when the newest applied record
        carried a digest, the shadow fabric must hash to it exactly —
        a divergence here means the replica is *not* the primary's state
        and must not serve.  Then the fabric flips to the primary role
        (attaching ``durability``, typically a fresh
        :class:`~repro.durability.checkpoint.FabricDurability` whose
        ``start_lsn`` continues this replica's applied LSN).  Returns the
        fabric's invariant problems (empty = clean takeover)."""
        if self.fabric is None:
            raise DurabilityError("cannot promote: no manifest received yet")
        if (
            self.last_digest is not None
            and self.last_digest_lsn == self.applied_lsn
        ):
            digest = self.fabric.digest()
            if digest != self.last_digest:
                raise DurabilityError(
                    f"standby diverged: fabric digest {digest} != primary's "
                    f"{self.last_digest} at lsn {self.applied_lsn}"
                )
        self.observe_epoch(epoch)
        problems = self.fabric.promote(epoch, durability=durability)
        if self.problems:
            problems = list(self.problems) + list(problems)
        self.metrics.inc("ha.promotions")
        return problems

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-native state summary (the CLI's and front end's shape)."""
        return {
            "role": self.fabric.role if self.fabric is not None else "standby",
            "accepted_epoch": self.accepted_epoch,
            "applied_lsn": self.applied_lsn,
            "primary_lsn": self.primary_lsn,
            "lag_records": max(0, self.primary_lsn - self.applied_lsn),
            "records_applied": self.records_applied,
            "checkpoints_restored": self.checkpoints_restored,
            "frames_rejected": self.frames_rejected,
            "problems": list(self.problems),
        }
