"""Counters, gauges, histograms, timers, and snapshots.

A deliberately small Prometheus-flavoured metrics layer.  Counters are
monotonic (admissions, rejections by reason, rule churn, rollbacks); gauges
are set to the latest observed value (live tenants, objective, residual
memory per stage); histograms bin observations into fixed buckets (the
fabric orchestrator tracks per-switch admit latency this way);
:meth:`MetricsRegistry.timer` stopwatches a code block straight into a
latency histogram — the controller, fabric, and churn engines time every
operation through it instead of hand-rolled ``perf_counter`` pairs.
:meth:`MetricsRegistry.snapshot` freezes everything into one plain ``dict``
of name-sorted sub-dicts built from JSON-native types only, so serialized
snapshots are deterministic and diff cleanly — the shape the churn
benchmarks serialize to ``BENCH_controller.json`` / ``BENCH_fabric.json``,
the ``sfp controller`` / ``sfp fabric`` CLIs print, and
:func:`repro.telemetry.export.render_prometheus` renders in Prometheus text
format.

Every metric is **thread-safe**: counters, gauges, and histograms each
carry their own mutex and the registry serializes get-or-create and
snapshots, so the concurrent front end's shard workers
(:mod:`repro.frontend.workers`) can hammer one shared registry without
corrupting counts or tearing snapshots mid-update.

Historically this module lived at ``repro.controller.metrics``; that path
remains as a re-export shim.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from time import perf_counter

from repro.errors import PlacementError

#: Default histogram buckets (upper bounds, seconds) spanning the admit
#: latencies the pure-python controller produces: 10 µs .. 1 s, roughly
#: logarithmic.  An implicit overflow bucket catches everything above.
DEFAULT_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0,
)

#: Buckets (seconds) for HA replication-lag and failover-time histograms:
#: shipping inside one process lands in the sub-millisecond bins, a lagging
#: standby or a lease-expiry failover in the right half, and anything past
#: 30 s overflows — a replica that far behind is an operator page, not a
#: datapoint.
REPLICATION_LAG_BUCKETS = (
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


@dataclass
class Counter:
    """A monotonically increasing counter (thread-safe)."""

    name: str
    value: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise PlacementError(f"counter {self.name!r}: negative increment {n}")
        with self._lock:
            self.value += n


@dataclass
class Gauge:
    """A gauge holding the latest observed value (thread-safe)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        """Record the latest observation."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """A fixed-bucket histogram of non-negative observations.

    ``buckets`` are ascending upper bounds; an implicit overflow bucket
    catches observations above the last bound.  Bounds are fixed at
    construction (no rebinning), so merging/diffing snapshots is trivial
    and :meth:`observe` is one bisect.  Designed for latencies: quantiles
    interpolate linearly inside a bucket with the first bucket anchored at
    zero.
    """

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise PlacementError(f"histogram {name!r}: needs >= 1 bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise PlacementError(
                f"histogram {name!r}: bucket bounds must be strictly "
                f"ascending, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        #: Per-bucket counts; the extra last slot is the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (bucket bounds are inclusive, Prometheus
        ``le`` style)."""
        value = float(value)
        with self._lock:
            self.counts[bisect.bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value

    def quantile(self, q: float) -> float | None:
        """The ``q``-th percentile (``q`` in [0, 100], matching
        ``numpy.percentile``), linearly interpolated within the covering
        bucket; observations in the overflow bucket clamp to the last
        bound.  ``None`` when nothing has been observed — never NaN."""
        if not 0.0 <= q <= 100.0:
            raise PlacementError(f"histogram {self.name!r}: percentile {q}")
        with self._lock:
            counts = list(self.counts)
            count = self.count
        return self._quantile_from(counts, count, q)

    def _quantile_from(
        self, counts: list[int], count: int, q: float
    ) -> float | None:
        """The quantile over one consistent ``(counts, count)`` copy."""
        if count == 0:
            return None
        rank = q / 100.0 * count
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lo = 0.0 if idx == 0 else self.bounds[idx - 1]
            hi = self.bounds[min(idx, len(self.bounds) - 1)]
            if cumulative + bucket_count >= rank:
                if idx == len(self.bounds):  # overflow: clamp to last bound
                    return hi
                fraction = max(0.0, rank - cumulative) / bucket_count
                return lo + fraction * (hi - lo)
            cumulative += bucket_count
        return self.bounds[-1]  # pragma: no cover — rank <= count always hits

    def snapshot(self) -> dict:
        """Plain JSON-native form: count, sum, p50/p99 estimates, and the
        ``[upper_bound, count]`` rows (overflow bound serialized as
        ``None`` so the JSON stays standard).  The copy is taken under the
        histogram mutex, so a snapshot racing concurrent ``observe`` calls
        is still internally consistent (buckets sum to ``count``)."""
        with self._lock:
            counts = list(self.counts)
            count = self.count
            total = self.sum
        rows = [
            [self.bounds[i] if i < len(self.bounds) else None, counts[i]]
            for i in range(len(counts))
        ]
        return {
            "count": count,
            "sum": total,
            "p50": self._quantile_from(counts, count, 50),
            "p99": self._quantile_from(counts, count, 99),
            "buckets": rows,
        }


class Timer:
    """A context-manager stopwatch, optionally bound to a histogram.

    Starts at construction *and* restarts on ``__enter__``, so both idioms
    work::

        with registry.timer("admit_latency_s") as timer:
            ...                     # observed into the histogram on exit
        result.latency_s = timer.elapsed_s

        timer = Timer()             # standalone stopwatch, no histogram
        ...
        took = timer.elapsed_s      # live reading, never stops

    :attr:`elapsed_s` reads live while running and freezes at the value
    observed into the histogram once the ``with`` block exits.
    """

    __slots__ = ("histogram", "_start", "_stopped")

    def __init__(self, histogram: Histogram | None = None) -> None:
        self.histogram = histogram
        self._start = perf_counter()
        self._stopped: float | None = None

    def __enter__(self) -> "Timer":
        self._start = perf_counter()
        self._stopped = None
        return self

    def __exit__(self, *_exc: object) -> None:
        self._stopped = perf_counter() - self._start
        if self.histogram is not None:
            self.histogram.observe(self._stopped)

    @property
    def elapsed_s(self) -> float:
        """Seconds since start — live while running, frozen after exit."""
        if self._stopped is not None:
            return self._stopped
        return perf_counter() - self._start


@dataclass
class MetricsRegistry:
    """Name-addressed counters, gauges, and histograms with one-call
    snapshots.

    Metric names are free-form dotted strings; reason-coded rejections use
    the ``rejected.<reason>`` convention next to the ``rejected`` total,
    and the fabric's per-switch latencies use ``admit_latency_s.<switch>``.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero on first use."""
        counter = self.counters.get(name)
        if counter is None:
            with self._lock:
                counter = self.counters.get(name)
                if counter is None:
                    counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at zero on first use."""
        gauge = self.gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self.gauges.get(name)
                if gauge is None:
                    gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        """The histogram called ``name``, created empty on first use
        (``buckets`` only applies at creation; later calls reuse the
        existing bounds)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram(
                        name,
                        buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS,
                    )
        return histogram

    def inc(self, name: str, n: int = 1) -> None:
        """Shorthand for ``counter(name).inc(n)``."""
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        """Shorthand for ``histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    def timer(
        self, name: str, buckets: tuple[float, ...] | None = None
    ) -> Timer:
        """A :class:`Timer` bound to ``histogram(name)``: use as a context
        manager and the block's wall time (seconds) lands in the histogram
        on exit, with the exact reading still available as ``elapsed_s``."""
        return Timer(self.histogram(name, buckets))

    def snapshot(self) -> dict:
        """Freeze every metric into ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` — plain dicts of JSON-native values with
        names sorted, so serialized snapshots are deterministic and diff
        cleanly."""
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            histograms = dict(self.histograms)
        return {
            "counters": {n: counters[n].value for n in sorted(counters)},
            "gauges": {n: gauges[n].value for n in sorted(gauges)},
            "histograms": {
                n: histograms[n].snapshot() for n in sorted(histograms)
            },
        }
