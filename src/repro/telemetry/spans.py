"""Zero-dependency trace spans for the control plane.

A :class:`Tracer` hands out :class:`Span` context managers with monotonic
``perf_counter_ns`` clocks and automatic parent/child linkage through a
current-span stack.  The stack is **per-thread** (``threading.local``):
every control-plane event runs on one thread, so within a thread a stack is
the whole story, and the concurrent front end's shard workers each nest
their own fabric → controller → installer cascade without interleaving
parentage across workers.  Span-id allocation and the finished ring are
mutex-guarded, so one tracer may serve many workers; single-threaded runs
produce byte-identical exports to the pre-concurrency tracer.  One
``FabricOrchestrator.admit`` with a tracer attached therefore yields one
*connected* tree::

    fabric.admit
      controller.admit
        controller.admission
        controller.placement
        install.install
          runtime.write      (phase 1: rules)
          runtime.write      (phase 2: attach)

Finished spans are kept in a bounded ring and exportable two ways:
:meth:`Tracer.export_jsonl` (one JSON object per span, per line) and
:meth:`Tracer.to_chrome_trace` (the Chrome ``trace_event`` format —
load the file at ``chrome://tracing`` or https://ui.perfetto.dev).

Span IDs are small monotonically increasing integers, so exports are
deterministic given deterministic control flow (timestamps aside).
Components take an *optional* tracer; :func:`maybe_span` returns a shared
no-op span when it is ``None``, keeping the disabled cost to one branch.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from time import perf_counter_ns
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.recorder import FlightRecorder


class Span:
    """One timed operation, linked to its parent; a context manager.

    Entering starts nothing (the clock starts at creation, inside
    :meth:`Tracer.span`); exiting stops the clock, pops the tracer's
    stack, and files the span as finished.  ``set(**attrs)`` annotates.
    """

    __slots__ = (
        "name", "span_id", "trace_id", "parent_id",
        "start_ns", "end_ns", "attrs", "status", "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        start_ns: int,
        tracer: "Tracer",
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: int | None = None
        self.attrs: dict = {}
        self.status = "ok"
        self._tracer = tracer

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False

    # -- annotation --------------------------------------------------------
    def set(self, **attrs: object) -> "Span":
        """Attach key/value annotations (JSON-native values, please)."""
        self.attrs.update(attrs)
        return self

    # -- derived -----------------------------------------------------------
    @property
    def duration_ns(self) -> int:
        """Wall time in ns (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        """Wall time in seconds (0.0 while still open)."""
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        """JSON-native form (one JSONL record)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"trace={self.trace_id}, parent={self.parent_id}, "
            f"dur={self.duration_ns}ns)"
        )


class _NullSpan:
    """The shared do-nothing span :func:`maybe_span` returns when tracing
    is off: supports the same ``with``/``set`` surface at near-zero cost."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False

    def set(self, **_attrs: object) -> "_NullSpan":
        """No-op annotation."""
        return self


#: The singleton no-op span (one allocation for the whole process).
NULL_SPAN = _NullSpan()


def maybe_span(tracer: "Tracer | None", name: str, **attrs: object):
    """``tracer.span(name, **attrs)`` when tracing is on, else the shared
    :data:`NULL_SPAN` — the one-branch idiom every instrumented call site
    uses so disabled telemetry stays effectively free."""
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


class Tracer:
    """Hands out spans, maintains the parent stack, retains the finished.

    ``metrics`` (optional) receives a ``span_latency_s.<name>`` histogram
    observation per finished span; ``recorder`` (optional) receives each
    finished span as a flight-recorder event.
    """

    def __init__(
        self,
        capacity: int = 4096,
        metrics: "MetricsRegistry | None" = None,
        recorder: "FlightRecorder | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        #: Finished spans, oldest evicted first.
        self.finished: deque[Span] = deque(maxlen=capacity)
        self.metrics = metrics
        self.recorder = recorder
        self.spans_started = 0
        # Span stacks are per-thread so cascaded fabric -> shard spans on
        # concurrent workers cannot interleave parentage across threads;
        # id allocation and the finished ring are shared, under a mutex.
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        self._next_trace = 1

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """Open a child of the calling thread's current span (or a new
        root trace)."""
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            if parent is None:
                trace_id = self._next_trace
                self._next_trace += 1
            else:
                trace_id = parent.trace_id
            span_id = self._next_id
            self._next_id += 1
            self.spans_started += 1
        span = Span(
            name=name,
            span_id=span_id,
            trace_id=trace_id,
            parent_id=None if parent is None else parent.span_id,
            start_ns=perf_counter_ns(),
            tracer=self,
        )
        if attrs:
            span.attrs.update(attrs)
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_ns = perf_counter_ns()
        # Tolerate out-of-order exits defensively: pop through the span.
        # Spans finish on the thread that opened them, so only the calling
        # thread's stack is touched.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            self.finished.append(span)
        if self.metrics is not None:
            self.metrics.observe(f"span_latency_s.{span.name}", span.duration_s)
        if self.recorder is not None:
            self.recorder.add("span", span.to_dict())

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def clear(self) -> None:
        """Drop retained spans (open spans are unaffected)."""
        self.finished.clear()

    # ------------------------------------------------------------------
    # Views & exports
    # ------------------------------------------------------------------
    def traces(self) -> dict[int, list[Span]]:
        """Finished spans grouped by trace id, in finish order."""
        grouped: dict[int, list[Span]] = {}
        for span in self.finished:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def children(self, span: Span) -> list[Span]:
        """Finished direct children of ``span``, in start order."""
        kids = [s for s in self.finished if s.parent_id == span.span_id]
        kids.sort(key=lambda s: s.start_ns)
        return kids

    def roots(self, trace_id: int | None = None) -> list[Span]:
        """Finished root spans (optionally of one trace), in start order."""
        out = [
            s
            for s in self.finished
            if s.parent_id is None
            and (trace_id is None or s.trace_id == trace_id)
        ]
        out.sort(key=lambda s: s.start_ns)
        return out

    def render_tree(self, root: Span, indent: int = 0) -> str:
        """An ASCII tree of ``root`` and its finished descendants."""
        pad = "  " * indent
        attrs = ""
        if root.attrs:
            attrs = " " + " ".join(
                f"{k}={v}" for k, v in sorted(root.attrs.items())
            )
        lines = [
            f"{pad}{root.name} {root.duration_ns / 1e6:.3f}ms"
            f" [{root.status}]{attrs}"
        ]
        for child in self.children(root):
            lines.append(self.render_tree(child, indent + 1))
        return "\n".join(lines)

    def export_jsonl(self) -> str:
        """Finished spans as JSON Lines (one span per line, finish order)."""
        return "\n".join(json.dumps(s.to_dict()) for s in self.finished)

    def to_chrome_trace(self) -> list[dict]:
        """Finished spans as Chrome ``trace_event`` complete ("X") events.

        ``pid`` carries the trace id so each request renders as its own
        process row; timestamps/durations are microseconds per the format.
        Serialize with ``json.dumps`` and open at ``chrome://tracing``.
        """
        return [
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_ns / 1e3,
                "dur": span.duration_ns / 1e3,
                "pid": span.trace_id,
                "tid": 1,
                "args": {
                    **{k: str(v) for k, v in span.attrs.items()},
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                },
            }
            for span in self.finished
        ]
