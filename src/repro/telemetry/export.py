"""Prometheus text-format rendering of metrics snapshots.

:func:`render_prometheus` turns a
:class:`~repro.telemetry.metrics.MetricsRegistry` (or its ``snapshot()``
dict) into the Prometheus exposition text format, the lingua franca every
scraper understands:

* counters -> ``<ns>_<name>_total`` with ``# TYPE ... counter``;
* gauges   -> ``<ns>_<name>`` with ``# TYPE ... gauge``;
* histograms -> cumulative ``_bucket{le="..."}`` rows (the registry stores
  per-bucket counts; Prometheus buckets are cumulative, so this accumulates
  and closes with ``le="+Inf"``), plus ``_sum`` and ``_count``.

Dotted metric names (``rejected.no-feasible-placement``,
``admit_latency_s.sw0``) sanitize to underscores — the registry's naming
convention stays the source of truth and the rendering stays dependency-
free.  Output is deterministic: names sort exactly as in
``MetricsRegistry.snapshot``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import MetricsRegistry

#: Characters legal in a Prometheus metric name (after the first char).
_LEGAL = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus name grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``): illegal characters become ``_`` and a
    leading digit gets a ``_`` prefix."""
    out = "".join(c if c in _LEGAL else "_" for c in name)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # pragma: no cover — registries store numbers
        return "1" if value else "0"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    metrics: "MetricsRegistry | dict", namespace: str = "sfp"
) -> str:
    """The full exposition page for one registry (or snapshot dict)."""
    snapshot = metrics if isinstance(metrics, dict) else metrics.snapshot()
    prefix = sanitize_metric_name(namespace)
    lines: list[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = f"{prefix}_{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    for name, hist in snapshot.get("histograms", {}).items():
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in hist["buckets"]:
            cumulative += count
            le = "+Inf" if bound is None else _fmt(float(bound))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(hist['sum'])}")
        lines.append(f"{metric}_count {_fmt(hist['count'])}")

    return "\n".join(lines) + ("\n" if lines else "")
