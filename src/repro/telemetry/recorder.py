"""The flight recorder: a bounded ring of recent telemetry for post-mortems.

Production switch fleets keep a short in-memory history of "what just
happened" — recent spans, sampled postcards, state transitions — precisely
so the moment something trips (an invariant audit fails, a drain strands
tenants) there is context to dump without having had verbose logging on.
:class:`FlightRecorder` is that ring: every attached producer
(:class:`~repro.telemetry.spans.Tracer`,
:class:`~repro.telemetry.postcards.PostcardCollector`, and the control
plane's own state-transition events) appends JSON-native entries, old
entries fall off the back, and :meth:`dump` freezes the tail into one
plain dict.

The fabric wires it in automatically: ``FabricOrchestrator.check_invariant``
snaps a dump when any invariant drifts, and ``drain`` snaps one when a
tenant could not be re-homed.  Snapped dumps are retained (bounded) on
:attr:`dumps` and can be written to disk with :meth:`dump_to`.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from time import monotonic_ns


class FlightRecorder:
    """A bounded ring buffer of telemetry events with snap-on-failure."""

    def __init__(self, capacity: int = 512, max_dumps: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_dumps < 1:
            raise ValueError("max_dumps must be >= 1")
        #: Recent events (oldest evicted first); each is a plain dict.
        self.events: deque[dict] = deque(maxlen=capacity)
        #: Dumps snapped by failures (oldest evicted first).
        self.dumps: deque[dict] = deque(maxlen=max_dumps)
        self.events_recorded = 0
        self.dumps_snapped = 0
        self._seq = 0
        # Sequence numbers, counters, and ring appends share one mutex so
        # concurrent shard workers can feed the same recorder.
        self._lock = threading.Lock()

    def add(self, kind: str, data: dict) -> None:
        """Append one event.  ``kind`` is a short tag (``"span"``,
        ``"postcard"``, ``"state"``); ``data`` must be JSON-native."""
        with self._lock:
            self._seq += 1
            self.events_recorded += 1
            self.events.append(
                {
                    "seq": self._seq,
                    "monotonic_ns": monotonic_ns(),
                    "kind": kind,
                    "data": data,
                }
            )

    def record_state(self, event: str, **fields: object) -> None:
        """Shorthand for a state-transition event (admit/evict/drain/...)."""
        self.add("state", {"event": event, **fields})

    # ------------------------------------------------------------------
    def dump(self, reason: str = "manual", **context: object) -> dict:
        """Freeze the current ring tail into one JSON-native dict (oldest
        event first), without retaining it."""
        with self._lock:
            return {
                "reason": reason,
                "context": dict(context),
                "events_recorded": self.events_recorded,
                "events": [dict(e) for e in self.events],
            }

    def snap(self, reason: str, **context: object) -> dict:
        """Like :meth:`dump` but retains the dump on :attr:`dumps` — what
        the fabric's failure paths call so post-mortems survive the
        moment."""
        snapped = self.dump(reason, **context)
        with self._lock:
            self.dumps.append(snapped)
            self.dumps_snapped += 1
        return snapped

    def dump_to(self, path: str | Path, reason: str = "manual",
                **context: object) -> Path:
        """Write :meth:`dump` as pretty JSON to ``path``; returns it."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            json.dump(self.dump(reason, **context), fh, indent=2)
            fh.write("\n")
        return path

    def __len__(self) -> int:
        return len(self.events)
