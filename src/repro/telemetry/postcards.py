"""INT-style per-packet postcards: sampled per-hop dataplane telemetry.

In-band Network Telemetry on real programmable switches stamps per-hop
metadata into packets (or mirrors "postcards" to a collector) so operators
can see *where* a packet actually went.  The functional pipeline mirrors
that: when a packet is sampled — or explicitly traced — every table
application appends a :class:`PostcardHop` (recirculation pass, stage,
table, hit/miss, matched rule id, action, modeled latency contribution) to
a :class:`PacketPostcard` carried alongside the packet and attached to its
:class:`~repro.dataplane.packet.PacketResult`.

Sampling is owned by a :class:`PostcardCollector` hung on
``SwitchPipeline.telemetry``: deterministic 1-in-N count-based sampling
(no RNG, so runs stay reproducible), a bounded ring of recent postcards,
and per-switch / per-tenant counters that :meth:`PostcardCollector.publish`
folds into a :class:`~repro.telemetry.metrics.MetricsRegistry` for the
Prometheus exporter.  ``sample_every=0`` arms the hook without ever
sampling — the "telemetry off" configuration whose cost
``benchmarks/bench_telemetry_overhead.py`` bounds below 1%.

This module deliberately imports nothing from the dataplane, so the
pipeline can import it without cycles.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.recorder import FlightRecorder


@dataclass(frozen=True)
class PostcardHop:
    """One table application observed by a sampled/traced packet."""

    #: Recirculation pass (1-based, the ``pass_id`` the rule matched on).
    pass_id: int
    #: Physical stage (MAU) index.
    stage: int
    #: Table name (e.g. ``firewall@s0`` or ``tenant_map@s0``).
    table: str
    #: Action that fired (the table's default on a miss).
    action: str
    #: True when an installed entry matched; False = default action.
    hit: bool
    #: The matched entry's per-table insertion sequence (stable for the
    #: entry's lifetime); ``None`` on a miss.
    rule_id: int | None
    #: Modeled latency contribution (ns): the stage traversal cost,
    #: attributed to the first table applied in each (pass, stage).
    latency_ns: float

    def describe(self) -> str:
        """One human-readable line (the ``sfp trace`` output format)."""
        outcome = f"hit rule#{self.rule_id}" if self.hit else "miss"
        return (
            f"pass {self.pass_id} stage {self.stage}: {self.table} "
            f"-> {self.action} ({outcome}, +{self.latency_ns:.1f}ns)"
        )


@dataclass
class PacketPostcard:
    """The accumulated per-hop record of one packet's pipeline walk."""

    #: Which pipeline produced this card (the fabric shares one collector
    #: across shards and distinguishes them by this name).
    switch: str
    tenant_id: int
    #: Per-stage traversal cost used for hop latency attribution.
    stage_ns: float = 0.0
    hops: list[PostcardHop] = field(default_factory=list)
    #: Total pipeline traversals (1 = no recirculation); set by ``finish``.
    passes: int = 1
    dropped: bool = False
    #: End-to-end modeled latency from the ASIC model; set by ``finish``.
    latency_ns: float = 0.0

    def add_hop(
        self,
        pass_id: int,
        stage: int,
        table: str,
        action: str,
        hit: bool,
        rule_id: int | None,
    ) -> None:
        """Record one table application.  The stage traversal cost is
        attributed to the first hop in each (pass, stage); further tables
        in the same stage contribute 0 (an MAU is one clocked traversal
        regardless of how many resident tables looked at the packet)."""
        last = self.hops[-1] if self.hops else None
        first_in_stage = (
            last is None or (last.pass_id, last.stage) != (pass_id, stage)
        )
        self.hops.append(
            PostcardHop(
                pass_id=pass_id,
                stage=stage,
                table=table,
                action=action,
                hit=hit,
                rule_id=rule_id,
                latency_ns=self.stage_ns if first_in_stage else 0.0,
            )
        )

    def finish(self, passes: int, latency_ns: float, dropped: bool) -> None:
        """Seal the card with the packet's end-of-pipeline facts."""
        self.passes = passes
        self.latency_ns = latency_ns
        self.dropped = dropped

    # ------------------------------------------------------------------
    @property
    def recirculations(self) -> int:
        """Extra traversals beyond the first."""
        return self.passes - 1

    def hops_for_pass(self, pass_id: int) -> list[PostcardHop]:
        """The hops recorded during recirculation pass ``pass_id``."""
        return [h for h in self.hops if h.pass_id == pass_id]

    def trace_rows(self) -> list[tuple[int, int, str, str]]:
        """The legacy ``(pass, stage, table, action)`` trace rows —
        ``process(trace=True)`` derives its result's ``trace`` from this,
        making the old flag a thin wrapper over postcards."""
        return [(h.pass_id, h.stage, h.table, h.action) for h in self.hops]

    def to_dict(self) -> dict:
        """JSON-native form (flight-recorder entries, ``sfp trace``)."""
        return {
            "switch": self.switch,
            "tenant_id": self.tenant_id,
            "passes": self.passes,
            "dropped": self.dropped,
            "latency_ns": self.latency_ns,
            "hops": [
                {
                    "pass": h.pass_id,
                    "stage": h.stage,
                    "table": h.table,
                    "action": h.action,
                    "hit": h.hit,
                    "rule_id": h.rule_id,
                    "latency_ns": h.latency_ns,
                }
                for h in self.hops
            ],
        }

    def describe(self) -> str:
        """Multi-line human-readable card (the ``sfp trace`` output)."""
        head = (
            f"postcard tenant={self.tenant_id} switch={self.switch} "
            f"passes={self.passes} dropped={self.dropped} "
            f"latency={self.latency_ns:.0f}ns"
        )
        return "\n".join([head] + [f"  {h.describe()}" for h in self.hops])


class PostcardCollector:
    """Deterministic 1-in-N postcard sampling with bounded retention.

    Attach to ``SwitchPipeline.telemetry`` (one collector may serve many
    pipelines — the fabric shares one across its shards).  Sampling is
    count-based: every ``sample_every``-th packet seen across all attached
    pipelines is sampled; ``sample_every=1`` samples everything and
    ``sample_every=0`` disarms sampling while keeping the hook wired (the
    measured-to-be-free "off" configuration).
    """

    def __init__(
        self,
        sample_every: int = 64,
        capacity: int = 256,
        recorder: "FlightRecorder | None" = None,
    ) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 = never sample)")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sample_every = sample_every
        #: Recent postcards, oldest evicted first.
        self.cards: deque[PacketPostcard] = deque(maxlen=capacity)
        self.recorder = recorder
        # Counters and the ring are mutated under one mutex so concurrent
        # shard workers can share a collector without losing samples.
        self._lock = threading.Lock()
        # -- counters ---------------------------------------------------
        self.packets_seen = 0
        self.postcards_sampled = 0
        self.recirculations_observed = 0
        self.drops_observed = 0
        self.by_switch: dict[str, int] = {}
        self.by_tenant: dict[int, int] = {}

    def should_sample(self) -> bool:
        """Advance the packet counter; True on every N-th packet."""
        with self._lock:
            self.packets_seen += 1
            return (
                self.sample_every > 0
                and self.packets_seen % self.sample_every == 0
            )

    def reserve(self, n: int) -> int:
        """Reserve the next ``n`` packet-counter slots in one lock grab and
        return the counter value *before* the reservation.

        The compiled fast path samples whole batches up front: packet ``i``
        of the batch is sampled iff ``sample_every > 0`` and
        ``(base + i + 1) % sample_every == 0`` — exactly the sequence that
        ``n`` consecutive :meth:`should_sample` calls would have produced,
        at the cost of one mutex acquisition instead of ``n``.
        """
        with self._lock:
            base = self.packets_seen
            self.packets_seen += n
            return base

    def record(self, card: PacketPostcard) -> None:
        """Retain one finished postcard and update the counters."""
        with self._lock:
            self.postcards_sampled += 1
            self.recirculations_observed += card.recirculations
            if card.dropped:
                self.drops_observed += 1
            self.by_switch[card.switch] = self.by_switch.get(card.switch, 0) + 1
            self.by_tenant[card.tenant_id] = (
                self.by_tenant.get(card.tenant_id, 0) + 1
            )
            self.cards.append(card)
        if self.recorder is not None:
            self.recorder.add("postcard", card.to_dict())

    def publish(
        self, registry: "MetricsRegistry", prefix: str = "telemetry"
    ) -> None:
        """Fold the collector's counters into ``registry`` as gauges (the
        collector is the source of truth; publishing is idempotent), under
        ``<prefix>.*`` with per-switch / per-tenant dotted suffixes."""
        snap = self.snapshot()
        registry.gauge(f"{prefix}.packets_seen").set(snap["packets_seen"])
        registry.gauge(f"{prefix}.postcards_sampled").set(
            snap["postcards_sampled"]
        )
        registry.gauge(f"{prefix}.recirculations_observed").set(
            snap["recirculations_observed"]
        )
        registry.gauge(f"{prefix}.drops_observed").set(snap["drops_observed"])
        for switch, n in snap["by_switch"].items():
            registry.gauge(f"{prefix}.postcards_sampled.{switch}").set(n)
        for tenant, n in snap["by_tenant"].items():
            registry.gauge(f"{prefix}.postcards_sampled.tenant.{tenant}").set(n)

    def snapshot(self) -> dict:
        """JSON-native counter snapshot (``sfp trace`` prints this), taken
        atomically under the collector mutex."""
        with self._lock:
            return {
                "packets_seen": self.packets_seen,
                "postcards_sampled": self.postcards_sampled,
                "recirculations_observed": self.recirculations_observed,
                "drops_observed": self.drops_observed,
                "by_switch": dict(sorted(self.by_switch.items())),
                "by_tenant": {
                    str(t): n for t, n in sorted(self.by_tenant.items())
                },
            }
