"""Cross-cutting observability: postcards, spans, flight recorder, exporter.

The telemetry subsystem makes the reproduction's fast paths visible without
slowing them down:

* :mod:`~repro.telemetry.postcards` — INT-style sampled per-packet, per-hop
  dataplane records (``SwitchPipeline.telemetry`` hook; ``trace=True`` is a
  thin wrapper over the same machinery);
* :mod:`~repro.telemetry.spans` — zero-dependency control-plane trace spans
  (fabric -> controller -> installer -> runtime writes as one connected
  tree), exportable as JSONL and Chrome ``trace_event`` JSON;
* :mod:`~repro.telemetry.recorder` — a bounded flight recorder the fabric
  dumps automatically when an invariant audit or a drain goes sideways;
* :mod:`~repro.telemetry.metrics` — counters/gauges/histograms/timers
  (moved here from ``repro.controller.metrics``, which remains a shim);
* :mod:`~repro.telemetry.export` — Prometheus text-format rendering of
  registry snapshots.

``benchmarks/bench_telemetry_overhead.py`` holds the cost honest: sampled
tracing stays under 10% on the fabric churn workload and the disarmed hooks
under 1%.
"""

from repro.telemetry.export import render_prometheus, sanitize_metric_name
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.telemetry.postcards import (
    PacketPostcard,
    PostcardCollector,
    PostcardHop,
)
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.spans import NULL_SPAN, Span, Tracer, maybe_span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "PacketPostcard",
    "PostcardCollector",
    "PostcardHop",
    "Span",
    "Timer",
    "Tracer",
    "maybe_span",
    "render_prometheus",
    "sanitize_metric_name",
]
