"""Backward-compatible re-export of :mod:`repro.telemetry.metrics`.

The metrics layer started life inside the controller package and moved to
the cross-cutting telemetry subsystem once the data plane and fabric grew
their own consumers.  Every public name is re-exported here unchanged —
``from repro.controller.metrics import MetricsRegistry`` keeps working, and
the classes are *identical* objects (``is``-equal) to the telemetry ones,
so isinstance checks across the two import paths agree.
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
]
