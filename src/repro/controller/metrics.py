"""Controller observability: counters, gauges, and snapshots.

A deliberately small Prometheus-flavoured metrics layer.  Counters are
monotonic (admissions, rejections by reason, rule churn, rollbacks); gauges
are set to the latest observed value (live tenants, objective, residual
memory per stage).  :meth:`MetricsRegistry.snapshot` freezes everything into
one plain ``dict`` — the shape the churn benchmark serializes to
``BENCH_controller.json`` and the ``sfp controller`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlacementError


@dataclass
class Counter:
    """A monotonically increasing counter."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise PlacementError(f"counter {self.name!r}: negative increment {n}")
        self.value += n


@dataclass
class Gauge:
    """A gauge holding the latest observed value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the latest observation."""
        self.value = float(value)


@dataclass
class MetricsRegistry:
    """Name-addressed counters and gauges with one-call snapshots.

    Metric names are free-form dotted strings; reason-coded rejections use
    the ``rejected.<reason>`` convention next to the ``rejected`` total.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero on first use."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at zero on first use."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def inc(self, name: str, n: int = 1) -> None:
        """Shorthand for ``counter(name).inc(n)``."""
        self.counter(name).inc(n)

    def snapshot(self) -> dict:
        """Freeze every metric into ``{"counters": {...}, "gauges": {...}}``
        with names sorted, so snapshots diff cleanly."""
        return {
            "counters": {n: self.counters[n].value for n in sorted(self.counters)},
            "gauges": {n: self.gauges[n].value for n in sorted(self.gauges)},
        }
