"""Transactional rule installation with hitless two-phase updates.

The mechanism that makes controller updates *hitless* is one level of
indirection on the tenant ID.  A ``tenant_map`` table sits at the very front
of stage 0 and rewrites each packet's tenant ID to an epoch-qualified **wire
ID** (action ``set_tenant``); every virtualized rule of that tenant's chain
is installed under the wire ID, not the raw tenant ID.  Because the rewrite
happens on pass 1 and the field persists across recirculation, the single
map entry is the *only* coupling point between a tenant's traffic and a rule
generation:

* **install** — phase 1 writes the chain's rules under a fresh wire ID (they
  are inert: no packet carries that ID yet); phase 2 inserts the map entry.
* **evict** — phase 1 deletes the map entry (traffic detaches); phase 2
  deletes the now-unreachable rules.
* **replace** (make-before-break) — phase 1 installs the *new* generation
  under a second wire ID; phase 2 atomically MODIFYs the map entry to point
  at it; phase 3 deletes the old generation.  A packet anywhere in a
  concurrent batch matches either the complete old chain or the complete new
  chain — never a mix — because it observed exactly one value of the map.

Every phase is one atomic :class:`~repro.dataplane.runtime_api.RuntimeAPI`
batch, and the optional :attr:`TransactionalInstaller.on_batch` hook fires
between phases — the test harness uses it to interleave ``process_batch``
calls and assert the no-mixed-generation property.

When make-before-break cannot fit the transient double occupancy, the
installer falls back to break-before-make (tear down old, then install new),
restoring the old generation if even that fails; callers can observe the
downgrade through the returned ``hitless`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dataplane.lookup_index import MatchField, MatchKind
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.runtime_api import OpType, RuntimeAPI, WriteOp, WriteResult
from repro.dataplane.table import MatchActionTable, TableEntry
from repro.dataplane.virtualization import CompiledNF, LogicalSFC, compile_sfc
from repro.errors import DataPlaneError
from repro.telemetry.spans import Tracer, maybe_span

#: Wire IDs live far above any raw tenant ID (VLAN IDs < 2^12; workload
#: tenant indices are small), so the two namespaces cannot collide.
WIRE_BASE = 1 << 20

#: The indirection table's name (resident on physical stage 0).
TENANT_MAP = "tenant_map@s0"


@dataclass
class InstalledTenant:
    """Live bookkeeping for one tenant's active rule generation."""

    tenant_id: int
    wire_id: int
    assignment: tuple[int, ...]
    compiled: tuple[CompiledNF, ...]
    map_entry: TableEntry


@dataclass
class InstallOutcome:
    """What an installer operation did: batches applied and the hitless bit
    (``False`` only when a replace degraded to break-before-make)."""

    rules_inserted: int = 0
    rules_deleted: int = 0
    hitless: bool = True


class TransactionalInstaller:
    """Owns the tenant-map indirection and applies rule generations as
    atomic two-phase batches over :class:`RuntimeAPI`."""

    def __init__(self, pipeline: SwitchPipeline) -> None:
        self.pipeline = pipeline
        self.api = RuntimeAPI(pipeline)
        self.installed: dict[int, InstalledTenant] = {}
        self._next_wire = WIRE_BASE
        #: Test/observability hook: called as ``on_batch(phase, result)``
        #: after each phase commits, with the pipeline in a consistent state.
        self.on_batch: Callable[[str, WriteResult], None] | None = None
        #: Optional tracer: each operation opens an ``install.<op>`` span
        #: whose children are the per-phase ``runtime.write`` spans (set
        #: :attr:`api` ``.tracer`` to the same tracer to get them).
        self.tracer: Tracer | None = None
        self._install_map_table()

    # ------------------------------------------------------------------
    def _install_map_table(self) -> None:
        """Create the tenant-map table and move it to the front of stage 0,
        so the wire-ID rewrite precedes every physical NF table."""
        stage = self.pipeline.stage(0)
        table = MatchActionTable(
            name=TENANT_MAP,
            key=(
                MatchField("tenant_id", MatchKind.EXACT),
                MatchField("pass_id", MatchKind.EXACT),
            ),
        )
        stage.install_table(table)
        stage.tables.insert(0, stage.tables.pop())
        # The reorder changes the pipeline's table walk after install_table
        # already bumped: bump again so a fast-path plan compiled in between
        # cannot survive with the pre-reorder step order.
        stage._bump_structure()

    def _alloc_wire(self) -> int:
        wire = self._next_wire
        self._next_wire += 1
        return wire

    def _emit(self, phase: str, result: WriteResult) -> None:
        if self.on_batch is not None:
            self.on_batch(phase, result)

    @staticmethod
    def _check(phase: str, result: WriteResult) -> None:
        if not result.ok:
            raise DataPlaneError(f"{phase}: " + "; ".join(result.errors))

    # ------------------------------------------------------------------
    def _compile_generation(
        self, sfc: LogicalSFC, assignment: tuple[int, ...], wire_id: int
    ) -> tuple[CompiledNF, ...]:
        """Compile the chain with the wire ID substituted for the tenant ID,
        so every installed rule matches the indirected namespace."""
        wired = LogicalSFC(tenant_id=wire_id, nfs=sfc.nfs)
        return compile_sfc(
            wired, assignment, self.pipeline.num_stages, self.pipeline.max_passes
        )

    @staticmethod
    def _rule_ops(op: OpType, compiled: tuple[CompiledNF, ...]) -> list[WriteOp]:
        return [
            WriteOp(op, nf.table_name, entry)
            for nf in compiled
            for entry in nf.entries
        ]

    def _map_entry(self, tenant_id: int, wire_id: int) -> TableEntry:
        if tenant_id >= WIRE_BASE:
            raise DataPlaneError(
                f"tenant id {tenant_id} collides with the wire-ID namespace "
                f"(>= {WIRE_BASE})"
            )
        return TableEntry(
            match={"tenant_id": tenant_id, "pass_id": 1},
            action="set_tenant",
            params={"wire_id": wire_id},
        )

    # ------------------------------------------------------------------
    def install(
        self, sfc: LogicalSFC, assignment: tuple[int, ...]
    ) -> InstallOutcome:
        """Admit a tenant: write its rules under a fresh wire ID (phase 1,
        inert), then attach traffic with one map-entry insert (phase 2)."""
        with maybe_span(
            self.tracer, "install.install", tenant=sfc.tenant_id
        ) as span:
            outcome = self._install(sfc, assignment)
            span.set(rules_inserted=outcome.rules_inserted)
            return outcome

    def _install(
        self, sfc: LogicalSFC, assignment: tuple[int, ...]
    ) -> InstallOutcome:
        if sfc.tenant_id in self.installed:
            raise DataPlaneError(f"tenant {sfc.tenant_id} already installed")
        wire = self._alloc_wire()
        compiled = self._compile_generation(sfc, assignment, wire)
        rules = self._rule_ops(OpType.INSERT, compiled)

        result = self.api.write(rules)
        self._check("install:rules", result)
        self._emit("install:rules", result)

        map_entry = self._map_entry(sfc.tenant_id, wire)
        attach = self.api.write([WriteOp(OpType.INSERT, TENANT_MAP, map_entry)])
        if not attach.ok:
            # Detach never happened; the rules are unreachable — remove them
            # so the failed install leaves no residue.
            self.api.write(self._rule_ops(OpType.DELETE, compiled))
            self._check("install:attach", attach)
        self._emit("install:attach", attach)

        self.installed[sfc.tenant_id] = InstalledTenant(
            tenant_id=sfc.tenant_id,
            wire_id=wire,
            assignment=tuple(assignment),
            compiled=compiled,
            map_entry=map_entry,
        )
        return InstallOutcome(rules_inserted=len(rules))

    # ------------------------------------------------------------------
    def evict(self, tenant_id: int) -> InstallOutcome:
        """Tenant departure: detach traffic first (phase 1, one map delete),
        then garbage-collect the unreachable rules (phase 2)."""
        with maybe_span(self.tracer, "install.evict", tenant=tenant_id) as span:
            outcome = self._evict(tenant_id)
            span.set(rules_deleted=outcome.rules_deleted)
            return outcome

    def _evict(self, tenant_id: int) -> InstallOutcome:
        record = self.installed.pop(tenant_id, None)
        if record is None:
            raise DataPlaneError(f"tenant {tenant_id} has no installed chain")

        detach = self.api.write(
            [WriteOp(OpType.DELETE, TENANT_MAP, record.map_entry)]
        )
        self._check("evict:detach", detach)
        self._emit("evict:detach", detach)

        rules = self._rule_ops(OpType.DELETE, record.compiled)
        result = self.api.write(rules)
        self._check("evict:rules", result)
        self._emit("evict:rules", result)
        return InstallOutcome(rules_deleted=len(rules))

    # ------------------------------------------------------------------
    def replace(
        self, sfc: LogicalSFC, assignment: tuple[int, ...]
    ) -> InstallOutcome:
        """Swap a tenant's chain for a new generation, make-before-break:
        install the new rules under a second wire ID, flip the map entry
        atomically, delete the old generation.  Falls back to
        break-before-make when the transient double occupancy does not fit
        (``hitless=False`` on the outcome)."""
        with maybe_span(
            self.tracer, "install.replace", tenant=sfc.tenant_id
        ) as span:
            outcome = self._replace(sfc, assignment)
            span.set(hitless=outcome.hitless)
            return outcome

    def _replace(
        self, sfc: LogicalSFC, assignment: tuple[int, ...]
    ) -> InstallOutcome:
        record = self.installed.get(sfc.tenant_id)
        if record is None:
            raise DataPlaneError(f"tenant {sfc.tenant_id} has no installed chain")
        wire = self._alloc_wire()
        compiled = self._compile_generation(sfc, assignment, wire)
        new_rules = self._rule_ops(OpType.INSERT, compiled)

        made = self.api.write(new_rules)
        if not made.ok:
            return self._replace_break_before_make(record, sfc, assignment)
        self._emit("replace:make", made)

        new_map = self._map_entry(sfc.tenant_id, wire)
        flip = self.api.write(
            [
                WriteOp(
                    OpType.MODIFY, TENANT_MAP, record.map_entry, replacement=new_map
                )
            ]
        )
        if not flip.ok:
            self.api.write(self._rule_ops(OpType.DELETE, compiled))
            self._check("replace:flip", flip)
        self._emit("replace:flip", flip)

        old_rules = self._rule_ops(OpType.DELETE, record.compiled)
        swept = self.api.write(old_rules)
        self._check("replace:break", swept)
        self._emit("replace:break", swept)

        self.installed[sfc.tenant_id] = InstalledTenant(
            tenant_id=sfc.tenant_id,
            wire_id=wire,
            assignment=tuple(assignment),
            compiled=compiled,
            map_entry=new_map,
        )
        return InstallOutcome(
            rules_inserted=len(new_rules), rules_deleted=len(old_rules)
        )

    def _replace_break_before_make(
        self,
        record: InstalledTenant,
        sfc: LogicalSFC,
        assignment: tuple[int, ...],
    ) -> InstallOutcome:
        """Degraded replace: tear the old generation down to make room, then
        install the new one.  Not hitless (traffic is detached in between);
        if the new generation still does not fit, the old one is restored
        and the failure propagates."""
        self.evict(sfc.tenant_id)
        try:
            outcome = self.install(sfc, assignment)
        except DataPlaneError:
            # Restore the previous generation (its resources were just
            # freed, so this cannot fail for space) and surface the error.
            restored = self.api.write(
                self._rule_ops(OpType.INSERT, record.compiled)
                + [WriteOp(OpType.INSERT, TENANT_MAP, record.map_entry)]
            )
            self._check("replace:restore", restored)
            self._emit("replace:restore", restored)
            self.installed[record.tenant_id] = record
            raise
        outcome.rules_deleted = len(
            [e for nf in record.compiled for e in nf.entries]
        )
        outcome.hitless = False
        return outcome
