"""Tenant-facing SFC control-plane service (paper §V as a subsystem).

The package glues the placement core to the functional data plane behind a
single lifecycle facade:

* :mod:`~repro.controller.controller` — :class:`SfcController`
  (admit / evict / modify, drift-bounded reconfiguration);
* :mod:`~repro.controller.admission` — pre-solver admission screens;
* :mod:`~repro.controller.install` — two-phase hitless rule installation
  over the tenant-map wire-ID indirection;
* :mod:`~repro.controller.events` — churn synthesis, trace replay, reports;
* :mod:`~repro.controller.metrics` — counters/gauges the benchmarks export.
"""

from repro.controller.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    check_admission,
)
from repro.controller.controller import (
    OpResult,
    SfcController,
    TenantRecord,
    default_rule_factory,
)
from repro.controller.events import (
    ChurnConfig,
    ChurnEngine,
    ChurnEvent,
    ChurnReport,
    EventKind,
    load_events,
    read_trace_header,
    save_events,
    synthesize_churn,
)
from repro.controller.install import (
    TENANT_MAP,
    WIRE_BASE,
    InstallOutcome,
    TransactionalInstaller,
)
from repro.controller.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "ChurnConfig",
    "ChurnEngine",
    "ChurnEvent",
    "ChurnReport",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventKind",
    "Gauge",
    "Histogram",
    "InstallOutcome",
    "MetricsRegistry",
    "OpResult",
    "SfcController",
    "TENANT_MAP",
    "TenantRecord",
    "TransactionalInstaller",
    "WIRE_BASE",
    "check_admission",
    "default_rule_factory",
    "load_events",
    "read_trace_header",
    "save_events",
    "synthesize_churn",
]
