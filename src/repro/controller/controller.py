"""The tenant-facing SFC control-plane facade (paper §V-E, as a service).

:class:`SfcController` owns the full tenant lifecycle over one switch:

1. **admit** — screen the request through admission control
   (:mod:`repro.controller.admission`), solve a placement for it against the
   live residual resources (the greedy engine's ``Try_placement``), and — when
   a data plane is attached — install the chain's rules through the
   transactional two-phase installer (:mod:`repro.controller.install`).
2. **evict** — release the chain's control-plane resources and
   garbage-collect its data-plane rules.
3. **modify** — swap a live tenant's chain for a new one, make-before-break
   on the data plane (hitless unless the transient double occupancy does not
   fit, in which case the installer degrades to break-before-make and the
   result says so).

Control-plane state and the data plane are kept transactional *together*: a
data-plane rejection rolls the control-plane resource accounting back to its
pre-event snapshot, so the two sides never diverge.

The controller maintains one strict invariant, exercised by the churn test
suite: after any event sequence, its incremental
:class:`~repro.core.state.PipelineState` is **bit-identical** (exact integer
arrays, exact float backplane) to a from-scratch recomputation over the
surviving placement.  Float-exactness holds because the controller
renormalizes the backplane sum in sorted-tenant order after every event —
the same order :meth:`PipelineState.from_placement` accumulates in.

Like the paper's incremental updater, drift from the global optimum can be
bounded: :meth:`SfcController.maybe_reconfigure` compares the live placement
against a fresh greedy solve over the surviving population — the drift gap
is the fraction of backplane bandwidth a fresh solve would reclaim — and
adopts the reference once the gap exceeds the configured threshold (an
expensive full reinstall, counted as such in the metrics).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.controller.admission import AdmissionPolicy, check_admission
from repro.controller.install import TransactionalInstaller
from repro.core.greedy import _ensure_all_types, greedy_place, sfc_metric, try_place_chain
from repro.core.placement import NFAssignment, Placement
from repro.core.spec import SFC, ProblemInstance
from repro.core.state import PipelineState
from repro.core.update import merge_churn, rule_churn_by_stage
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, physical_table_name
from repro.errors import DataPlaneError, DurabilityError
from repro.nfs.registry import get_nf, install_physical_nf
from repro.telemetry.metrics import MetricsRegistry, Timer
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.spans import Tracer, maybe_span

#: ``rule_factory(sfc, position, nf_name) -> rules`` — the concrete table
#: entries carried by one NF of a tenant's chain on the functional data
#: plane.  The *control plane* accounts ``sfc.rules[position]`` entries
#: regardless; the factory only decides what the packet-level mirror runs.
RuleFactory = Callable[[SFC, int, str], tuple[TableEntry, ...]]


def default_rule_factory(sfc: SFC, position: int, nf_name: str) -> tuple[TableEntry, ...]:
    """One catch-all permit rule per NF: enough for the functional mirror to
    observe which tables a packet traverses, without installing the full
    accounting-scale rule set."""
    return (TableEntry(match={}, action="permit", priority=-1),)


@dataclass
class TenantRecord:
    """Control-plane bookkeeping for one live tenant."""

    sfc: SFC
    stages: tuple[int, ...]

    def assignment(self, index: int) -> NFAssignment:
        """The tenant's chain assignment keyed as SFC ``index``."""
        return NFAssignment(sfc_index=index, stages=self.stages)


@dataclass
class OpResult:
    """Outcome of one controller operation (admit / evict / modify)."""

    ok: bool
    tenant_id: int
    op: str
    reason: str | None = None
    detail: str = ""
    stages: tuple[int, ...] | None = None
    #: False only when a modify degraded to break-before-make.
    hitless: bool = True
    latency_s: float = 0.0
    #: Rule-entry churn under the shared control-plane accounting
    #: (:func:`repro.core.update.rule_churn_by_stage`).
    rules_added: int = 0
    rules_deleted: int = 0


class SfcController:
    """Tenant lifecycle (admit / evict / modify) over one switch."""

    def __init__(
        self,
        instance: ProblemInstance,
        with_dataplane: bool = True,
        policy: AdmissionPolicy | None = None,
        consolidate: bool = True,
        reserve_physical_block: bool = True,
        reconfigure_threshold: float | None = None,
        rule_factory: RuleFactory | None = None,
        name: str = "switch",
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
        fastpath: bool = False,
        fastpath_backend: str = "auto",
    ) -> None:
        """``instance`` supplies the switch, catalog size and recirculation
        budget (its candidate SFCs, if any, are *not* auto-admitted).  With
        ``with_dataplane=False`` the controller runs control-plane only —
        the mode the fig. 11 experiment replays at scale.  ``name`` labels
        this controller's switch — the fabric orchestrator runs one
        controller per fabric switch and keys reports by it.

        ``tracer``/``recorder`` are the optional telemetry hooks: with a
        tracer attached every lifecycle op opens a ``controller.<op>`` span
        whose children cover admission, placement, the two-phase install and
        each ``runtime.write`` batch; a recorder additionally keeps the
        recent state transitions in its ring."""
        self.base = instance
        self.name = name
        self.policy = policy or AdmissionPolicy()
        self.consolidate = consolidate
        self.reserve_physical_block = reserve_physical_block
        self.reconfigure_threshold = reconfigure_threshold
        self.rule_factory = rule_factory or default_rule_factory
        self.state = PipelineState(
            instance,
            consolidate=consolidate,
            reserve_physical_block=reserve_physical_block,
        )
        self.tenants: dict[int, TenantRecord] = {}
        self.metrics = MetricsRegistry()
        self.tracer = tracer
        self.recorder = recorder
        #: Optional durability sink (duck-typed ``commit_op(controller, op,
        #: data)``): a :class:`~repro.durability.checkpoint.
        #: ControllerDurability` for a standalone controller, or the fabric
        #: coordinator's per-switch :class:`~repro.durability.checkpoint.
        #: ShardWalLogger`.  Set by ``attach()``; every *successful* lifecycle
        #: op is journaled through it after it commits.
        self.durability = None
        self.with_dataplane = with_dataplane
        self.pipeline: SwitchPipeline | None = None
        self.installer: TransactionalInstaller | None = None
        self.fastpath = None
        if with_dataplane:
            self.pipeline = SwitchPipeline(
                instance.switch,
                max_passes=instance.max_recirculations + 1,
                name=name,
            )
            self.installer = TransactionalInstaller(self.pipeline)
            # Cascade the tracer down the install path so one admit yields
            # one causally linked tree: controller -> install -> runtime.write.
            self.installer.tracer = tracer
            self.installer.api.tracer = tracer
            if fastpath:
                # Compiled dataplane fast path: batches execute per-tenant
                # compiled plans; the installer's RuntimeAPI writes feed the
                # engine's precise invalidation layer automatically.
                from repro.fastpath import FastPathEngine

                self.fastpath = FastPathEngine.attach(
                    self.pipeline, backend=fastpath_backend
                )

    # ------------------------------------------------------------------
    @classmethod
    def for_instance(
        cls, instance: ProblemInstance, with_dataplane: bool = True, **kwargs
    ) -> "SfcController":
        """Build a controller sized for ``instance`` (convenience alias of
        the constructor, kept for call-site readability)."""
        return cls(instance, with_dataplane=with_dataplane, **kwargs)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def population_instance(self) -> ProblemInstance:
        """The live tenants as a problem instance (sorted by tenant ID) —
        what a from-scratch reference solve sees."""
        ordered = sorted(self.tenants)
        return self.base.with_sfcs([self.tenants[t].sfc for t in ordered])

    @property
    def placement(self) -> Placement:
        """The live placement over :attr:`population_instance`.

        Assignments are keyed (and inserted) in sorted-tenant order, so
        :meth:`PipelineState.from_placement` over this placement accumulates
        the backplane float sum in exactly the controller's renormalization
        order — the bit-identity the churn invariant test asserts.
        """
        ordered = sorted(self.tenants)
        assignments = {
            idx: self.tenants[t].assignment(idx) for idx, t in enumerate(ordered)
        }
        return Placement(
            instance=self.population_instance,
            physical=self.state.physical.copy(),
            assignments=assignments,
            consolidate=self.consolidate,
            algorithm="controller",
        )

    def metrics_snapshot(self) -> dict:
        """Current metrics as one plain dict (see :mod:`.metrics`)."""
        return self.metrics.snapshot()

    def can_host(self, sfc: SFC) -> bool:
        """Non-mutating feasibility probe: would :meth:`admit` accept this
        chain right now?  Runs the admission screen and a trial placement,
        then rolls the trial back — no tenant state, metrics, or data-plane
        rules change.  The fabric's stitch planner uses this to screen
        segment/switch candidates before committing any shard."""
        if sfc.tenant_id in self.tenants:
            return False
        if not check_admission(sfc, self.state, self.policy, len(self.tenants)):
            return False
        snap = self.state.snapshot()
        stages = try_place_chain(self.state, sfc, self.base.virtual_stages)
        if stages is None:
            return False
        self.state.restore(snap)
        return True

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _renormalize_backplane(self) -> None:
        """Recompute the backplane float sum in sorted-tenant order — the
        exact accumulation order (and arithmetic) of
        :meth:`PipelineState.from_placement`, so incremental state stays
        bit-identical to a from-scratch recomputation."""
        S = self.base.switch.stages
        total = 0.0
        for idx, t in enumerate(sorted(self.tenants)):
            record = self.tenants[t]
            total += record.assignment(idx).passes(S) * record.sfc.bandwidth_gbps
        self.state.backplane_gbps = total

    def _refresh_gauges(self) -> None:
        self.metrics.gauge("tenants").set(len(self.tenants))
        self.metrics.gauge("backplane_gbps").set(self.state.backplane_gbps)
        self.metrics.gauge("objective").set(
            sum(rec.sfc.weight for rec in self.tenants.values())
        )

    def _reject(
        self, tenant_id: int, op: str, reason: str, detail: str, timer: Timer
    ) -> OpResult:
        self.metrics.inc("rejected")
        self.metrics.inc(f"rejected.{reason}")
        return OpResult(
            ok=False,
            tenant_id=tenant_id,
            op=op,
            reason=reason,
            detail=detail,
            latency_s=timer.elapsed_s,
        )

    def _record_op(self, result: OpResult) -> None:
        """Log one lifecycle outcome as a flight-recorder state transition."""
        if self.recorder is not None:
            self.recorder.record_state(
                f"controller.{result.op}",
                switch=self.name,
                tenant=result.tenant_id,
                ok=result.ok,
                reason=result.reason,
            )

    def _commit_durable(self, op: str, result: OpResult, data: dict) -> None:
        """Journal one *successful* lifecycle op to the attached durability
        sink.  The record carries everything replay needs to re-drive the op
        (the chain, the tenant) plus the post-op state digest, which gives
        recovery a per-LSN oracle to verify bit-identical reconstruction
        against.  Failed ops are not journaled — they did not change state."""
        if self.durability is None or not result.ok:
            return
        payload = dict(data)
        payload["tenant_id"] = result.tenant_id
        if result.stages is not None:
            payload["stages"] = list(result.stages)
        payload["digest"] = self.state.digest()
        self.durability.commit_op(self, op, payload)

    def _logical(self, sfc: SFC) -> LogicalSFC:
        """Lower a control-plane SFC to the data plane's logical form, with
        concrete rules from the controller's rule factory."""
        nfs = []
        for j, type_id in enumerate(sfc.nf_types):
            name = get_nf(type_id).name
            nfs.append(LogicalNF(nf_name=name, rules=self.rule_factory(sfc, j, name)))
        return LogicalSFC(tenant_id=sfc.tenant_id, nfs=tuple(nfs))

    def _ensure_physical(self, prev_physical, created: list[tuple[int, str]]) -> None:
        """Install on the data plane any physical NF the control plane just
        added (``state.physical`` vs. the pre-event snapshot), recording the
        creations so a failed event can undo exactly them."""
        assert self.pipeline is not None
        for i in range(self.base.num_types):
            for s in range(self.base.switch.stages):
                if not self.state.physical[i, s] or prev_physical[i, s]:
                    continue
                name = physical_table_name(get_nf(i + 1).name, s)
                stage = self.pipeline.stage(s)
                try:
                    stage.table(name)
                    continue  # already present (e.g. left over by a reconfig)
                except DataPlaneError:
                    pass
                install_physical_nf(self.pipeline, i + 1, s)
                created.append((s, name))

    def _undo_physical(self, created: list[tuple[int, str]]) -> None:
        assert self.pipeline is not None
        for s, name in reversed(created):
            self.pipeline.stage(s).remove_table(name)

    def _sweep_stale_tables(self, keep_physical) -> None:
        """Remove data-plane physical tables that the adopted layout no
        longer uses *and* that hold no rules, returning their SRAM blocks.
        Only meaningful during reconfiguration — the paper's "reboot"
        moment; in steady state physical NFs are static."""
        assert self.pipeline is not None
        for i in range(self.base.num_types):
            nf_name = get_nf(i + 1).name
            for s in range(self.base.switch.stages):
                if keep_physical[i, s]:
                    continue
                name = physical_table_name(nf_name, s)
                stage = self.pipeline.stage(s)
                try:
                    table = stage.table(name)
                except DataPlaneError:
                    continue
                if table.num_entries == 0:
                    stage.remove_table(name)

    # ------------------------------------------------------------------
    # Lifecycle operations
    # ------------------------------------------------------------------
    def admit(self, sfc: SFC) -> OpResult:
        """Admit one tenant chain: admission screen, placement against the
        residual resources, then the two-phase data-plane install.  Any
        data-plane rejection rolls the control plane back to its pre-event
        snapshot."""
        with maybe_span(
            self.tracer, "controller.admit", switch=self.name, tenant=sfc.tenant_id
        ) as span, self.metrics.timer("op_latency_s.admit") as timer:
            result = self._admit(sfc, timer)
            span.set(ok=result.ok, reason=result.reason)
        self._record_op(result)
        self._commit_durable("admit", result, {"sfc": sfc.to_dict()})
        return result

    def _admit(self, sfc: SFC, timer: Timer) -> OpResult:
        tenant_id = sfc.tenant_id
        if tenant_id in self.tenants:
            return self._reject(
                tenant_id, "admit", "duplicate-tenant",
                f"tenant {tenant_id} already has a live chain", timer,
            )
        with maybe_span(self.tracer, "controller.admission", tenant=tenant_id) as sp:
            decision = check_admission(sfc, self.state, self.policy, len(self.tenants))
            sp.set(ok=bool(decision))
        if not decision:
            return self._reject(
                tenant_id, "admit", decision.reason, decision.detail, timer
            )

        snap = self.state.snapshot()
        with maybe_span(self.tracer, "controller.placement", tenant=tenant_id) as sp:
            stages = try_place_chain(self.state, sfc, self.base.virtual_stages)
            sp.set(placed=stages is not None)
        if stages is None:
            return self._reject(
                tenant_id, "admit", "no-feasible-placement",
                "admission passed but no placement fits the residual resources",
                timer,
            )

        if self.with_dataplane:
            assert self.installer is not None
            created: list[tuple[int, str]] = []
            try:
                self._ensure_physical(snap.physical, created)
                self.installer.install(self._logical(sfc), stages)
            except DataPlaneError as exc:
                self._undo_physical(created)
                self.state.restore(snap)
                self.metrics.inc("installs_rolled_back")
                return self._reject(
                    tenant_id, "admit", "dataplane-rejected", str(exc), timer
                )

        self.tenants[tenant_id] = TenantRecord(sfc=sfc, stages=stages)
        self._renormalize_backplane()
        added = sum(
            rule_churn_by_stage(sfc, stages, self.base.switch.stages).values()
        )
        self.metrics.inc("admitted")
        self.metrics.inc("rules_inserted", added)
        self._refresh_gauges()
        return OpResult(
            ok=True,
            tenant_id=tenant_id,
            op="admit",
            stages=stages,
            rules_added=added,
            latency_s=timer.elapsed_s,
        )

    # ------------------------------------------------------------------
    def evict(self, tenant_id: int) -> OpResult:
        """Tenant departure: release control-plane resources, then detach
        and garbage-collect the data-plane rules (two-phase)."""
        with maybe_span(
            self.tracer, "controller.evict", switch=self.name, tenant=tenant_id
        ) as span, self.metrics.timer("op_latency_s.evict") as timer:
            result = self._evict(tenant_id, timer)
            span.set(ok=result.ok, reason=result.reason)
        self._record_op(result)
        self._commit_durable("evict", result, {})
        return result

    def _evict(self, tenant_id: int, timer: Timer) -> OpResult:
        record = self.tenants.pop(tenant_id, None)
        if record is None:
            return self._reject(
                tenant_id, "evict", "unknown-tenant",
                f"tenant {tenant_id} has no live chain", timer,
            )
        S = self.base.switch.stages
        for j, k in enumerate(record.stages):
            self.state.remove_logical_nf(
                record.sfc.nf_types[j] - 1, (k - 1) % S, record.sfc.rules[j]
            )
        self._renormalize_backplane()
        if self.with_dataplane:
            assert self.installer is not None
            self.installer.evict(tenant_id)
        deleted = sum(rule_churn_by_stage(record.sfc, record.stages, S).values())
        self.metrics.inc("evicted")
        self.metrics.inc("rules_deleted", deleted)
        self._refresh_gauges()
        return OpResult(
            ok=True,
            tenant_id=tenant_id,
            op="evict",
            rules_deleted=deleted,
            latency_s=timer.elapsed_s,
        )

    # ------------------------------------------------------------------
    def modify(self, tenant_id: int, new_chain: SFC) -> OpResult:
        """Swap a live tenant's chain for ``new_chain`` (same tenant ID).

        Control plane: the old chain's resources are released, the new chain
        is screened and placed against the residual; any failure restores
        the pre-event snapshot and the old chain stays live.  Data plane:
        make-before-break via :meth:`TransactionalInstaller.replace`
        (``hitless=False`` on the result when it had to degrade)."""
        with maybe_span(
            self.tracer, "controller.modify", switch=self.name, tenant=tenant_id
        ) as span, self.metrics.timer("op_latency_s.modify") as timer:
            result = self._modify(tenant_id, new_chain, timer)
            span.set(ok=result.ok, reason=result.reason, hitless=result.hitless)
        self._record_op(result)
        self._commit_durable("modify", result, {"sfc": new_chain.to_dict()})
        return result

    def _modify(self, tenant_id: int, new_chain: SFC, timer: Timer) -> OpResult:
        record = self.tenants.get(tenant_id)
        if record is None:
            return self._reject(
                tenant_id, "modify", "unknown-tenant",
                f"tenant {tenant_id} has no live chain", timer,
            )
        new_sfc = replace(new_chain, tenant_id=tenant_id)
        snap = self.state.snapshot()
        S = self.base.switch.stages
        for j, k in enumerate(record.stages):
            self.state.remove_logical_nf(
                record.sfc.nf_types[j] - 1, (k - 1) % S, record.sfc.rules[j]
            )
        old_passes = -(-record.stages[-1] // S)
        self.state.release_backplane(old_passes * record.sfc.bandwidth_gbps)

        with maybe_span(self.tracer, "controller.admission", tenant=tenant_id) as sp:
            decision = check_admission(
                new_sfc, self.state, self.policy, len(self.tenants) - 1
            )
            sp.set(ok=bool(decision))
        if not decision:
            self.state.restore(snap)
            return self._reject(
                tenant_id, "modify", decision.reason, decision.detail, timer
            )
        with maybe_span(self.tracer, "controller.placement", tenant=tenant_id) as sp:
            stages = try_place_chain(self.state, new_sfc, self.base.virtual_stages)
            sp.set(placed=stages is not None)
        if stages is None:
            self.state.restore(snap)
            return self._reject(
                tenant_id, "modify", "no-feasible-placement",
                "new chain does not fit the residual resources", timer,
            )

        hitless = True
        if self.with_dataplane:
            assert self.installer is not None
            created: list[tuple[int, str]] = []
            try:
                self._ensure_physical(snap.physical, created)
                outcome = self.installer.replace(self._logical(new_sfc), stages)
                hitless = outcome.hitless
            except DataPlaneError as exc:
                self._undo_physical(created)
                self.state.restore(snap)
                self.metrics.inc("installs_rolled_back")
                return self._reject(
                    tenant_id, "modify", "dataplane-rejected", str(exc), timer
                )

        self.tenants[tenant_id] = TenantRecord(sfc=new_sfc, stages=stages)
        self._renormalize_backplane()
        added = sum(rule_churn_by_stage(new_sfc, stages, S).values())
        deleted = sum(rule_churn_by_stage(record.sfc, record.stages, S).values())
        self.metrics.inc("modified")
        self.metrics.inc("rules_inserted", added)
        self.metrics.inc("rules_deleted", deleted)
        if not hitless:
            self.metrics.inc("updates_break_before_make")
        self._refresh_gauges()
        return OpResult(
            ok=True,
            tenant_id=tenant_id,
            op="modify",
            stages=stages,
            hitless=hitless,
            rules_added=added,
            rules_deleted=deleted,
            latency_s=timer.elapsed_s,
        )

    # ------------------------------------------------------------------
    # Batch conveniences
    # ------------------------------------------------------------------
    def admit_many(self, sfcs: Iterable[SFC]) -> list[OpResult]:
        """Admit a batch best-Equation-(13)-metric first — the same order as
        the greedy solver, so a batch admit over an empty controller matches
        :func:`~repro.core.greedy.greedy_place` chain for chain."""
        ordered = sorted(
            sfcs,
            key=lambda sfc: (-sfc_metric(sfc), -sfc.bandwidth_gbps, sfc.tenant_id),
        )
        return [self.admit(sfc) for sfc in ordered]

    def install_catalog(self) -> None:
        """Install any catalog NF type still absent from the pipeline
        (constraint (4)), mirroring the greedy solver's post-placement step,
        and mirror the new physical tables onto the data plane."""
        prev = self.state.physical.copy()
        _ensure_all_types(self.state)
        if self.with_dataplane:
            created: list[tuple[int, str]] = []
            self._ensure_physical(prev, created)
        if self.durability is not None:
            self.durability.commit_op(
                self, "catalog", {"digest": self.state.digest()}
            )

    # ------------------------------------------------------------------
    # Checkpoint restore
    # ------------------------------------------------------------------
    def restore_tenant(self, sfc: SFC, stages: tuple[int, ...]) -> None:
        """Re-install a tenant at its *recorded* stages — the checkpoint
        restore path.  Admission and placement are bypassed on purpose: a
        tenant's historical stages depend on the full arrival/departure
        history, so re-placing survivors would not reproduce them.  The
        restore is not journaled (it reconstructs already-journaled state).
        """
        if sfc.tenant_id in self.tenants:
            raise DurabilityError(
                f"tenant {sfc.tenant_id} already live; restore_tenant is a "
                f"fresh-state operation"
            )
        stages = tuple(int(k) for k in stages)
        if len(stages) != sfc.length:
            raise DurabilityError(
                f"tenant {sfc.tenant_id}: {sfc.length} NFs but "
                f"{len(stages)} recorded stages"
            )
        prev_physical = self.state.physical.copy()
        S = self.base.switch.stages
        for j, k in enumerate(stages):
            self.state.add_logical_nf(
                sfc.nf_types[j] - 1, (k - 1) % S, sfc.rules[j]
            )
        if self.with_dataplane:
            assert self.installer is not None
            created: list[tuple[int, str]] = []
            self._ensure_physical(prev_physical, created)
            self.installer.install(self._logical(sfc), stages)
        self.tenants[sfc.tenant_id] = TenantRecord(sfc=sfc, stages=stages)
        self._renormalize_backplane()
        self._refresh_gauges()

    # ------------------------------------------------------------------
    # Drift-bounded reconfiguration
    # ------------------------------------------------------------------
    def maybe_reconfigure(self) -> bool:
        """Adopt a fresh reference placement when incremental churn has
        fragmented the pipeline badly enough.

        Every live tenant is placed, so (unlike the candidate-pool updater
        of §V-E) the objective cannot drift — what drifts is the *cost* of
        hosting the same tenants: chains folded onto late virtual stages
        burn extra recirculation passes.  The drift gap is therefore the
        fraction of backplane bandwidth a from-scratch greedy solve over the
        surviving population would reclaim; past the configured threshold
        the controller adopts the reference wholesale (data plane:
        make-before-break replace per tenant — extensive rule churn, counted
        as such).  A reference that fails to place every live tenant is
        never adopted.  Adoption doubles as the paper's "reboot" moment on
        the data plane: physical tables the new layout abandons are swept
        once empty (occupied ones cannot be reclaimed without dropping a
        tenant and stay installed).
        """
        if self.reconfigure_threshold is None or not self.tenants:
            return False
        population = self.population_instance
        reference = greedy_place(
            population,
            consolidate=self.consolidate,
            reserve_physical_block=self.reserve_physical_block,
            require_all_types=False,
        )
        if len(reference.assignments) < len(self.tenants):
            return False  # never drop a live tenant to chase efficiency
        current = self.state.backplane_gbps
        if current <= 0:
            return False
        gap = 1.0 - reference.backplane_gbps / current
        if gap <= self.reconfigure_threshold:
            return False

        ordered = sorted(self.tenants)
        added: dict[int, int] = {}
        deleted: dict[int, int] = {}
        S = self.base.switch.stages
        survivors: dict[int, TenantRecord] = {}
        for idx, t in enumerate(ordered):
            record = self.tenants[t]
            merge_churn(deleted, rule_churn_by_stage(record.sfc, record.stages, S))
            asg = reference.assignments[idx]
            merge_churn(added, rule_churn_by_stage(record.sfc, asg.stages, S))
            survivors[t] = TenantRecord(sfc=record.sfc, stages=asg.stages)

        if self.with_dataplane:
            assert self.installer is not None
            created: list[tuple[int, str]] = []
            prev = self.state.physical.copy()
            # Reconfiguration is the "reboot" moment: sweep empty tables the
            # new layout abandons so their blocks are available, then mirror
            # the new layout and re-place every survivor make-before-break.
            self._sweep_stale_tables(reference.physical)
            # Adopt the reference layout before mirroring, so _ensure_physical
            # sees the new (type, stage) pairs.
            self.state.physical = reference.physical.copy()
            self._ensure_physical(prev, created)
            for t, record in survivors.items():
                self.installer.replace(self._logical(record.sfc), record.stages)
            self._sweep_stale_tables(reference.physical)

        self.tenants = survivors
        self.state = PipelineState.from_placement(
            reference, reserve_physical_block=self.reserve_physical_block
        )
        self._renormalize_backplane()
        self.metrics.inc("reconfigurations")
        self.metrics.inc("rules_inserted", sum(added.values()))
        self.metrics.inc("rules_deleted", sum(deleted.values()))
        self._refresh_gauges()
        if self.durability is not None:
            self.durability.commit_op(
                self, "reconfigure", {"digest": self.state.digest()}
            )
        return True
