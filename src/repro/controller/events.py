"""Event-driven tenant churn: synthesis, trace replay, and reporting.

The churn engine drives an :class:`~repro.controller.controller.SfcController`
with a timestamped stream of tenant lifecycle events — arrivals (Poisson at a
configurable rate, chains drawn from the §VI-A workload generator),
departures (exponential lifetimes), and in-place chain modifications (a
fraction of tenants re-negotiate mid-lifetime).  Streams can be synthesized
from a seed (:func:`synthesize_churn`) or saved to / replayed from a JSONL
trace (:func:`save_events` / :func:`load_events`), and every replay produces
a :class:`ChurnReport` with per-event latencies and rule-churn totals — the
numbers ``benchmarks/bench_controller_churn.py`` serializes.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.controller.controller import OpResult, SfcController
from repro.core.spec import SFC
from repro.errors import WorkloadError
from repro.rng import make_rng
from repro.traffic.workload import WorkloadConfig, make_sfcs


class EventKind(str, enum.Enum):
    """Tenant lifecycle event types."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"
    MODIFY = "modify"


@dataclass(frozen=True)
class ChurnEvent:
    """One timestamped lifecycle event.

    ``sfc`` carries the requested chain for arrivals and modifications and
    is ``None`` for departures.  ``seq`` breaks timestamp ties so replay
    order is total and deterministic.
    """

    time_s: float
    seq: int
    kind: EventKind
    tenant_id: int
    sfc: SFC | None = None

    def to_dict(self) -> dict:
        """JSON-serializable form (one JSONL trace record)."""
        record = {
            "time_s": self.time_s,
            "seq": self.seq,
            "kind": self.kind.value,
            "tenant_id": self.tenant_id,
        }
        if self.sfc is not None:
            record["sfc"] = self.sfc.to_dict()
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ChurnEvent":
        """Inverse of :meth:`to_dict`."""
        sfc = SFC.from_dict(record["sfc"]) if "sfc" in record else None
        return cls(
            time_s=float(record["time_s"]),
            seq=int(record["seq"]),
            kind=EventKind(record["kind"]),
            tenant_id=int(record["tenant_id"]),
            sfc=sfc,
        )


@dataclass(frozen=True)
class ChurnConfig:
    """Knobs of the churn synthesizer.

    Arrivals are Poisson (``arrival_rate_per_s``) over ``duration_s``;
    lifetimes are exponential (``mean_lifetime_s``), and a tenant whose
    lifetime extends past the horizon simply survives the stream.  A
    ``modify_fraction`` of tenants issue one chain modification uniformly
    within their lifetime.  Chains come from the §VI-A workload generator.
    """

    duration_s: float = 10.0
    arrival_rate_per_s: float = 5.0
    mean_lifetime_s: float = 4.0
    modify_fraction: float = 0.2
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.arrival_rate_per_s <= 0:
            raise WorkloadError("duration and arrival rate must be positive")
        if self.mean_lifetime_s <= 0:
            raise WorkloadError("mean lifetime must be positive")
        if not 0.0 <= self.modify_fraction <= 1.0:
            raise WorkloadError("modify_fraction must be in [0, 1]")


def synthesize_churn(
    config: ChurnConfig, rng: int | np.random.Generator | None = None
) -> list[ChurnEvent]:
    """Draw a deterministic churn stream from ``config`` and a seed.

    Tenant IDs are the arrival indices (0, 1, ...), so every tenant in the
    stream is unique; events are sorted by ``(time_s, seq)``.
    """
    rng = make_rng(rng)
    arrival_times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / config.arrival_rate_per_s))
        if t >= config.duration_s:
            break
        arrival_times.append(t)
    n = len(arrival_times)
    chains = make_sfcs(config.workload.with_num_sfcs(n), rng)
    lifetimes = rng.exponential(config.mean_lifetime_s, size=n)
    modify_mask = rng.random(size=n) < config.modify_fraction
    modify_frac_of_life = rng.random(size=n)
    mod_chains = make_sfcs(config.workload.with_num_sfcs(int(modify_mask.sum())), rng)

    events: list[ChurnEvent] = []
    seq = 0
    mod_idx = 0
    for tenant, at in enumerate(arrival_times):
        sfc = replace(chains[tenant], tenant_id=tenant, name=f"tenant-{tenant}")
        events.append(
            ChurnEvent(time_s=at, seq=seq, kind=EventKind.ARRIVAL, tenant_id=tenant, sfc=sfc)
        )
        seq += 1
        lifetime = float(lifetimes[tenant])
        if modify_mask[tenant]:
            new_chain = replace(
                mod_chains[mod_idx], tenant_id=tenant, name=f"tenant-{tenant}-v2"
            )
            mod_idx += 1
            modifies_at = at + lifetime * float(modify_frac_of_life[tenant])
            if modifies_at < config.duration_s:  # else it falls past the horizon
                events.append(
                    ChurnEvent(
                        time_s=modifies_at,
                        seq=seq,
                        kind=EventKind.MODIFY,
                        tenant_id=tenant,
                        sfc=new_chain,
                    )
                )
                seq += 1
        departs = at + lifetime
        if departs < config.duration_s:
            events.append(
                ChurnEvent(
                    time_s=departs, seq=seq, kind=EventKind.DEPARTURE, tenant_id=tenant
                )
            )
            seq += 1
    events.sort(key=lambda e: (e.time_s, e.seq))
    return events


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
#: Format version written into trace header records.
TRACE_VERSION = 1


def save_events(
    path: str | Path,
    events: Iterable[ChurnEvent],
    seed: int | None = None,
    config: ChurnConfig | None = None,
) -> None:
    """Write a churn stream as one JSON object per line, preceded by a
    header record carrying the provenance a replay needs — the synthesis
    RNG seed, the churn knobs, and the event count — so a trace file alone
    suffices to reproduce (or re-synthesize and cross-check) the run."""
    events = list(events)
    header: dict = {
        "header": True,
        "version": TRACE_VERSION,
        "num_events": len(events),
    }
    if seed is not None:
        header["seed"] = int(seed)
    if config is not None:
        header["config"] = dataclasses.asdict(config)
    with Path(path).open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_dict()) + "\n")


def read_trace_header(path: str | Path) -> dict | None:
    """The header record of a trace file, or ``None`` for a headerless
    (pre-header-format) trace."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            return record if record.get("header") else None
    return None


def load_events(path: str | Path) -> list[ChurnEvent]:
    """Read a churn stream saved by :func:`save_events` (the header record,
    when present, is skipped — :func:`read_trace_header` returns it)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("header"):
                continue
            events.append(ChurnEvent.from_dict(record))
    return events


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class ChurnReport:
    """What a replay did: every (event, outcome) pair plus wall time."""

    results: list[tuple[ChurnEvent, OpResult]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @classmethod
    def merged(cls, reports: Iterable["ChurnReport"]) -> "ChurnReport":
        """One combined report over several replays: results concatenated
        in order, wall times summed.  The campaign runner uses this to
        aggregate per-phase reports into one campaign-wide view while
        keeping the PR-3 convention intact (zero successful admits across
        *all* phases still yields explicit ``None`` percentiles)."""
        out = cls()
        for report in reports:
            out.results.extend(report.results)
            out.wall_seconds += report.wall_seconds
        return out

    @property
    def num_events(self) -> int:
        """Events replayed."""
        return len(self.results)

    @property
    def events_per_sec(self) -> float:
        """Replay throughput (events handled per wall-clock second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_events / self.wall_seconds

    def _admit_latencies(self) -> list[float]:
        return [
            r.latency_s for _e, r in self.results if r.op == "admit" and r.ok
        ]

    def admit_latency_percentile(self, q: float) -> float | None:
        """The ``q``-th percentile of successful-admit latency (seconds);
        ``None`` when no admit succeeded — never NaN, so summaries stay
        JSON-clean on all-rejected replays (e.g. a drained fabric)."""
        latencies = self._admit_latencies()
        if not latencies:
            return None
        return float(np.percentile(np.asarray(latencies), q))

    def summary(self) -> dict[str, float | None]:
        """The flat numbers the benchmark serializes: event counts by
        outcome, throughput, admit-latency percentiles and rule churn.
        Latency percentiles are explicit ``None`` (JSON ``null``) when the
        replay had zero successful admits."""
        admitted = sum(1 for _e, r in self.results if r.op == "admit" and r.ok)
        evicted = sum(1 for _e, r in self.results if r.op == "evict" and r.ok)
        modified = sum(1 for _e, r in self.results if r.op == "modify" and r.ok)
        rejected = sum(1 for _e, r in self.results if not r.ok)
        p50 = self.admit_latency_percentile(50)
        p99 = self.admit_latency_percentile(99)
        return {
            "events": float(self.num_events),
            "admitted": float(admitted),
            "evicted": float(evicted),
            "modified": float(modified),
            "rejected": float(rejected),
            "events_per_sec": self.events_per_sec,
            "admit_p50_ms": None if p50 is None else p50 * 1e3,
            "admit_p99_ms": None if p99 is None else p99 * 1e3,
            "rules_added": float(sum(r.rules_added for _e, r in self.results)),
            "rules_deleted": float(sum(r.rules_deleted for _e, r in self.results)),
        }

    def describe(self) -> str:
        """Human-readable one-paragraph summary (the CLI's output)."""
        s = self.summary()
        if s["admit_p50_ms"] is None:
            latency = "admit latency n/a (no successful admits)"
        else:
            latency = (
                f"admit latency p50={s['admit_p50_ms']:.3f}ms "
                f"p99={s['admit_p99_ms']:.3f}ms"
            )
        return (
            f"{int(s['events'])} events in {self.wall_seconds:.2f}s "
            f"({s['events_per_sec']:.0f} events/s): "
            f"{int(s['admitted'])} admitted, {int(s['modified'])} modified, "
            f"{int(s['evicted'])} evicted, {int(s['rejected'])} rejected; "
            f"{latency}; "
            f"rules +{int(s['rules_added'])}/-{int(s['rules_deleted'])}"
        )


class ChurnEngine:
    """Applies a churn stream to a controller, one event at a time."""

    def __init__(self, controller: SfcController) -> None:
        self.controller = controller

    def apply(self, event: ChurnEvent) -> OpResult:
        """Dispatch one event to the controller."""
        if event.kind is EventKind.ARRIVAL:
            if event.sfc is None:
                raise WorkloadError(f"arrival event at t={event.time_s} has no SFC")
            return self.controller.admit(event.sfc)
        if event.kind is EventKind.DEPARTURE:
            return self.controller.evict(event.tenant_id)
        if event.sfc is None:
            raise WorkloadError(f"modify event at t={event.time_s} has no SFC")
        return self.controller.modify(event.tenant_id, event.sfc)

    def replay(self, events: Iterable[ChurnEvent]) -> ChurnReport:
        """Apply every event in order and collect the report."""
        report = ChurnReport()
        with self.controller.metrics.timer("replay_wall_s") as timer:
            for event in events:
                report.results.append((event, self.apply(event)))
        report.wall_seconds = timer.elapsed_s
        return report
