"""Admission control: cheap necessary-condition checks run *before* the
placement solver.

The controller screens every tenant request against the live
:class:`~repro.core.state.PipelineState` so that obviously infeasible chains
are rejected in O(S) without burning a solver attempt: chains longer than
the unrolled pipeline, NF types outside the provider catalog, aggregate
backplane demand beyond Equation (12)'s capacity, and rule totals beyond the
residual SRAM.  Passing admission does **not** guarantee a placement exists
(the checks are necessary, not sufficient — fragmentation can still defeat
the solver); failing it guarantees one does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import SFC
from repro.core.state import PipelineState

#: Reason codes an :class:`AdmissionDecision` (or the controller itself) can
#: carry; the metrics layer mirrors them as ``rejected.<reason>`` counters.
REASONS = (
    "duplicate-tenant",
    "capacity-tenants",
    "chain-too-long",
    "unknown-nf-type",
    "memory-exhausted",
    "backplane-exhausted",
    "no-feasible-placement",
    "dataplane-rejected",
)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the admission screen.

    ``max_tenants`` caps concurrently admitted tenants (``None`` = unlimited);
    the boolean flags allow switching individual checks off for experiments
    that want the solver to see every candidate (e.g. the fig. 11 replay,
    which reproduces the original greedy admission exactly).
    """

    max_tenants: int | None = None
    check_memory: bool = True
    check_backplane: bool = True


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of the admission screen: admitted or a coded rejection."""

    admitted: bool
    reason: str | None = None
    detail: str = ""

    def __bool__(self) -> bool:
        return self.admitted


ADMIT = AdmissionDecision(admitted=True)


def check_admission(
    sfc: SFC,
    state: PipelineState,
    policy: AdmissionPolicy | None = None,
    live_tenants: int = 0,
) -> AdmissionDecision:
    """Screen one SFC request against the live resource state.

    Checks, in order: tenant-count cap, chain-order feasibility (J <= K),
    catalog membership of every NF type, backplane budget (Eq. 12 with the
    chain's minimum pass count), and residual stage memory (total rules vs.
    free blocks plus the slack in already part-filled blocks of the chain's
    own types).  Returns the first failure, or an admitted decision.
    """
    policy = policy or AdmissionPolicy()
    instance = state.instance
    switch = state.switch

    if policy.max_tenants is not None and live_tenants >= policy.max_tenants:
        return AdmissionDecision(
            admitted=False,
            reason="capacity-tenants",
            detail=f"{live_tenants} live tenants >= cap {policy.max_tenants}",
        )

    K = instance.virtual_stages
    if sfc.length > K:
        return AdmissionDecision(
            admitted=False,
            reason="chain-too-long",
            detail=f"chain length {sfc.length} > K={K} virtual stages",
        )

    bad = [t for t in sfc.nf_types if not 1 <= t <= instance.num_types]
    if bad:
        return AdmissionDecision(
            admitted=False,
            reason="unknown-nf-type",
            detail=f"type ids {bad} outside catalog [1, {instance.num_types}]",
        )

    if policy.check_backplane:
        # A chain of J NFs needs at least ceil(J / S) passes, each carrying
        # the tenant's full bandwidth across the backplane (Eq. 12 LHS).
        min_passes = -(-sfc.length // switch.stages)
        demand = min_passes * sfc.bandwidth_gbps
        residual = switch.capacity_gbps - state.backplane_gbps
        if demand > residual + 1e-9:
            return AdmissionDecision(
                admitted=False,
                reason="backplane-exhausted",
                detail=(
                    f"needs >= {demand:.1f} Gbps backplane "
                    f"({min_passes} passes x {sfc.bandwidth_gbps:.1f} Gbps), "
                    f"residual {residual:.1f} Gbps"
                ),
            )

    if policy.check_memory:
        # Optimistic capacity: whole free blocks everywhere, plus the slack
        # left in part-filled blocks already charged to this chain's own NF
        # types (consolidated accounting lets same-type rules share blocks).
        epb = switch.entries_per_block
        capacity = sum(state.free_blocks(s) for s in range(switch.stages)) * epb
        if state.consolidate:
            for i in set(t - 1 for t in sfc.nf_types):
                for s in range(switch.stages):
                    used = int(state.entries[i, s])
                    if used > 0 and used % epb:
                        capacity += epb - used % epb
        if sfc.total_rules > capacity:
            return AdmissionDecision(
                admitted=False,
                reason="memory-exhausted",
                detail=(
                    f"chain needs {sfc.total_rules} rule entries, at most "
                    f"{capacity} available across all stages"
                ),
            )

    return ADMIT
