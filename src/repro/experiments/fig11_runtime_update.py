"""Fig. 11 — Runtime update: throughput after re-filling dropped SFCs.

Setup per the paper: 8 stages, 2 recirculations, chain length ~5, 10 types,
20 allocated SFCs out of 50 candidates.  Allocate, drop a fraction of the
allocated chains (the drop rate), then re-fill from the remaining
candidates.  The paper observes post-update throughput stays essentially
saturated, increasing very slightly with the drop rate (more freed
resources -> more re-combination freedom): 394.0 Gbps at drop 0.1 to 399.8
at drop 1.0.

The sweep drives the tenant-facing :class:`~repro.controller.SfcController`
(control-plane only) rather than the raw solver: the initial allocation is a
batch admit (which orders by the Eq. 13 metric, matching the greedy solver
chain for chain), drops are evictions, and the re-fill is a second batch
admit over the full candidate pool — live tenants are auto-rejected as
duplicates.  The controller's per-operation rule churn is surfaced as two
extra columns.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.controller import SfcController
from repro.core.verify import check_placement
from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.traffic.workload import make_instance

DROP_RATES = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
NUM_ALLOCATED = 20
NUM_CANDIDATES = 50
MAX_RECIRCULATIONS = 2


def run(
    drop_rates=DROP_RATES,
    trials: int = 1,
    seed: int | None = None,
) -> ExperimentResult:
    """Regenerate Fig. 11's runtime-update sweep."""
    config = replace(PAPER_WORKLOAD, num_sfcs=NUM_CANDIDATES)
    result = ExperimentResult(
        name="fig11",
        description="throughput after runtime update vs drop rate "
        "(20 allocated / 50 candidates)",
        columns=[
            "drop_rate",
            "origin_gbps",
            "updated_gbps",
            "dropped",
            "admitted",
            "rules_added",
            "rules_deleted",
        ],
    )
    for rate in drop_rates:
        def trial(rng):
            instance = make_instance(
                config,
                switch=PAPER_SWITCH,
                max_recirculations=MAX_RECIRCULATIONS,
                rng=rng,
            )
            controller = SfcController.for_instance(instance, with_dataplane=False)
            # Initial allocation from the first 20 candidates only, so the
            # other 30 arrive later (the paper allocates 20 then refills
            # from the 50-candidate pool).
            controller.admit_many(instance.sfcs[:NUM_ALLOCATED])
            controller.install_catalog()
            origin_gbps = controller.placement.objective

            # Tenant insertion order is batch-admit (metric) order — the
            # same population the solver-based sweep sampled drops from.
            allocated = list(controller.tenants)
            k = max(1, int(round(rate * len(allocated))))
            drop = rng.choice(np.array(allocated), size=k, replace=False)
            churn = [controller.evict(int(t)) for t in drop]
            # Re-fill from the full candidate pool; survivors are rejected
            # as duplicate tenants, so only freed capacity is contested.
            churn += controller.admit_many(instance.sfcs)

            updated = controller.placement
            assert check_placement(updated, require_all_types=False) == []
            admitted = sum(1 for r in churn if r.ok and r.op == "admit")
            return {
                # Objective throughput (Eq. 1), as in Figs. 6/7/10.
                "origin_gbps": origin_gbps,
                "updated_gbps": updated.objective,
                "dropped": float(k),
                "admitted": float(admitted),
                "rules_added": float(sum(r.rules_added for r in churn)),
                "rules_deleted": float(sum(r.rules_deleted for r in churn)),
            }

        mean = mean_over_trials(run_trials(trial, trials, seed))
        result.add_row(drop_rate=rate, **mean)
    result.notes.append(
        "paper: post-update throughput near-saturated, slightly increasing "
        "with drop rate (394.0 at 0.1 -> 399.8 at 1.0 Gbps)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
