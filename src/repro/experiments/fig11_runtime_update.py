"""Fig. 11 — Runtime update: throughput after re-filling dropped SFCs.

Setup per the paper: 8 stages, 2 recirculations, chain length ~5, 10 types,
20 allocated SFCs out of 50 candidates.  Allocate, drop a fraction of the
allocated chains (the drop rate), then let the runtime updater re-fill from
the remaining candidates.  The paper observes post-update throughput stays
essentially saturated, increasing very slightly with the drop rate (more
freed resources -> more re-combination freedom): 394.0 Gbps at drop 0.1 to
399.8 at drop 1.0.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.greedy import greedy_place
from repro.core.update import RuntimeUpdater
from repro.core.verify import check_placement
from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.traffic.workload import make_instance

DROP_RATES = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
NUM_ALLOCATED = 20
NUM_CANDIDATES = 50
MAX_RECIRCULATIONS = 2


def run(
    drop_rates=DROP_RATES,
    trials: int = 1,
    seed: int | None = None,
) -> ExperimentResult:
    """Regenerate Fig. 11's runtime-update sweep."""
    config = replace(PAPER_WORKLOAD, num_sfcs=NUM_CANDIDATES)
    result = ExperimentResult(
        name="fig11",
        description="throughput after runtime update vs drop rate "
        "(20 allocated / 50 candidates)",
        columns=[
            "drop_rate",
            "origin_gbps",
            "updated_gbps",
            "dropped",
            "admitted",
        ],
    )
    for rate in drop_rates:
        def trial(rng):
            instance = make_instance(
                config,
                switch=PAPER_SWITCH,
                max_recirculations=MAX_RECIRCULATIONS,
                rng=rng,
            )
            # Initial allocation from the first 20 candidates only, so the
            # other 30 arrive later (the paper allocates 20 then refills
            # from the 50-candidate pool).
            initial_pool = set(range(NUM_ALLOCATED))
            skip = set(range(instance.num_sfcs)) - initial_pool
            origin = greedy_place(instance, skip=skip)
            updater = RuntimeUpdater(origin)

            allocated = list(origin.assignments)
            k = max(1, int(round(rate * len(allocated))))
            drop = list(rng.choice(np.array(allocated), size=k, replace=False))
            updater.remove(int(l) for l in drop)
            update = updater.admit()  # full candidate pool now admissible
            updated = updater.placement
            assert check_placement(updated) == []
            return {
                # Objective throughput (Eq. 1), as in Figs. 6/7/10.
                "origin_gbps": origin.objective,
                "updated_gbps": updated.objective,
                "dropped": float(k),
                "admitted": float(len(update.added)),
            }

        mean = mean_over_trials(run_trials(trial, trials, seed))
        result.add_row(drop_rate=rate, **mean)
    result.notes.append(
        "paper: post-update throughput near-saturated, slightly increasing "
        "with drop rate (394.0 at 0.1 -> 399.8 at 1.0 Gbps)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
