"""Fig. 5 — Processing latency: SFP vs DPDK, plus SFP-Recir.

Three series over packet size: SFP (4-NF chain, one pass, ≈341 ns), DPDK
(≈1151 ns), and SFP-Recir (same 4 NFs applied one per pass over 4 passes —
3 recirculations — costing only ≈35 ns extra, the paper's point that latency
follows SFC complexity, not recirculation count).

The recirculation series is validated functionally: the chain really is
installed one-NF-per-pass and a probe packet really makes 4 passes.
"""

from __future__ import annotations

from repro.baseline.dpdk import DpdkChainModel
from repro.core.spec import SwitchSpec
from repro.dataplane.latency import AsicModel
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.experiments.config import OFFERED_GBPS, PACKET_SIZES
from repro.experiments.fig4_throughput import CHAIN
from repro.experiments.harness import ExperimentResult
from repro.nfs import get_nf, install_physical_nf
from repro.rng import make_rng
from repro.traffic.flows import FlowGenerator


def recirculating_passes(seed: int | None = None) -> int:
    """Install the 4-NF chain one NF per pass on a single-stage-per-NF
    layout that forces 3 recirculations, then measure a probe packet's
    passes through the functional pipeline."""
    rng = make_rng(seed)
    # One stage, all four NFs stacked on it: each chain NF lands on a new
    # pass (virtual stages 1, 2, 3, 4 over a 1-stage pipeline).
    spec = SwitchSpec(stages=1, blocks_per_stage=20)
    pipeline = SwitchPipeline(spec=spec, max_passes=4)
    nfs = []
    for name in CHAIN:
        install_physical_nf(pipeline, name, 0)
        nf_def = get_nf(name)
        # Real rules plus a tenant-wide wildcard (as a provider's catch-all
        # policy rule) so the probe deterministically traverses every NF —
        # the REC argument rides on matched rules (§IV).
        rules = list(nf_def.generate_rules(rng, 16))
        rules.append(TableEntry(match={}, action="permit", priority=-1))
        nfs.append(LogicalNF(nf_name=name, rules=tuple(rules)))
    virtualizer = SFCVirtualizer(pipeline)
    virtualizer.install_sfc(LogicalSFC(tenant_id=1, nfs=tuple(nfs)))
    flow = FlowGenerator(seed).flows(1, tenant_id=1)[0]
    result = pipeline.process(flow.make_packet(64), trace=True)
    return result.passes


def run(
    offered_gbps: float = OFFERED_GBPS,
    packet_sizes=PACKET_SIZES,
    seed: int | None = None,
) -> ExperimentResult:
    """Regenerate Fig. 5's three latency series."""
    # The paper's 341 ns covers the full ingress pipeline transit (all 8
    # physical stages), independent of how many host the chain's NFs.
    asic = AsicModel()
    dpdk = DpdkChainModel(chain_length=len(CHAIN))
    result = ExperimentResult(
        name="fig5",
        description="processing latency (ns): SFP, SFP-Recir (3 recircs), DPDK",
        columns=["packet_bytes", "sfp_ns", "sfp_recir_ns", "dpdk_ns"],
    )
    passes = recirculating_passes(seed)
    for size in packet_sizes:
        result.add_row(
            packet_bytes=size,
            sfp_ns=asic.latency_ns(passes=1),
            sfp_recir_ns=asic.latency_ns(passes=passes),
            # Per-packet processing latency (the paper reports processing
            # time, not queueing delay under overload).
            dpdk_ns=dpdk.latency_ns(0.0, size),
        )
    avg_sfp = sum(r["sfp_ns"] for r in result.rows) / len(result.rows)
    avg_dpdk = sum(r["dpdk_ns"] for r in result.rows) / len(result.rows)
    result.notes.append(
        f"averages: SFP {avg_sfp:.0f} ns, DPDK {avg_dpdk:.0f} ns "
        f"(paper: 341 vs 1151); SFP-Recir overhead "
        f"{result.rows[0]['sfp_recir_ns'] - result.rows[0]['sfp_ns']:.1f} ns "
        f"over {passes - 1} recirculations (paper: 35 ns)"
    )
    result.notes.append(
        f"functional check: probe packet made {passes} pipeline passes "
        "with the chain folded one NF per pass"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
