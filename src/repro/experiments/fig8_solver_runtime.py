"""Fig. 8 — Execution time of SFP-IP vs SFP-Appro. varying the number of SFCs.

8 stages, recirculation budget 2, average chain length 5.  The paper's
finding: the exact IP's runtime grows super-exponentially with L while the
LP-relaxation rounding stays polynomial (≈70 s at 50 SFCs on their machine).

``ilp_time_limit`` caps each IP solve so the sweep terminates on any
hardware; a hit limit is reported in the ``ilp_hit_limit`` column (runtime
then lower-bounds the paper's exact solve).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.ilp import solve_ilp
from repro.core.rounding import solve_with_rounding
from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.traffic.workload import make_instance

L_VALUES = (10, 20, 30, 40, 50)
MAX_RECIRCULATIONS = 2


def run(
    l_values=L_VALUES,
    trials: int = 1,
    seed: int | None = None,
    backend: str = "scipy",
    ilp_time_limit: float | None = 300.0,
) -> ExperimentResult:
    """Regenerate Fig. 8's solver-runtime comparison."""
    result = ExperimentResult(
        name="fig8",
        description="solver runtime (s) vs number of SFCs: SFP-IP vs SFP-Appro.",
        columns=[
            "num_sfcs",
            "ilp_seconds",
            "appro_seconds",
            "ilp_objective",
            "appro_objective",
            "ilp_hit_limit",
        ],
    )
    for L in l_values:
        config = replace(PAPER_WORKLOAD, num_sfcs=L)

        def trial(rng):
            instance = make_instance(
                config,
                switch=PAPER_SWITCH,
                max_recirculations=MAX_RECIRCULATIONS,
                rng=rng,
            )
            t0 = time.perf_counter()
            ilp = solve_ilp(instance, backend=backend, time_limit=ilp_time_limit)
            ilp_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            appro = solve_with_rounding(instance, rng=rng, backend=backend)
            appro_seconds = time.perf_counter() - t0
            hit = (
                1.0
                if ilp_time_limit is not None and ilp_seconds >= ilp_time_limit * 0.98
                else 0.0
            )
            return {
                "ilp_seconds": ilp_seconds,
                "appro_seconds": appro_seconds,
                "ilp_objective": ilp.objective,
                "appro_objective": appro.placement.objective,
                "ilp_hit_limit": hit,
            }

        mean = mean_over_trials(run_trials(trial, trials, seed))
        result.add_row(num_sfcs=L, **mean)
    result.notes.append(
        "paper: IP runtime super-exponential in L; Appro polynomial "
        "(~70 s at 50 SFCs)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
