"""Paper-default experiment parameters (§VI-A/§VI-C).

Every figure runner builds on these constants; ``quick`` variants shrink the
sweeps so benchmarks and CI complete in seconds while preserving each
figure's qualitative shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spec import SwitchSpec
from repro.traffic.workload import WorkloadConfig

#: §VI-C: "8 stages and 20 memory blocks (each for an NF) in each stage, and
#: each block has 1000 entries of rules ... backplane speed 400 Gbps".
PAPER_SWITCH = SwitchSpec(
    stages=8,
    blocks_per_stage=20,
    block_bits=64_000,
    rule_bits=64,
    capacity_gbps=400.0,
)

#: §VI-A: 10 NF types, rules uniform in [100, 2100], long-tail bandwidth;
#: §VI-C default average chain length 5.
PAPER_WORKLOAD = WorkloadConfig(
    num_sfcs=25,
    num_types=10,
    avg_chain_length=5,
    chain_length_spread=2,
    rules_min=100,
    rules_max=2100,
)

#: The paper synthesizes five datasets per experiment.
PAPER_TRIALS = 5

#: Fig. 4/5 packet-size sweep.
PACKET_SIZES = (64, 128, 256, 512, 1024, 1500)

#: Offered load: the 100 Gbps sender.
OFFERED_GBPS = 100.0


@dataclass(frozen=True)
class SweepScale:
    """How hard a figure sweep pushes (paper vs quick)."""

    trials: int
    ilp_time_limit: float | None

    @classmethod
    def paper(cls) -> "SweepScale":
        return cls(trials=PAPER_TRIALS, ilp_time_limit=None)

    @classmethod
    def quick(cls) -> "SweepScale":
        return cls(trials=1, ilp_time_limit=20.0)
