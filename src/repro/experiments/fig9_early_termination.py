"""Fig. 9 — Early-terminating the IP solver under runtime limits.

25 SFCs.  The solver is given wall-clock limits (the paper uses 5..60 s);
at the tightest limit no incumbent exists yet ("performance is 0"), a little
more time yields a near-optimal incumbent, and by ~30 s the objective reaches
the optimum — making early termination a viable alternative to LP rounding.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.ilp import solve_ilp
from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.traffic.workload import make_instance

TIME_LIMITS = (5.0, 10.0, 20.0, 30.0, 60.0)
NUM_SFCS = 25
MAX_RECIRCULATIONS = 2


def run(
    time_limits=TIME_LIMITS,
    num_sfcs: int = NUM_SFCS,
    trials: int = 1,
    seed: int | None = None,
    backend: str = "scipy",
) -> ExperimentResult:
    """Regenerate Fig. 9's early-termination staircase."""
    config = replace(PAPER_WORKLOAD, num_sfcs=num_sfcs)
    result = ExperimentResult(
        name="fig9",
        description="IP incumbent quality vs runtime limit (early termination)",
        columns=[
            "time_limit_s",
            "throughput_gbps",
            "block_utilization",
            "entry_utilization",
            "placed",
        ],
    )
    for limit in time_limits:
        def trial(rng):
            instance = make_instance(
                config,
                switch=PAPER_SWITCH,
                max_recirculations=MAX_RECIRCULATIONS,
                rng=rng,
            )
            placement = solve_ilp(instance, backend=backend, time_limit=limit)
            return {
                # Objective throughput (Eq. 1), as in Figs. 6/7/10.
                "throughput_gbps": placement.objective,
                "block_utilization": placement.block_utilization,
                "entry_utilization": placement.entry_utilization,
                "placed": float(placement.num_placed),
            }

        mean = mean_over_trials(run_trials(trial, trials, seed))
        result.add_row(time_limit_s=limit, **mean)
    result.notes.append(
        "paper: 0 at the 5 s limit, near-optimal at 10 s, optimal by 30 s"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
