"""Fig. 7 — Impact of recirculation times (virtual pipeline 8..56 stages).

15 candidate SFCs (few, to isolate the recirculation effect), each 8 NFs
long over 10 types, on the 8-stage switch.  The paper finds one recirculation
lifts throughput (length-8 chains in arbitrary type order rarely fit one
pass) but further recirculations do not help; block utilization is similar
across variants while SFP's entry utilization stays higher.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.rounding import solve_with_rounding
from repro.experiments.config import PAPER_SWITCH, PAPER_TRIALS, PAPER_WORKLOAD
from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.traffic.workload import make_instance

RECIRCULATIONS = (0, 1, 2, 3, 4, 5, 6)
NUM_SFCS = 15
CHAIN_LENGTH = 8


def run(
    recirculations=RECIRCULATIONS,
    trials: int = PAPER_TRIALS,
    seed: int | None = None,
    backend: str = "scipy",
) -> ExperimentResult:
    """Regenerate Fig. 7's sweep over the recirculation budget."""
    config = replace(
        PAPER_WORKLOAD,
        num_sfcs=NUM_SFCS,
        avg_chain_length=CHAIN_LENGTH,
        chain_length_spread=0,
    )
    result = ExperimentResult(
        name="fig7",
        description="throughput + utilization vs recirculation budget "
        "(virtual stages 8..56)",
        columns=[
            "recirculations",
            "virtual_stages",
            "sfp_gbps",
            "base_gbps",
            "sfp_blocks",
            "base_blocks",
            "sfp_entry_util",
            "base_entry_util",
        ],
    )
    for r in recirculations:
        def trial(rng):
            instance = make_instance(
                config, switch=PAPER_SWITCH, max_recirculations=r, rng=rng
            )
            # Pin the budget to exactly r (the sweep point), not 0..r, and
            # pair the variants on an identical rounding stream.
            rounding_seed = int(rng.integers(2**31))
            sfp = solve_with_rounding(
                instance,
                consolidate=True,
                rng=rounding_seed,
                backend=backend,
                recirculation_budgets=[r],
            ).placement
            base = solve_with_rounding(
                instance,
                consolidate=False,
                rng=rounding_seed,
                backend=backend,
                recirculation_budgets=[r],
            ).placement
            return {
                # Objective throughput (Eq. 1); see EXPERIMENTS.md.
                "sfp_gbps": sfp.objective,
                "base_gbps": base.objective,
                "sfp_blocks": sfp.block_utilization,
                "base_blocks": base.block_utilization,
                "sfp_entry_util": sfp.entry_utilization,
                "base_entry_util": base.entry_utilization,
            }

        mean = mean_over_trials(run_trials(trial, trials, seed))
        result.add_row(
            recirculations=r,
            virtual_stages=PAPER_SWITCH.stages * (r + 1),
            **mean,
        )
    result.notes.append(
        "paper: one recirculation helps (138.3/133.6 -> 142.0/137.6 Gbps), "
        "more does not; block utilization similar, SFP entry util higher"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
