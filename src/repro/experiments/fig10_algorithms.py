"""Fig. 10 — Objective throughput of SFP-IP vs SFP-Appro. vs Greedy.

8 stages, 2 recirculations, 10 NF types, average chain length 5, L swept up
to 60.  The paper's shape: the IP nearly saturates the 400 Gbps backplane by
~50 SFCs; Appro tracks it a few percent below and the greedy heuristic sits
lowest (398 vs 377 vs 367 Gbps at 60 SFCs).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.greedy import greedy_place
from repro.core.ilp import solve_ilp
from repro.core.rounding import solve_with_rounding
from repro.experiments.config import PAPER_SWITCH, PAPER_WORKLOAD
from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.traffic.workload import make_instance

L_VALUES = (10, 20, 30, 40, 50, 60)
MAX_RECIRCULATIONS = 2


def run(
    l_values=L_VALUES,
    trials: int = 1,
    seed: int | None = None,
    backend: str = "scipy",
    ilp_time_limit: float | None = 300.0,
    include_ilp: bool = True,
) -> ExperimentResult:
    """Regenerate Fig. 10's three-algorithm comparison."""
    columns = [
        "num_sfcs",
        "appro_gbps",
        "greedy_gbps",
        "appro_backplane",
        "greedy_backplane",
    ]
    if include_ilp:
        columns[1:1] = ["ilp_gbps"]
        columns.append("ilp_backplane")
    result = ExperimentResult(
        name="fig10",
        description="objective throughput: SFP-IP vs SFP-Appro. vs greedy, "
        "varying L",
        columns=columns,
    )
    for L in l_values:
        config = replace(PAPER_WORKLOAD, num_sfcs=L)

        def trial(rng):
            instance = make_instance(
                config,
                switch=PAPER_SWITCH,
                max_recirculations=MAX_RECIRCULATIONS,
                rng=rng,
            )
            appro = solve_with_rounding(instance, rng=rng, backend=backend).placement
            greedy = greedy_place(instance)
            row = {
                # Objective throughput (the figure's own axis label).
                "appro_gbps": appro.objective,
                "greedy_gbps": greedy.objective,
                "appro_backplane": appro.backplane_gbps,
                "greedy_backplane": greedy.backplane_gbps,
            }
            if include_ilp:
                ilp = solve_ilp(instance, backend=backend, time_limit=ilp_time_limit)
                row["ilp_gbps"] = ilp.objective
                row["ilp_backplane"] = ilp.backplane_gbps
            return row

        mean = mean_over_trials(run_trials(trial, trials, seed))
        result.add_row(num_sfcs=L, **mean)
    result.notes.append(
        "paper at L=60: 398 (IP) vs 377 (Appro) vs 367 (greedy) Gbps; IP "
        "saturates capacity by ~50 SFCs"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
