"""Fig. 6 — Throughput and resource utilization vs the number of SFC
candidates L (10..50), SFP vs SFP-without-consolidation.

Paper observations to reproduce: blocks saturate near the 20/stage bound by
L≈15 for both variants; throughput grows with L (more candidates to pick
from); SFP's consolidated memory accounting yields slightly higher throughput
and clearly higher entry utilization than the no-consolidation baseline,
whose per-NF ceil leaves internal fragmentation.

Settings: 10 NF types, average chain length 5, max recirculation 3, five
datasets averaged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.rounding import solve_with_rounding
from repro.experiments.config import PAPER_SWITCH, PAPER_TRIALS, PAPER_WORKLOAD
from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.traffic.workload import make_instance

#: Fig. 6 sweeps L in 10..50; "maximum recirculation time" is 3.
L_VALUES = (10, 20, 30, 40, 50)
MAX_RECIRCULATIONS = 3


def run(
    l_values=L_VALUES,
    trials: int = PAPER_TRIALS,
    seed: int | None = None,
    backend: str = "scipy",
) -> ExperimentResult:
    """Regenerate Fig. 6's sweep over the number of SFC candidates."""
    result = ExperimentResult(
        name="fig6",
        description="objective throughput + block/entry utilization vs "
        "number of SFCs (SFP vs no-consolidation)",
        columns=[
            "num_sfcs",
            "sfp_gbps",
            "base_gbps",
            "sfp_blocks",
            "base_blocks",
            "sfp_entry_util",
            "base_entry_util",
            "sfp_backplane",
            "base_backplane",
        ],
    )
    for L in l_values:
        config = replace(PAPER_WORKLOAD, num_sfcs=L)

        def trial(rng):
            instance = make_instance(
                config,
                switch=PAPER_SWITCH,
                max_recirculations=MAX_RECIRCULATIONS,
                rng=rng,
            )
            # Pair the variants on an identical rounding stream so the
            # comparison isolates the memory-accounting difference.
            rounding_seed = int(rng.integers(2**31))
            sfp = solve_with_rounding(
                instance, consolidate=True, rng=rounding_seed, backend=backend
            ).placement
            base = solve_with_rounding(
                instance, consolidate=False, rng=rounding_seed, backend=backend
            ).placement
            return {
                # "Throughput" is the objective (Eq. 1) all algorithms
                # maximize — see EXPERIMENTS.md on metric choice.
                "sfp_gbps": sfp.objective,
                "base_gbps": base.objective,
                "sfp_blocks": sfp.block_utilization,
                "base_blocks": base.block_utilization,
                "sfp_entry_util": sfp.entry_utilization,
                "base_entry_util": base.entry_utilization,
                "sfp_backplane": sfp.backplane_gbps,
                "base_backplane": base.backplane_gbps,
            }

        mean = mean_over_trials(run_trials(trial, trials, seed))
        result.add_row(num_sfcs=L, **mean)
    result.notes.append(
        "paper: blocks ~20/stage by L=15; SFP slightly above baseline in "
        "throughput (247.1 vs 227.0 Gbps at L=30) and clearly above in "
        "entry utilization"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
