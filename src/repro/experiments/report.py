"""EXPERIMENTS.md generation: run every figure, record paper-vs-measured.

``generate_report`` executes all eight figure runners (quick or paper scale)
and renders a markdown report with, per figure: the paper's claims, our
measured table, and a pass/fail shape check mirroring the benchmark
assertions.  The repository's EXPERIMENTS.md is produced by::

    python -m repro.experiments.report [--paper-scale] [-o EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import datetime
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.experiments import (
    fig4_throughput,
    fig5_latency,
    fig6_num_sfcs,
    fig7_recirculation,
    fig8_solver_runtime,
    fig9_early_termination,
    fig10_algorithms,
    fig11_runtime_update,
)
from repro.experiments.harness import ExperimentResult


@dataclass
class FigureReport:
    figure: str
    paper_claim: str
    result: ExperimentResult
    checks: list[tuple[str, bool]]

    @property
    def ok(self) -> bool:
        return all(passed for _, passed in self.checks)


def _markdown_table(result: ExperimentResult) -> str:
    def fmt(v):
        return f"{v:.2f}" if isinstance(v, float) else str(v)

    head = "| " + " | ".join(result.columns) + " |"
    sep = "|" + "|".join("---" for _ in result.columns) + "|"
    rows = [
        "| " + " | ".join(fmt(row[c]) for c in result.columns) + " |"
        for row in result.rows
    ]
    return "\n".join([head, sep, *rows])


def _fig4(seed, quick) -> FigureReport:
    r = fig4_throughput.run(seed=seed)
    sfp = r.column("sfp_gbps")
    dpdk = r.column("dpdk_gbps")
    checks = [
        ("SFP saturates 100 Gbps at every packet size", all(abs(v - 100) < 1e-6 for v in sfp)),
        (">=10x speedup at 64 B (paper: 'at least 10 times')", r.rows[0]["speedup"] >= 10),
        ("DPDK reaches line rate only at 1500 B", dpdk[-1] == 100 and all(v < 100 for v in dpdk[:-1])),
    ]
    return FigureReport(
        "Fig. 4",
        "SFP saturates the 100 Gbps sender at all packet sizes; DPDK is "
        "pps-bound, >=10x slower at 64 B, line-rate only at 1500 B.",
        r,
        checks,
    )


def _fig5(seed, quick) -> FigureReport:
    r = fig5_latency.run(seed=seed)
    row = r.rows[0]
    overhead = row["sfp_recir_ns"] - row["sfp_ns"]
    checks = [
        ("SFP ~341 ns (paper: 341 ns)", abs(row["sfp_ns"] - 341) < 25),
        ("DPDK ~1151 ns (paper: 1151 ns)", abs(row["dpdk_ns"] - 1151) < 120),
        ("3 recirculations cost ~35 ns (paper: 35 ns)", 20 <= overhead <= 60),
    ]
    return FigureReport(
        "Fig. 5",
        "Processing latency: SFP 341 ns vs DPDK 1151 ns; three "
        "recirculations add only ~35 ns.",
        r,
        checks,
    )


def _fig6(seed, quick) -> FigureReport:
    r = fig6_num_sfcs.run(
        l_values=(10, 20, 30) if quick else (10, 20, 30, 40, 50),
        trials=1 if quick else 5,
        seed=seed,
    )
    sfp = np.array(r.column("sfp_gbps"))
    base = np.array(r.column("base_gbps"))
    eu_gap = np.array(r.column("sfp_entry_util")) - np.array(r.column("base_entry_util"))
    checks = [
        ("throughput grows with L", sfp[-1] > sfp[0]),
        ("SFP >= baseline on average", sfp.mean() >= base.mean() - 1e-6),
        ("SFP entry utilization clearly higher", (eu_gap > 0).all()),
        ("blocks approach the 20/stage bound", r.rows[-1]["sfp_blocks"] > 15),
    ]
    return FigureReport(
        "Fig. 6",
        "Blocks saturate near 20/stage by L~15; throughput grows with L; "
        "SFP slightly above the no-consolidation baseline in throughput and "
        "clearly above in entry utilization (247.1 vs 227.0 Gbps at L=30).",
        r,
        checks,
    )


def _fig7(seed, quick) -> FigureReport:
    r = fig7_recirculation.run(
        recirculations=(0, 1, 2, 3) if quick else (0, 1, 2, 3, 4, 5, 6),
        trials=2 if quick else 5,
        seed=seed,
    )
    sfp = np.array(r.column("sfp_gbps"))
    first_gain = sfp[1] - sfp[0]
    later = np.diff(sfp[1:])
    checks = [
        ("one recirculation does not hurt (paper: helps)", sfp[1] >= sfp[0]),
        ("further recirculations plateau", (later <= max(first_gain, 0.05 * sfp[1]) + 1e-6).all()),
        (
            "SFP entry util above baseline",
            np.mean(r.column("sfp_entry_util")) > np.mean(r.column("base_entry_util")),
        ),
    ]
    return FigureReport(
        "Fig. 7",
        "One recirculation lifts throughput (138.3 -> 142.0 Gbps); more do "
        "not; block utilization similar across variants, SFP entry "
        "utilization higher.",
        r,
        checks,
    )


def _fig8(seed, quick) -> FigureReport:
    r = fig8_solver_runtime.run(
        l_values=(10, 20, 30) if quick else (10, 20, 30, 40, 50),
        ilp_time_limit=120.0 if quick else 300.0,
        seed=seed,
    )
    ilp = np.array(r.column("ilp_seconds"))
    appro = np.array(r.column("appro_seconds"))
    hit = np.array(r.column("ilp_hit_limit"))
    checks = [
        ("exact IP slower than Appro at the largest L", ilp[-1] > appro[-1] or hit[-1] > 0),
        (
            "Appro objective within 30% of IP",
            (np.array(r.column("appro_objective")) >= 0.7 * np.array(r.column("ilp_objective")) - 1e-6).all(),
        ),
    ]
    return FigureReport(
        "Fig. 8",
        "SFP-IP runtime grows super-exponentially with L; SFP-Appro. stays "
        "polynomial (~70 s at 50 SFCs on the paper's machine).",
        r,
        checks,
    )


def _fig9(seed, quick) -> FigureReport:
    r = fig9_early_termination.run(
        time_limits=(0.05, 2.0, 30.0) if quick else (5.0, 10.0, 20.0, 30.0, 60.0),
        num_sfcs=12 if quick else 25,
        seed=seed,
    )
    objective = np.array(r.column("throughput_gbps"))
    checks = [
        (
            "objective non-decreasing in the time limit",
            all(a <= b + 1e-3 * max(1.0, b) for a, b in zip(objective, objective[1:])),
        ),
        ("loosest limit reaches a positive optimum", objective[-1] > 0),
    ]
    return FigureReport(
        "Fig. 9",
        "Early-terminated IP: nothing at the 5 s limit, near-optimal by "
        "10 s, optimal by 30 s.",
        r,
        checks,
    )


def _fig10(seed, quick) -> FigureReport:
    r = fig10_algorithms.run(
        # Mid-scale even under "quick": the IP/Appro/greedy separation only
        # emerges once memory+capacity bind (L >= ~25).
        l_values=(10, 25, 40) if quick else (10, 20, 30, 40, 50, 60),
        ilp_time_limit=120.0 if quick else 300.0,
        seed=seed,
    )
    ilp = np.array(r.column("ilp_gbps"))
    appro = np.array(r.column("appro_gbps"))
    greedy = np.array(r.column("greedy_gbps"))
    # A time-limited ILP may terminate with no incumbent (objective 0 —
    # Fig. 9's tight-limit behaviour); the dominance check only applies
    # where an incumbent exists.
    has_incumbent = ilp > 0
    checks = [
        (
            "IP >= Appro pointwise where IP found an incumbent (2% slack)",
            has_incumbent.any()
            and (appro[has_incumbent] <= ilp[has_incumbent] * 1.02 + 1e-6).all(),
        ),
        ("Appro >= greedy on average", appro.mean() >= greedy.mean() - 1e-6),
        ("curves grow with L", appro[-1] >= appro[0] and greedy[-1] >= greedy[0]),
    ]
    if (~has_incumbent).any():
        missing = [int(n) for n, ok in zip(r.column("num_sfcs"), has_incumbent) if not ok]
        r.notes.append(
            f"ilp_gbps = 0 at L in {missing}: the HiGHS substitute found no "
            "incumbent within the per-solve time limit (the paper's Fig. 9 "
            "tight-limit behaviour; its Gurobi baseline has stronger primal "
            "heuristics) — dominance is checked on the rows with incumbents"
        )
    return FigureReport(
        "Fig. 10",
        "Objective throughput IP > Appro > greedy (398 vs 377 vs 367 Gbps "
        "at 60 SFCs); IP saturates the switch by ~50 SFCs.",
        r,
        checks,
    )


def _fig11(seed, quick) -> FigureReport:
    r = fig11_runtime_update.run(
        drop_rates=(0.2, 0.6, 1.0) if quick else (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        trials=2 if quick else 3,
        seed=seed,
    )
    origin = np.array(r.column("origin_gbps"))
    updated = np.array(r.column("updated_gbps"))
    checks = [
        ("re-fill never loses throughput", (updated >= origin - 1e-6).all()),
        ("roughly non-decreasing in drop rate", updated[-1] >= updated[0] * 0.95),
        ("new chains admitted at every rate", (np.array(r.column("admitted")) > 0).all()),
    ]
    return FigureReport(
        "Fig. 11",
        "Post-update throughput stays near saturation and increases "
        "slightly with the drop rate (394.0 at 0.1 -> 399.8 Gbps at 1.0).",
        r,
        checks,
    )


FIGURES: list[Callable] = [_fig4, _fig5, _fig6, _fig7, _fig8, _fig9, _fig10, _fig11]


def generate_report(quick: bool = True, seed: int = 11, today: str | None = None) -> str:
    """Run every figure and render the markdown report."""
    reports = [fn(seed, quick) for fn in FIGURES]
    scale = "quick" if quick else "paper"
    if today is None:
        today = datetime.date.today().isoformat()
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Generated by `python -m repro.experiments.report` ({scale} scale, "
        f"seed {seed}, {today}).",
        "",
        "Absolute numbers are not expected to match the paper's Tofino/Xeon "
        "testbed — the substrate here is a calibrated simulator (see "
        "DESIGN.md §2).  What must match, and is checked below, is each "
        "figure's *shape*: who wins, by roughly what factor, and where "
        "behaviour changes.",
        "",
        "**Metric note.** The placement figures (6/7/9/10/11) report "
        "\"objective throughput\" — Equation (1), the offloaded traffic "
        "weighted by chain length, which is the quantity all three "
        "algorithms maximize and the label Fig. 10 itself uses.  Backplane "
        "occupancy (Eq. 12's left side) is included as a diagnostic column "
        "where relevant; it rewards wasted recirculation passes, so it is "
        "not used for algorithm comparison.",
        "",
    ]
    for report in reports:
        verdict = "PASS" if report.ok else "CHECK FAILED"
        lines += [
            f"## {report.figure} — {verdict}",
            "",
            f"**Paper:** {report.paper_claim}",
            "",
            f"**Measured** ({report.result.description}):",
            "",
            _markdown_table(report.result),
            "",
        ]
        for note in report.result.notes:
            lines.append(f"*{note}*")
            lines.append("")
        lines.append("Shape checks:")
        for name, passed in report.checks:
            lines.append(f"- [{'x' if passed else ' '}] {name}")
        lines.append("")
    failed = [r.figure for r in reports if not r.ok]
    lines.append(
        "All shape checks passed." if not failed else f"FAILED: {failed}"
    )
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:  # pragma: no cover - exercised via CLI
    """CLI entry point for report generation."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("-o", "--output", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    text = generate_report(quick=not args.paper_scale, seed=args.seed)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
