"""Fig. 4 — Throughput comparison: SFP (switch) vs software SFC (DPDK).

The paper sends 100 Gbps of fixed-size packets (64-1500 B) through a 4-NF
chain (firewall, traffic classifier, load balancer, router) deployed (a) on
the Tofino via SFP and (b) on a server with DPDK.  SFP saturates the sender
at every size; DPDK is pps-bound and only reaches line rate at 1500 B, with
>=10x gap at 64 B.

This runner additionally pushes a real packet batch through the functional
pipeline (the installed 4-NF chain) to confirm the chain processes traffic
end to end, then reports the calibrated throughput series.
"""

from __future__ import annotations

from repro import units
from repro.baseline.dpdk import DpdkChainModel
from repro.core.spec import SwitchSpec
from repro.dataplane.latency import AsicModel
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.experiments.config import OFFERED_GBPS, PACKET_SIZES
from repro.experiments.harness import ExperimentResult
from repro.nfs import get_nf, install_physical_nf
from repro.rng import make_rng
from repro.traffic.flows import FlowGenerator

#: The §VI-B chain.
CHAIN = ("firewall", "traffic_classifier", "load_balancer", "router")


def build_demo_pipeline(seed: int | None = None) -> tuple[SwitchPipeline, SFCVirtualizer]:
    """A 4-stage pipeline with the Fig. 4 chain installed for tenant 1."""
    rng = make_rng(seed)
    spec = SwitchSpec(stages=4, blocks_per_stage=20)
    pipeline = SwitchPipeline(spec=spec, max_passes=4)
    nfs = []
    for stage, name in enumerate(CHAIN):
        install_physical_nf(pipeline, name, stage)
        nf_def = get_nf(name)
        nfs.append(LogicalNF(nf_name=name, rules=tuple(nf_def.generate_rules(rng, 64))))
    virtualizer = SFCVirtualizer(pipeline)
    virtualizer.install_sfc(LogicalSFC(tenant_id=1, nfs=tuple(nfs)))
    return pipeline, virtualizer


def functional_check(seed: int | None = None, packets: int = 256) -> dict:
    """Drive real packets through the installed chain; returns counters."""
    pipeline, _virt = build_demo_pipeline(seed)
    gen = FlowGenerator(seed)
    flows = gen.flows(32, tenant_id=1)
    batch = gen.packets(flows, packets, size_bytes=64)
    results = pipeline.process_batch(batch)
    delivered = sum(r.delivered for r in results)
    return {
        "packets": len(results),
        "delivered": delivered,
        "dropped": len(results) - delivered,
        "entries_installed": pipeline.total_entries(),
    }


def run(
    offered_gbps: float = OFFERED_GBPS,
    packet_sizes=PACKET_SIZES,
    seed: int | None = None,
) -> ExperimentResult:
    """Regenerate Fig. 4's two series (plus pps, the paper's other axis)."""
    asic = AsicModel()
    dpdk = DpdkChainModel(chain_length=len(CHAIN))
    result = ExperimentResult(
        name="fig4",
        description="throughput vs packet size, SFP (switch) vs DPDK SFC",
        columns=[
            "packet_bytes",
            "sfp_gbps",
            "dpdk_gbps",
            "sfp_mpps",
            "dpdk_mpps",
            "speedup",
        ],
    )
    for size in packet_sizes:
        sfp = asic.throughput_gbps(offered_gbps, size)
        sw = dpdk.throughput_gbps(offered_gbps, size)
        result.add_row(
            packet_bytes=size,
            sfp_gbps=sfp,
            dpdk_gbps=sw,
            sfp_mpps=units.mpps(units.gbps_to_pps(sfp, size)),
            dpdk_mpps=units.mpps(units.gbps_to_pps(sw, size)),
            speedup=sfp / sw if sw > 0 else float("inf"),
        )
    check = functional_check(seed)
    result.notes.append(
        f"functional pipeline check: {check['delivered']}/{check['packets']} "
        f"packets delivered through the installed 4-NF chain "
        f"({check['entries_installed']} rules installed)"
    )
    report = dpdk.resource_report()
    result.notes.append(
        f"DPDK footprint SFP offloads: {report['memory_mb']:.0f} MB, "
        f"{report['cpu_utilization'] * 100:.2f}% CPU "
        f"({report['cores_used']:.0f}/56 cores)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    run().print()
