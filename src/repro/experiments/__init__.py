"""Experiment runners — one per evaluation figure (Fig. 4-11).

Each ``figN`` module exposes ``run(...) -> ExperimentResult`` printing the
same rows/series the paper's figure plots.  ``quick=True`` shrinks sweeps to
seconds-scale (used by the benchmark harness defaults and tests); paper-scale
parameters are the defaults of each module's ``FullConfig``.
"""

from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials
from repro.experiments import (
    fig4_throughput,
    fig5_latency,
    fig6_num_sfcs,
    fig7_recirculation,
    fig8_solver_runtime,
    fig9_early_termination,
    fig10_algorithms,
    fig11_runtime_update,
)

__all__ = [
    "ExperimentResult",
    "mean_over_trials",
    "run_trials",
    "fig4_throughput",
    "fig5_latency",
    "fig6_num_sfcs",
    "fig7_recirculation",
    "fig8_solver_runtime",
    "fig9_early_termination",
    "fig10_algorithms",
    "fig11_runtime_update",
]
