"""Shared experiment plumbing: result tables, trial averaging, printing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.rng import make_rng, spawn


@dataclass
class ExperimentResult:
    """A figure's data: named columns, one row per x-axis point."""

    name: str
    description: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append one x-axis point; every declared column is required."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append({c: values[c] for c in self.columns})

    def column(self, name: str) -> list:
        """All values of one column, in row order (a figure series)."""
        return [row[name] for row in self.rows]

    # ------------------------------------------------------------------
    def format_table(self, float_fmt: str = "{:.2f}") -> str:
        """Render as a fixed-width text table (what the paper's figures plot)."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return float_fmt.format(value)
            return str(value)

        widths = {
            c: max(len(c), *(len(fmt(row[c])) for row in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [f"== {self.name}: {self.description} ==", header, "-" * len(header)]
        for row in self.rows:
            lines.append("  ".join(fmt(row[c]).ljust(widths[c]) for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors the harness CLI
        """Print the formatted table to stdout."""
        print(self.format_table())


def run_trials(
    fn: Callable[[np.random.Generator], dict],
    trials: int,
    seed: int | np.random.Generator | None,
) -> list[dict]:
    """Run ``fn`` once per independent RNG stream (the paper averages five
    synthesized datasets per experiment)."""
    rng = make_rng(seed)
    return [fn(child) for child in spawn(rng, trials)]


def mean_over_trials(results: Iterable[dict]) -> dict:
    """Average numeric values key-wise across trial dictionaries."""
    results = list(results)
    if not results:
        return {}
    out: dict = {}
    for key in results[0]:
        values = [r[key] for r in results]
        if all(isinstance(v, (int, float)) for v in values):
            out[key] = float(np.mean(values))
        else:
            out[key] = values[0]
    return out
