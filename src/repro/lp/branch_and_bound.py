"""Best-first branch & bound for mixed-integer programs.

Built on any LP solver with the :func:`repro.lp.simplex.solve_dense_form`
signature (the own simplex by default).  Together with the simplex this forms
the library's self-contained MILP solver — the from-scratch stand-in for the
Gurobi dependency of the paper.

Features needed by the paper's evaluation:

* **time limits with incumbents** — Fig. 9 terminates the IP solver early
  and plots the intermediate (incumbent) objective, so the search must keep
  and report the best feasible solution found so far;
* **bounds/gaps** — the best open node bound is reported so callers can
  compute the optimality gap of an early-terminated solve.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.lp.model import DenseForm
from repro.lp.simplex import SimplexResult, solve_dense_form
from repro.lp.status import Solution, SolveStatus

#: A value within this distance of an integer counts as integral.
INT_TOL = 1e-6

LPSolver = Callable[[DenseForm], SimplexResult]


@dataclass(order=True)
class _Node:
    """A subproblem in the search tree, ordered by its LP bound (min-first
    in minimization convention, i.e. best-bound-first search)."""

    bound: float
    tiebreak: int
    lb: np.ndarray = field(compare=False)
    ub: np.ndarray = field(compare=False)
    depth: int = field(compare=False, default=0)


def _fractional_index(x: np.ndarray, integrality: np.ndarray) -> int | None:
    """Most fractional integer variable, or None if all integral."""
    vals = x[integrality]
    frac = np.abs(vals - np.round(vals))
    worst = int(np.argmax(frac))
    if frac[worst] <= INT_TOL:
        return None
    return int(np.flatnonzero(integrality)[worst])


def solve_milp(
    form: DenseForm,
    lp_solver: LPSolver = solve_dense_form,
    time_limit: float | None = None,
    max_nodes: int = 200_000,
    mip_gap: float = 1e-6,
) -> Solution:
    """Solve the (minimization-convention) MILP in ``form``.

    Returns a :class:`Solution` whose ``objective``/``bound`` are still in
    minimization convention; :mod:`repro.lp.solver` maps them back to the
    model's sense.
    """
    start = time.perf_counter()
    integrality = form.integrality
    if not np.any(integrality):
        lp = lp_solver(form)
        return Solution(
            status=lp.status,
            objective=lp.objective,
            values=lp.x,
            solve_seconds=time.perf_counter() - start,
            iterations=lp.iterations,
            backend="own-bnb",
            bound=lp.objective,
        )

    counter = itertools.count()
    root = lp_solver(form)
    if root.status is SolveStatus.INFEASIBLE:
        return Solution(
            status=SolveStatus.INFEASIBLE,
            solve_seconds=time.perf_counter() - start,
            iterations=root.iterations,
            backend="own-bnb",
        )
    if root.status is SolveStatus.UNBOUNDED:
        return Solution(
            status=SolveStatus.UNBOUNDED,
            solve_seconds=time.perf_counter() - start,
            iterations=root.iterations,
            backend="own-bnb",
        )

    heap: list[_Node] = []
    assert root.x is not None and root.objective is not None
    heapq.heappush(
        heap, _Node(root.objective, next(counter), form.lb.copy(), form.ub.copy(), 0)
    )

    incumbent_x: np.ndarray | None = None
    incumbent_obj = np.inf
    total_iterations = root.iterations
    nodes_explored = 0
    timed_out = False

    while heap:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            timed_out = True
            break
        if nodes_explored >= max_nodes:
            timed_out = True
            break
        node = heapq.heappop(heap)
        # Prune against incumbent (best-bound-first makes this exact).
        if node.bound >= incumbent_obj - mip_gap * max(1.0, abs(incumbent_obj)):
            continue

        node_form = DenseForm(
            c=form.c,
            A_ub=form.A_ub,
            b_ub=form.b_ub,
            A_eq=form.A_eq,
            b_eq=form.b_eq,
            lb=node.lb,
            ub=node.ub,
            integrality=form.integrality,
            sign=form.sign,
            objective_constant=form.objective_constant,
        )
        lp = lp_solver(node_form)
        nodes_explored += 1
        total_iterations += lp.iterations
        if lp.status is not SolveStatus.OPTIMAL or lp.x is None or lp.objective is None:
            continue  # infeasible subtree
        if lp.objective >= incumbent_obj - mip_gap * max(1.0, abs(incumbent_obj)):
            continue

        branch_var = _fractional_index(lp.x, integrality)
        if branch_var is None:
            # Integral solution — new incumbent.
            rounded = lp.x.copy()
            idx = np.flatnonzero(integrality)
            rounded[idx] = np.round(rounded[idx])
            incumbent_x = rounded
            incumbent_obj = lp.objective
            continue

        value = lp.x[branch_var]
        floor_ub = node.ub.copy()
        floor_ub[branch_var] = np.floor(value)
        ceil_lb = node.lb.copy()
        ceil_lb[branch_var] = np.ceil(value)
        if node.lb[branch_var] <= floor_ub[branch_var]:
            heapq.heappush(
                heap,
                _Node(lp.objective, next(counter), node.lb.copy(), floor_ub, node.depth + 1),
            )
        if ceil_lb[branch_var] <= node.ub[branch_var]:
            heapq.heappush(
                heap,
                _Node(lp.objective, next(counter), ceil_lb, node.ub.copy(), node.depth + 1),
            )

    best_open_bound = min((n.bound for n in heap), default=incumbent_obj)
    elapsed = time.perf_counter() - start
    if incumbent_x is not None:
        status = SolveStatus.TIME_LIMIT if (timed_out and heap) else SolveStatus.OPTIMAL
        return Solution(
            status=status,
            objective=incumbent_obj,
            values=incumbent_x,
            solve_seconds=elapsed,
            iterations=total_iterations,
            backend="own-bnb",
            bound=best_open_bound,
            extra={"nodes": nodes_explored},
        )
    if timed_out:
        return Solution(
            status=SolveStatus.TIME_LIMIT,
            solve_seconds=elapsed,
            iterations=total_iterations,
            backend="own-bnb",
            bound=best_open_bound,
            extra={"nodes": nodes_explored},
        )
    return Solution(
        status=SolveStatus.INFEASIBLE,
        solve_seconds=elapsed,
        iterations=total_iterations,
        backend="own-bnb",
        extra={"nodes": nodes_explored},
    )
