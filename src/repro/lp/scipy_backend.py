"""Adapter to scipy's HiGHS solvers (``linprog`` for LPs, ``milp`` for MIPs).

HiGHS is the workhorse for the large placement instances (Fig. 8 runs up to
tens of thousands of binaries); the from-scratch backend in
:mod:`repro.lp.simplex` / :mod:`repro.lp.branch_and_bound` covers the rest
and cross-checks this adapter in the test suite.
"""

from __future__ import annotations

import time

import numpy as np
import scipy.optimize
import scipy.sparse

from repro.lp.model import DenseForm
from repro.lp.simplex import SimplexResult
from repro.lp.status import Solution, SolveStatus


def _bounds_rows(form: DenseForm):
    """scipy ``linprog`` bounds argument from a dense form."""
    return np.column_stack([form.lb, form.ub])


def solve_lp_scipy(form: DenseForm) -> SimplexResult:
    """Solve the LP relaxation of ``form`` with HiGHS (minimization space)."""
    result = scipy.optimize.linprog(
        c=form.c,
        A_ub=form.A_ub if form.A_ub.size else None,
        b_ub=form.b_ub if form.b_ub.size else None,
        A_eq=form.A_eq if form.A_eq.size else None,
        b_eq=form.b_eq if form.b_eq.size else None,
        bounds=_bounds_rows(form),
        method="highs",
    )
    iterations = int(getattr(result, "nit", 0) or 0)
    if result.status == 0:
        return SimplexResult(
            status=SolveStatus.OPTIMAL,
            x=np.asarray(result.x, dtype=float),
            objective=float(result.fun),
            iterations=iterations,
        )
    if result.status == 2:
        return SimplexResult(SolveStatus.INFEASIBLE, None, None, iterations)
    if result.status == 3:
        return SimplexResult(SolveStatus.UNBOUNDED, None, None, iterations)
    return SimplexResult(SolveStatus.NO_SOLUTION, None, None, iterations)


def solve_milp_scipy(form: DenseForm, time_limit: float | None = None, mip_gap: float = 1e-6) -> Solution:
    """Solve the MILP in ``form`` with HiGHS branch-and-cut.

    ``time_limit`` maps to HiGHS's wall-clock limit; when the limit fires
    HiGHS returns its incumbent, which is exactly the behaviour the paper's
    early-termination experiment (Fig. 9) relies on.
    """
    start = time.perf_counter()
    constraints = []
    if form.A_ub.size:
        constraints.append(
            scipy.optimize.LinearConstraint(
                scipy.sparse.csr_matrix(form.A_ub), -np.inf, form.b_ub
            )
        )
    if form.A_eq.size:
        constraints.append(
            scipy.optimize.LinearConstraint(
                scipy.sparse.csr_matrix(form.A_eq), form.b_eq, form.b_eq
            )
        )
    options: dict = {"mip_rel_gap": mip_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = scipy.optimize.milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality.astype(int),
        bounds=scipy.optimize.Bounds(form.lb, form.ub),
        options=options,
    )
    elapsed = time.perf_counter() - start

    # scipy.milp statuses: 0 optimal, 1 iteration/time limit, 2 infeasible,
    # 3 unbounded, 4 other.
    if result.status == 0:
        status = SolveStatus.OPTIMAL
    elif result.status == 1:
        status = SolveStatus.TIME_LIMIT
    elif result.status == 2:
        status = SolveStatus.INFEASIBLE
    elif result.status == 3:
        status = SolveStatus.UNBOUNDED
    else:
        status = SolveStatus.NO_SOLUTION

    values = None
    objective = None
    if result.x is not None and status.has_solution_possible:
        values = np.asarray(result.x, dtype=float)
        # Snap integers: HiGHS returns values within its own tolerance.
        idx = np.flatnonzero(form.integrality)
        values[idx] = np.round(values[idx])
        objective = float(form.c @ values)
    bound = None
    if getattr(result, "mip_dual_bound", None) is not None:
        bound = float(result.mip_dual_bound)
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solve_seconds=elapsed,
        iterations=int(getattr(result, "mip_node_count", 0) or 0),
        backend="scipy-highs",
        bound=bound,
    )
