"""Decision variables and linear expressions.

A tiny modeling language in the style of PuLP/Gurobi: :class:`Var` supports
arithmetic with numbers and other variables, producing :class:`LinExpr`
objects; comparisons (``<=``, ``>=``, ``==``) produce
:class:`~repro.lp.constraint.Constraint` objects.

Expressions store ``{variable_index: coefficient}`` dictionaries.  Dense
vectors are only materialized once, when the whole model is exported
(:meth:`repro.lp.model.Model.to_arrays`); building with dicts keeps model
construction O(nnz) rather than O(num_vars) per expression, which matters for
the placement ILP where a model can have tens of thousands of variables but
each constraint touches only a handful.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Union

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.lp.constraint import Constraint
    from repro.lp.model import Model

Number = Union[int, float]
ExprLike = Union["Var", "LinExpr", int, float]


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class Var:
    """A decision variable owned by a :class:`~repro.lp.model.Model`.

    Variables are created through :meth:`Model.add_var`; constructing one
    directly is only done by the model.  A variable is identified by its
    integer ``index`` within its model; ``name`` is for humans and solutions.
    """

    __slots__ = ("model", "index", "name", "lb", "ub", "is_integer")

    def __init__(
        self,
        model: "Model",
        index: int,
        name: str,
        lb: float,
        ub: float,
        is_integer: bool,
    ) -> None:
        if lb > ub:
            raise ModelError(f"variable {name!r}: lower bound {lb} exceeds upper bound {ub}")
        self.model = model
        self.index = index
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.is_integer = bool(is_integer)

    # -- conversion ----------------------------------------------------
    def to_expr(self) -> "LinExpr":
        """Promote this variable to a single-term linear expression."""
        return LinExpr({self.index: 1.0}, 0.0, self.model)

    # -- arithmetic (delegates to LinExpr) ------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self.to_expr() * other

    def __rmul__(self, other: Number) -> "LinExpr":
        return self.to_expr() * other

    def __truediv__(self, other: Number) -> "LinExpr":
        return self.to_expr() / other

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    # -- comparisons build constraints ----------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other: ExprLike) -> "Constraint":
        return self.to_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if _is_number(other) or isinstance(other, (Var, LinExpr)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.model), self.index))

    def __repr__(self) -> str:
        kind = "int" if self.is_integer else "cont"
        return f"Var({self.name!r}, {kind}, [{self.lb}, {self.ub}])"


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Instances are treated as immutable by the public API: every arithmetic
    operation returns a new expression.  (In-place mutation is used only
    internally while accumulating.)
    """

    __slots__ = ("coeffs", "constant", "model")

    def __init__(
        self,
        coeffs: Mapping[int, float] | None = None,
        constant: float = 0.0,
        model: "Model | None" = None,
    ) -> None:
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)
        self.model = model

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def from_terms(terms: Iterable[tuple[Number, "Var"]], constant: float = 0.0) -> "LinExpr":
        """Build an expression from ``(coefficient, variable)`` pairs."""
        expr = LinExpr(constant=constant)
        for coeff, var in terms:
            expr._add_var(var, float(coeff))
        return expr

    def _merge_model(self, other_model: "Model | None") -> "Model | None":
        if self.model is None:
            return other_model
        if other_model is None:
            return self.model
        if self.model is not other_model:
            raise ModelError("cannot combine expressions from different models")
        return self.model

    def _add_var(self, var: "Var", coeff: float) -> None:
        self.model = self._merge_model(var.model)
        new = self.coeffs.get(var.index, 0.0) + coeff
        if new == 0.0:
            self.coeffs.pop(var.index, None)
        else:
            self.coeffs[var.index] = new

    def copy(self) -> "LinExpr":
        """An independent copy (mutating it leaves this expression alone)."""
        return LinExpr(self.coeffs, self.constant, self.model)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        result = self.copy()
        if _is_number(other):
            result.constant += float(other)  # type: ignore[arg-type]
            return result
        if isinstance(other, Var):
            result._add_var(other, 1.0)
            return result
        if isinstance(other, LinExpr):
            result.model = result._merge_model(other.model)
            for idx, coeff in other.coeffs.items():
                new = result.coeffs.get(idx, 0.0) + coeff
                if new == 0.0:
                    result.coeffs.pop(idx, None)
                else:
                    result.coeffs[idx] = new
            result.constant += other.constant
            return result
        return NotImplemented  # type: ignore[return-value]

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: ExprLike) -> "LinExpr":
        if _is_number(other):
            return self + (-float(other))  # type: ignore[operator]
        if isinstance(other, Var):
            return self + (other * -1.0)
        if isinstance(other, LinExpr):
            return self + (other * -1.0)
        return NotImplemented  # type: ignore[return-value]

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, other: Number) -> "LinExpr":
        if not _is_number(other):
            raise ModelError("expressions are linear: can only multiply by a number")
        scale = float(other)
        if scale == 0.0:
            return LinExpr({}, 0.0, self.model)
        return LinExpr(
            {idx: coeff * scale for idx, coeff in self.coeffs.items()},
            self.constant * scale,
            self.model,
        )

    def __rmul__(self, other: Number) -> "LinExpr":
        return self.__mul__(other)

    def __truediv__(self, other: Number) -> "LinExpr":
        if not _is_number(other):
            raise ModelError("expressions are linear: can only divide by a number")
        if other == 0:
            raise ZeroDivisionError("division of expression by zero")
        return self * (1.0 / float(other))

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints --------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        from repro.lp.constraint import Constraint, Sense

        return Constraint.build(self, other, Sense.LE)

    def __ge__(self, other: ExprLike) -> "Constraint":
        from repro.lp.constraint import Constraint, Sense

        return Constraint.build(self, other, Sense.GE)

    def __eq__(self, other: object):  # type: ignore[override]
        from repro.lp.constraint import Constraint, Sense

        if _is_number(other) or isinstance(other, (Var, LinExpr)):
            return Constraint.build(self, other, Sense.EQ)  # type: ignore[arg-type]
        return NotImplemented

    def __hash__(self) -> int:  # expressions are mutable internally; identity hash
        return id(self)

    # -- evaluation ----------------------------------------------------------
    def value(self, assignment) -> float:
        """Evaluate under ``assignment`` (indexable by variable index)."""
        total = self.constant
        for idx, coeff in self.coeffs.items():
            total += coeff * float(assignment[idx])
        return total

    def __repr__(self) -> str:
        if self.model is not None:
            names = {v.index: v.name for v in self.model.variables}
            terms = " + ".join(
                f"{coeff:g}*{names.get(idx, f'x{idx}')}" for idx, coeff in sorted(self.coeffs.items())
            )
        else:
            terms = " + ".join(f"{coeff:g}*x{idx}" for idx, coeff in sorted(self.coeffs.items()))
        if not terms:
            return f"LinExpr({self.constant:g})"
        if self.constant:
            return f"LinExpr({terms} + {self.constant:g})"
        return f"LinExpr({terms})"


def lin_sum(items: Iterable[ExprLike]) -> LinExpr:
    """Sum expressions/variables/numbers efficiently (O(total nnz)).

    ``sum()`` over thousands of expressions is quadratic because every ``+``
    copies the accumulator; this helper accumulates in place.
    """
    acc = LinExpr()
    for item in items:
        if _is_number(item):
            acc.constant += float(item)  # type: ignore[arg-type]
        elif isinstance(item, Var):
            acc._add_var(item, 1.0)
        elif isinstance(item, LinExpr):
            acc.model = acc._merge_model(item.model)
            for idx, coeff in item.coeffs.items():
                new = acc.coeffs.get(idx, 0.0) + coeff
                if new == 0.0:
                    acc.coeffs.pop(idx, None)
                else:
                    acc.coeffs[idx] = new
            acc.constant += item.constant
        else:
            raise ModelError(f"cannot sum object of type {type(item).__name__}")
    return acc
