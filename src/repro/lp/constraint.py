"""Linear constraints.

A :class:`Constraint` is a normalized linear relation ``expr (<=|>=|==) rhs``
where the expression's constant has been folded into the right-hand side, so
it is always stored as ``sum(coeff_i * x_i)  sense  rhs``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Union

from repro.errors import ModelError
from repro.lp.expr import LinExpr, Var, _is_number

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.model import Model

ExprLike = Union[Var, LinExpr, int, float]


class Sense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A normalized linear constraint ``lhs sense rhs``.

    ``lhs`` is a :class:`LinExpr` with zero constant; the constant has been
    moved to ``rhs``.  Constraints are built via expression comparisons and
    registered on a model with :meth:`repro.lp.model.Model.add_constr`.
    """

    __slots__ = ("lhs", "sense", "rhs", "name")

    def __init__(self, lhs: LinExpr, sense: Sense, rhs: float, name: str = "") -> None:
        if lhs.constant != 0.0:
            rhs = rhs - lhs.constant
            lhs = LinExpr(lhs.coeffs, 0.0, lhs.model)
        self.lhs = lhs
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @staticmethod
    def build(left: ExprLike, right: ExprLike, sense: Sense) -> "Constraint":
        """Normalize ``left sense right`` into ``(left - right) sense 0`` form."""
        if isinstance(left, Var):
            left = left.to_expr()
        if _is_number(left):
            left = LinExpr(constant=float(left))  # type: ignore[arg-type]
        if not isinstance(left, LinExpr):
            raise ModelError(f"cannot build constraint from {type(left).__name__}")
        diff = left - right
        if not isinstance(diff, LinExpr):
            raise ModelError(f"cannot build constraint against {type(right).__name__}")
        rhs = -diff.constant
        lhs = LinExpr(diff.coeffs, 0.0, diff.model)
        if not lhs.coeffs:
            raise ModelError(
                "constraint has no variables; comparison between constants "
                f"({0.0} {sense.value} {rhs})"
            )
        return Constraint(lhs, sense, rhs)

    @property
    def model(self) -> "Model | None":
        return self.lhs.model

    def violation(self, assignment, tol: float = 1e-9) -> float:
        """Amount by which ``assignment`` violates this constraint (0 if satisfied)."""
        value = self.lhs.value(assignment)
        if self.sense is Sense.LE:
            return max(0.0, value - self.rhs - tol)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - value - tol)
        return max(0.0, abs(value - self.rhs) - tol)

    def is_satisfied(self, assignment, tol: float = 1e-9) -> bool:
        """Whether ``assignment`` satisfies this constraint within ``tol``."""
        return self.violation(assignment, tol) == 0.0

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.lhs!r} {self.sense.value} {self.rhs:g}{label})"
