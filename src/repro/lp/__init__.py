"""Linear / mixed-integer programming substrate.

The paper solves its placement problem with Gurobi.  No commercial solver is
available here, so this package provides the whole solving stack:

* :mod:`repro.lp.expr` — variables and linear expressions with operator
  overloading (a deliberately small PuLP/Gurobi-style modeling API),
* :mod:`repro.lp.constraint` — linear constraints,
* :mod:`repro.lp.model` — the :class:`~repro.lp.model.Model` container and
  its export to dense matrix form,
* :mod:`repro.lp.simplex` — a from-scratch two-phase dense simplex LP solver,
* :mod:`repro.lp.branch_and_bound` — best-first branch & bound for MILP on
  top of any LP solver, with time limits and incumbent reporting,
* :mod:`repro.lp.scipy_backend` — an adapter to scipy's HiGHS
  (``linprog`` / ``milp``) for large instances,
* :mod:`repro.lp.solver` — the single entry point :func:`~repro.lp.solver.solve`
  that dispatches between backends.

The two backends are cross-checked against each other in the test suite; the
placement layer (:mod:`repro.core`) only ever talks to
:func:`repro.lp.solver.solve`.
"""

from repro.lp.constraint import Constraint, Sense
from repro.lp.expr import LinExpr, Var, lin_sum
from repro.lp.model import Model, Objective
from repro.lp.solver import solve
from repro.lp.status import Solution, SolveStatus
from repro.lp.writer import write_lp

__all__ = [
    "Constraint",
    "LinExpr",
    "Model",
    "Objective",
    "Sense",
    "Solution",
    "SolveStatus",
    "Var",
    "lin_sum",
    "solve",
    "write_lp",
]
