"""Unified solver entry point.

:func:`solve` is the only function the placement layer calls.  It exports the
model once, dispatches to a backend, and maps the minimization-convention
result back to the model's objective sense.

Backends:

* ``"scipy"`` — HiGHS via scipy (default for anything non-trivial),
* ``"own"`` — the from-scratch simplex + branch & bound,
* ``"auto"`` — ``own`` for tiny models (useful to exercise the in-tree
  solver continuously), ``scipy`` otherwise.
"""

from __future__ import annotations

import time

from repro.errors import SolverError
from repro.lp import branch_and_bound, scipy_backend, simplex
from repro.lp.model import Model
from repro.lp.status import Solution, SolveStatus

#: Models at or below this many variables are routed to the own backend
#: under ``backend="auto"``.
AUTO_OWN_MAX_VARS = 60


def _finalize(model: Model, solution: Solution, sign: float, constant: float) -> Solution:
    """Map objective/bound from minimization space back to the model's sense."""
    if solution.objective is not None:
        solution.objective = sign * solution.objective + constant
    if solution.bound is not None:
        solution.bound = sign * solution.bound + constant
    return solution


def solve(
    model: Model,
    backend: str = "auto",
    relax: bool = False,
    time_limit: float | None = None,
    mip_gap: float = 1e-6,
) -> Solution:
    """Solve ``model`` and return a :class:`~repro.lp.status.Solution`.

    Parameters
    ----------
    model:
        The model to solve.
    backend:
        ``"auto"``, ``"scipy"`` or ``"own"``.
    relax:
        Solve the LP relaxation (drop all integrality).  This is Algorithm
        1's ``LP()`` step.
    time_limit:
        Wall-clock limit in seconds for MILP solves.  On expiry the best
        incumbent found so far is returned with status ``TIME_LIMIT``.
    mip_gap:
        Relative optimality gap at which MILP search stops.
    """
    if backend not in ("auto", "scipy", "own"):
        raise SolverError(f"unknown backend {backend!r}")
    form = model.to_arrays()
    if relax:
        form.integrality[:] = False
    is_mip = bool(form.integrality.any())

    if backend == "auto":
        backend = "own" if model.num_vars <= AUTO_OWN_MAX_VARS else "scipy"

    if not is_mip:
        start = time.perf_counter()
        if backend == "own":
            lp = simplex.solve_dense_form(form)
        else:
            lp = scipy_backend.solve_lp_scipy(form)
        solution = Solution(
            status=lp.status,
            objective=lp.objective,
            values=lp.x,
            solve_seconds=time.perf_counter() - start,
            iterations=lp.iterations,
            backend=f"{backend}-lp",
        )
        if lp.status is SolveStatus.OPTIMAL:
            solution.bound = lp.objective
        return _finalize(model, solution, form.sign, form.objective_constant)

    if backend == "own":
        solution = branch_and_bound.solve_milp(
            form, time_limit=time_limit, mip_gap=mip_gap
        )
    else:
        solution = scipy_backend.solve_milp_scipy(form, time_limit=time_limit, mip_gap=mip_gap)
    return _finalize(model, solution, form.sign, form.objective_constant)
