"""CPLEX-LP-format export.

``write_lp`` serializes a :class:`~repro.lp.model.Model` to the ubiquitous
LP text format, so any placement model built here can be inspected by hand
or fed to an external solver (Gurobi/CPLEX/HiGHS CLI) for cross-checking —
the reproduction's escape hatch back to the paper's original toolchain.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.lp.constraint import Sense
from repro.lp.expr import LinExpr
from repro.lp.model import Model, Objective


def _sanitize(name: str) -> str:
    """LP-format identifiers cannot contain the reserved characters used by
    our auto-generated names (``[ ] ,``)."""
    out = []
    for ch in name:
        if ch.isalnum() or ch in "_.":
            out.append(ch)
        else:
            out.append("_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "v_" + text
    return text


def _format_expr(expr: LinExpr, names: dict[int, str]) -> str:
    if not expr.coeffs:
        return "0"
    parts: list[str] = []
    for idx in sorted(expr.coeffs):
        coeff = expr.coeffs[idx]
        name = names[idx]
        if not parts:
            if coeff == 1.0:
                parts.append(name)
            elif coeff == -1.0:
                parts.append(f"- {name}")
            else:
                parts.append(f"{coeff:g} {name}")
            continue
        sign = "+" if coeff >= 0 else "-"
        magnitude = abs(coeff)
        if magnitude == 1.0:
            parts.append(f"{sign} {name}")
        else:
            parts.append(f"{sign} {magnitude:g} {name}")
    return " ".join(parts)


def model_to_lp_string(model: Model) -> str:
    """Render ``model`` in CPLEX LP format."""
    names = {v.index: _sanitize(v.name) for v in model.variables}
    if len(set(names.values())) != len(names):
        # Disambiguate collisions introduced by sanitization.
        seen: dict[str, int] = {}
        for idx in sorted(names):
            base = names[idx]
            if base in seen:
                seen[base] += 1
                names[idx] = f"{base}_{seen[base]}"
            else:
                seen[base] = 0

    lines: list[str] = []
    lines.append(
        "Maximize" if model.objective_sense is Objective.MAXIMIZE else "Minimize"
    )
    lines.append(f" obj: {_format_expr(model.objective_expr, names)}")
    lines.append("Subject To")
    for constr in model.constraints:
        op = {Sense.LE: "<=", Sense.GE: ">=", Sense.EQ: "="}[constr.sense]
        lines.append(
            f" {_sanitize(constr.name)}: "
            f"{_format_expr(constr.lhs, names)} {op} {constr.rhs:g}"
        )

    bounds: list[str] = []
    for var in model.variables:
        name = names[var.index]
        lb_default = 0.0
        if var.lb == lb_default and math.isinf(var.ub):
            continue  # LP-format default bound
        lb = "-inf" if math.isinf(var.lb) else f"{var.lb:g}"
        ub = "+inf" if math.isinf(var.ub) else f"{var.ub:g}"
        bounds.append(f" {lb} <= {name} <= {ub}")
    if bounds:
        lines.append("Bounds")
        lines.extend(bounds)

    integers = [names[v.index] for v in model.variables if v.is_integer]
    if integers:
        lines.append("Generals")
        # LP format wraps long lines; keep <= 8 names per line.
        for i in range(0, len(integers), 8):
            lines.append(" " + " ".join(integers[i : i + 8]))
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp(model: Model, path: str | Path) -> Path:
    """Write ``model`` to ``path`` in LP format; returns the path."""
    path = Path(path)
    path.write_text(model_to_lp_string(model))
    return path
