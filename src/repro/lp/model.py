"""The optimization model container.

:class:`Model` owns variables and constraints and exports itself to the dense
matrix form consumed by both solver backends.  The export is the only place
where sparse ``{index: coeff}`` dictionaries become numpy arrays — this keeps
model *construction* cheap (the placement ILP builds tens of thousands of
terms) and makes the numeric hand-off to solvers a single vectorized step.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelError
from repro.lp.constraint import Constraint, Sense
from repro.lp.expr import LinExpr, Var


class Objective(enum.Enum):
    """Optimization direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass
class DenseForm:
    """Dense matrix export of a model, in **minimization** convention.

    ``A_ub x <= b_ub``, ``A_eq x = b_eq``, ``lb <= x <= ub``; ``c`` already
    carries the sign flip for maximization models, and ``sign`` records that
    flip so objective values can be mapped back (original = sign * min-value).
    """

    c: np.ndarray
    A_ub: np.ndarray
    b_ub: np.ndarray
    A_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray  # bool per variable
    sign: float              # +1 for min models, -1 for max models
    objective_constant: float


class Model:
    """A linear / mixed-integer optimization model.

    Typical usage::

        m = Model("placement")
        x = m.add_var("x", lb=0, ub=1, integer=True)
        y = m.add_var("y", lb=0)
        m.add_constr(x + 2 * y <= 4, name="cap")
        m.set_objective(3 * x + y, Objective.MAXIMIZE)
        sol = repro.lp.solve(m)
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self._var_names: set[str] = set()
        self.objective_expr: LinExpr = LinExpr()
        self.objective_sense: Objective = Objective.MINIMIZE

    # -- variables ------------------------------------------------------
    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
        binary: bool = False,
    ) -> Var:
        """Create and register a decision variable.

        ``binary=True`` is shorthand for an integer variable with bounds
        [0, 1].  Variable names must be unique within the model (auto-named
        as ``x<i>`` when empty).
        """
        if binary:
            lb, ub, integer = 0.0, 1.0, True
        index = len(self.variables)
        if not name:
            name = f"x{index}"
        if name in self._var_names:
            raise ModelError(f"duplicate variable name {name!r}")
        var = Var(self, index, name, lb, ub, integer)
        self.variables.append(var)
        self._var_names.add(name)
        return var

    def add_vars(
        self,
        count: int,
        prefix: str,
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
        binary: bool = False,
    ) -> list[Var]:
        """Create ``count`` variables named ``prefix[i]``."""
        return [
            self.add_var(f"{prefix}[{i}]", lb=lb, ub=ub, integer=integer, binary=binary)
            for i in range(count)
        ]

    def var_by_name(self, name: str) -> Var:
        """Look up a variable by name (O(n); intended for tests/debugging)."""
        for var in self.variables:
            if var.name == name:
                return var
        raise ModelError(f"no variable named {name!r}")

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # -- constraints -----------------------------------------------------
    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built from an expression comparison."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                f"expected a Constraint (from <=, >= or ==), got {type(constraint).__name__}"
            )
        if constraint.model is not None and constraint.model is not self:
            raise ModelError("constraint references variables from a different model")
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self.constraints)}"
        self.constraints.append(constraint)
        return constraint

    def add_constrs(self, constraints: Iterable[Constraint], prefix: str = "") -> list[Constraint]:
        """Register several constraints, named ``prefix[i]`` when given."""
        out = []
        for i, constr in enumerate(constraints):
            out.append(self.add_constr(constr, f"{prefix}[{i}]" if prefix else ""))
        return out

    # -- objective ---------------------------------------------------------
    def set_objective(self, expr: LinExpr | Var, sense: Objective = Objective.MINIMIZE) -> None:
        """Set the objective expression and direction."""
        if isinstance(expr, Var):
            expr = expr.to_expr()
        if not isinstance(expr, LinExpr):
            raise ModelError(f"objective must be a linear expression, got {type(expr).__name__}")
        if expr.model is not None and expr.model is not self:
            raise ModelError("objective references variables from a different model")
        self.objective_expr = expr
        self.objective_sense = sense

    # -- evaluation helpers ---------------------------------------------------
    def objective_value(self, assignment: Sequence[float] | np.ndarray) -> float:
        """Objective value of an assignment, in the model's own sense."""
        return self.objective_expr.value(assignment)

    def check_feasible(
        self,
        assignment: Sequence[float] | np.ndarray,
        tol: float = 1e-6,
        integrality_tol: float = 1e-6,
    ) -> list[str]:
        """Return human-readable descriptions of all violated constraints/bounds.

        An empty list means the assignment is feasible.  Used by the
        randomized-rounding verifier (Algorithm 1's ``Verify_vars``) and by
        the test suite's cross-backend checks.
        """
        problems: list[str] = []
        arr = np.asarray(assignment, dtype=float)
        if arr.shape != (self.num_vars,):
            raise ModelError(
                f"assignment has shape {arr.shape}, expected ({self.num_vars},)"
            )
        for var in self.variables:
            val = arr[var.index]
            if val < var.lb - tol or val > var.ub + tol:
                problems.append(
                    f"bound: {var.name}={val:g} outside [{var.lb:g}, {var.ub:g}]"
                )
            if var.is_integer and abs(val - round(val)) > integrality_tol:
                problems.append(f"integrality: {var.name}={val:g} is fractional")
        for constr in self.constraints:
            violation = constr.violation(arr, tol)
            if violation > 0.0:
                problems.append(f"constraint {constr.name}: violated by {violation:g}")
        return problems

    # -- export ------------------------------------------------------------
    def to_arrays(self) -> DenseForm:
        """Export to dense minimization form (see :class:`DenseForm`)."""
        n = self.num_vars
        sign = 1.0 if self.objective_sense is Objective.MINIMIZE else -1.0

        c = np.zeros(n)
        for idx, coeff in self.objective_expr.coeffs.items():
            c[idx] = sign * coeff

        ub_rows: list[Constraint] = []
        eq_rows: list[Constraint] = []
        ub_signs: list[float] = []
        for constr in self.constraints:
            if constr.sense is Sense.EQ:
                eq_rows.append(constr)
            elif constr.sense is Sense.LE:
                ub_rows.append(constr)
                ub_signs.append(1.0)
            else:  # GE -> negate into LE
                ub_rows.append(constr)
                ub_signs.append(-1.0)

        A_ub = np.zeros((len(ub_rows), n))
        b_ub = np.zeros(len(ub_rows))
        for row, (constr, row_sign) in enumerate(zip(ub_rows, ub_signs)):
            for idx, coeff in constr.lhs.coeffs.items():
                A_ub[row, idx] = row_sign * coeff
            b_ub[row] = row_sign * constr.rhs

        A_eq = np.zeros((len(eq_rows), n))
        b_eq = np.zeros(len(eq_rows))
        for row, constr in enumerate(eq_rows):
            for idx, coeff in constr.lhs.coeffs.items():
                A_eq[row, idx] = coeff
            b_eq[row] = constr.rhs

        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        integrality = np.array([v.is_integer for v in self.variables], dtype=bool)
        return DenseForm(
            c=c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            lb=lb,
            ub=ub,
            integrality=integrality,
            sign=sign,
            objective_constant=self.objective_expr.constant,
        )

    def relaxed(self) -> "Model":
        """Return a copy of this model with all integrality dropped.

        This is Algorithm 1's ``Relax_vars()``: the LP relaxation shares the
        variable ordering with the original model, so a solution vector of
        one indexes directly into the other.
        """
        clone = Model(f"{self.name}-relaxed")
        for var in self.variables:
            clone.add_var(var.name, lb=var.lb, ub=var.ub, integer=False)
        for constr in self.constraints:
            lhs = LinExpr(constr.lhs.coeffs, 0.0, clone)
            clone.constraints.append(Constraint(lhs, constr.sense, constr.rhs, constr.name))
        clone.objective_expr = LinExpr(
            self.objective_expr.coeffs, self.objective_expr.constant, clone
        )
        clone.objective_sense = self.objective_sense
        return clone

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"({self.num_integer_vars} int), constrs={self.num_constraints})"
        )
