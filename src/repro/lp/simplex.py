"""A from-scratch dense two-phase simplex LP solver.

This is the library's self-contained replacement for the LP half of Gurobi.
It solves::

    min  c'x   s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  lb <= x <= ub

by reduction to standard form (``A x = b, x >= 0``) and a two-phase primal
simplex on a dense tableau with Bland's anti-cycling rule.

Design notes (per the HPC guide: measure, keep inner loops vectorized):
the per-iteration pivot is a single rank-1 numpy update over the tableau, so
the cost is O(m·n) per pivot with no Python-level inner loops.  The dense
tableau is intentional — this backend targets the small-to-medium models used
in tests, examples, and ablations; the scipy-HiGHS backend covers the large
placement instances.  Both are exercised against each other in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.lp.model import DenseForm
from repro.lp.status import SolveStatus

#: Numerical tolerances.  PIVOT_TOL guards ratio-test denominators; COST_TOL
#: decides optimality of reduced costs; FEAS_TOL decides phase-1 feasibility.
PIVOT_TOL = 1e-9
COST_TOL = 1e-9
FEAS_TOL = 1e-7


@dataclass
class SimplexResult:
    """Raw result of :func:`solve_dense_form` (model-space vector)."""

    status: SolveStatus
    x: np.ndarray | None
    objective: float | None
    iterations: int


class _StandardForm:
    """Reduction of a :class:`DenseForm` to ``min c'y, A y = b, y >= 0``.

    Keeps enough bookkeeping (per original variable: offset and the signed
    columns that reconstruct it) to map a standard-form solution back to the
    model's variable space.
    """

    def __init__(self, form: DenseForm) -> None:
        n = form.c.shape[0]
        # Each original variable x_j = offset_j + sum(sign * y_col); at most
        # two columns (the free-variable split).
        self.offsets = np.zeros(n)
        self.columns: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        extra_ub_rows: list[tuple[int, float]] = []  # (new column, rhs) for u <= ub-lb

        col = 0
        for j in range(n):
            lb, ub = form.lb[j], form.ub[j]
            if lb > ub:
                raise SolverError(f"variable {j}: lb {lb} > ub {ub}")
            if np.isfinite(lb):
                # x = lb + u, u >= 0 (and u <= ub - lb if ub finite)
                self.offsets[j] = lb
                self.columns[j].append((col, 1.0))
                if np.isfinite(ub):
                    extra_ub_rows.append((col, ub - lb))
                col += 1
            elif np.isfinite(ub):
                # x = ub - u, u >= 0
                self.offsets[j] = ub
                self.columns[j].append((col, -1.0))
                col += 1
            else:
                # free: x = u - v
                self.columns[j].append((col, 1.0))
                self.columns[j].append((col + 1, -1.0))
                col += 2
        self.num_structural = col

        def substitute(A: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """Rewrite rows of ``A x (<=|=) b`` in terms of the y columns."""
            m = A.shape[0]
            out = np.zeros((m, self.num_structural))
            rhs = b - A @ self.offsets
            for j in range(n):
                column = A[:, j]
                if not np.any(column):
                    continue
                for y_col, sign in self.columns[j]:
                    out[:, y_col] += sign * column
            return out, rhs

        A_ub, b_ub = substitute(form.A_ub, form.b_ub)
        A_eq, b_eq = substitute(form.A_eq, form.b_eq)

        # Upper-bound rows for shifted box variables: u_col <= span.
        if extra_ub_rows:
            rows = np.zeros((len(extra_ub_rows), self.num_structural))
            rhs = np.zeros(len(extra_ub_rows))
            for i, (y_col, span) in enumerate(extra_ub_rows):
                rows[i, y_col] = 1.0
                rhs[i] = span
            A_ub = np.vstack([A_ub, rows])
            b_ub = np.concatenate([b_ub, rhs])

        # Slack variables turn inequalities into equalities.
        m_ub, m_eq = A_ub.shape[0], A_eq.shape[0]
        total_cols = self.num_structural + m_ub
        A = np.zeros((m_ub + m_eq, total_cols))
        A[:m_ub, : self.num_structural] = A_ub
        A[:m_ub, self.num_structural :] = np.eye(m_ub)
        A[m_ub:, : self.num_structural] = A_eq
        b = np.concatenate([b_ub, b_eq])

        # Objective in y-space (slacks have zero cost).
        c = np.zeros(total_cols)
        for j in range(n):
            if form.c[j] == 0.0:
                continue
            for y_col, sign in self.columns[j]:
                c[y_col] += sign * form.c[j]
        self.objective_offset = float(form.c @ self.offsets)

        self.A = A
        self.b = b
        self.c = c

    def recover(self, y: np.ndarray) -> np.ndarray:
        """Map a standard-form solution back to model variable space."""
        x = self.offsets.copy()
        for j, cols in enumerate(self.columns):
            for y_col, sign in cols:
                x[j] += sign * y[y_col]
        return x


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the tableau on (row, col); vectorized rank-1 update."""
    tableau[row] /= tableau[row, col]
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row])


def _iterate(
    tableau: np.ndarray,
    basis: np.ndarray,
    allowed_cols: int,
    max_iterations: int,
) -> tuple[str, int]:
    """Run simplex iterations on ``tableau`` until optimal/unbounded.

    The last row is the (negated-cost) objective row; the last column is the
    RHS.  ``allowed_cols`` restricts entering-variable selection (used in
    phase 2 to forbid artificials).  Uses Dantzig pricing with a Bland
    fallback once cycling is plausible (no objective progress for a while).
    """
    iterations = 0
    m = tableau.shape[0] - 1
    stall = 0
    last_obj = tableau[-1, -1]
    while iterations < max_iterations:
        cost_row = tableau[-1, :allowed_cols]
        if stall < 2 * m + 10:
            enter = int(np.argmin(cost_row))
            if cost_row[enter] >= -COST_TOL:
                return "optimal", iterations
        else:
            # Bland's rule: smallest-index negative reduced cost.
            negative = np.flatnonzero(cost_row < -COST_TOL)
            if negative.size == 0:
                return "optimal", iterations
            enter = int(negative[0])

        column = tableau[:m, enter]
        positive = column > PIVOT_TOL
        if not np.any(positive):
            return "unbounded", iterations
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[:m, -1][positive] / column[positive]
        best = np.min(ratios)
        # Bland tie-break on leaving variable: smallest basis index.
        candidates = np.flatnonzero(ratios <= best + PIVOT_TOL)
        leave = int(candidates[np.argmin(basis[candidates])])

        _pivot(tableau, leave, enter)
        basis[leave] = enter
        iterations += 1
        obj = tableau[-1, -1]
        if obj > last_obj + COST_TOL:
            stall = 0
            last_obj = obj
        else:
            stall += 1
    raise SolverError(f"simplex exceeded {max_iterations} iterations")


def solve_standard(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    max_iterations: int = 50_000,
) -> tuple[SolveStatus, np.ndarray | None, float | None, int]:
    """Two-phase simplex for ``min c'x s.t. A x = b, x >= 0``."""
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float).copy()
    c = np.asarray(c, dtype=float)
    m, n = A.shape

    # Normalize to b >= 0 so artificials start feasible.
    A = A.copy()
    negative = b < 0
    A[negative] *= -1.0
    b[negative] *= -1.0

    if m == 0:
        # No constraints: optimum is at x = 0 (all costs on x >= 0 vars).
        x = np.zeros(n)
        if np.any(c < -COST_TOL):
            return SolveStatus.UNBOUNDED, None, None, 0
        return SolveStatus.OPTIMAL, x, 0.0, 0

    # ---- Phase 1: minimize sum of artificials -------------------------
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = A
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Phase-1 objective row: price out the artificial basis.
    tableau[-1, :n] = -A.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    basis = np.arange(n, n + m)

    outcome, iters1 = _iterate(tableau, basis, allowed_cols=n + m, max_iterations=max_iterations)
    if outcome == "unbounded":  # pragma: no cover - phase 1 is bounded below by 0
        raise SolverError("phase 1 reported unbounded (should be impossible)")
    phase1_value = -tableau[-1, -1]
    if phase1_value > FEAS_TOL:
        return SolveStatus.INFEASIBLE, None, None, iters1

    # Drive remaining artificials out of the basis.
    for row in range(m):
        if basis[row] >= n:
            structural = np.flatnonzero(np.abs(tableau[row, :n]) > PIVOT_TOL)
            if structural.size:
                _pivot(tableau, row, int(structural[0]))
                basis[row] = int(structural[0])
            # else: redundant row; the artificial stays basic at value 0,
            # which is harmless as long as it never re-enters (phase 2
            # restricts entering columns to structural ones).

    # ---- Phase 2: original objective ------------------------------------
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    # Price out the current basis.
    for row in range(m):
        var = basis[row]
        if var < n and c[var] != 0.0:
            tableau[-1, :] -= c[var] * tableau[row, :]

    outcome, iters2 = _iterate(tableau, basis, allowed_cols=n, max_iterations=max_iterations)
    iterations = iters1 + iters2
    if outcome == "unbounded":
        return SolveStatus.UNBOUNDED, None, None, iterations

    x = np.zeros(n + m)
    x[basis] = tableau[:m, -1]
    x = x[:n]
    objective = float(c @ x)
    return SolveStatus.OPTIMAL, x, objective, iterations


def solve_dense_form(form: DenseForm, max_iterations: int = 50_000) -> SimplexResult:
    """Solve a model's :class:`DenseForm` LP (ignoring integrality).

    Returns the solution in *model* variable space, with the objective in the
    minimization convention of :class:`DenseForm` (callers un-flip the sign).
    """
    std = _StandardForm(form)
    status, y, obj, iterations = solve_standard(std.A, std.b, std.c, max_iterations)
    if status is not SolveStatus.OPTIMAL or y is None:
        return SimplexResult(status=status, x=None, objective=None, iterations=iterations)
    x = std.recover(y)
    objective = float(obj) + std.objective_offset
    return SimplexResult(status=SolveStatus.OPTIMAL, x=x, objective=objective, iterations=iterations)
