"""Solve statuses and solution objects shared by all solver backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InfeasibleError

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.expr import LinExpr, Var
    from repro.lp.model import Model


class SolveStatus(enum.Enum):
    """Terminal status of a solve call.

    ``TIME_LIMIT`` means the solver stopped at its deadline; an incumbent
    (feasible but possibly sub-optimal) solution may or may not be attached.
    This is the status the paper's Fig. 9 "early termination" experiment
    exercises.
    """

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    NO_SOLUTION = "no_solution"

    @property
    def has_solution_possible(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)


@dataclass
class Solution:
    """Result of solving a model.

    ``values`` is indexed by variable index (the model's ordering); ``None``
    when no feasible point was produced.  ``objective`` is in the model's
    original sense (i.e. already un-negated for maximization models).
    """

    status: SolveStatus
    objective: float | None = None
    values: np.ndarray | None = None
    solve_seconds: float = 0.0
    iterations: int = 0
    backend: str = ""
    #: Best proven bound on the objective (for MILP: the LP/B&B bound); lets
    #: callers report optimality gaps for early-terminated solves.
    bound: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def is_feasible(self) -> bool:
        return self.values is not None

    def __getitem__(self, var: "Var") -> float:
        """Value of ``var`` in this solution."""
        if self.values is None:
            raise InfeasibleError(f"no solution available (status={self.status.value})")
        return float(self.values[var.index])

    def value(self, expr: "LinExpr | Var") -> float:
        """Evaluate an expression or variable under this solution."""
        if self.values is None:
            raise InfeasibleError(f"no solution available (status={self.status.value})")
        from repro.lp.expr import Var as _Var

        if isinstance(expr, _Var):
            return float(self.values[expr.index])
        return expr.value(self.values)

    def as_dict(self, model: "Model") -> dict[str, float]:
        """Map variable names to values (for debugging / reports)."""
        if self.values is None:
            raise InfeasibleError(f"no solution available (status={self.status.value})")
        return {v.name: float(self.values[v.index]) for v in model.variables}
