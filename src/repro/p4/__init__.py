"""P4-like program intermediate representation.

§II-B of the paper explains how a P4 program's match-action tables map onto
the physical pipeline: tables with read/write dependencies must be applied on
consecutive stages, while independent tables may share an MAU.  This package
provides just enough of that compiler layer to ground SFP's assumptions:

* :mod:`repro.p4.ir` — tables, conditionals and a sequential/branching
  control flow (Fig. 2's example is expressible),
* :mod:`repro.p4.dependency` — the table dependency graph (match / action /
  reverse-match edges, per the TDG of Jose et al., NSDI'15),
* :mod:`repro.p4.allocate` — a list-scheduling allocator packing tables into
  the fewest stages consistent with the dependency kinds and per-stage
  capacity, reporting how many (sub-)stages each NF spans.
"""

from repro.p4.allocate import StageAllocation, allocate_stages
from repro.p4.codegen import generate_p4
from repro.p4.dependency import DependencyKind, build_dependency_graph
from repro.p4.ir import P4Condition, P4Program, P4Table, chain_program

__all__ = [
    "DependencyKind",
    "P4Condition",
    "P4Program",
    "P4Table",
    "StageAllocation",
    "allocate_stages",
    "build_dependency_graph",
    "chain_program",
    "generate_p4",
]
