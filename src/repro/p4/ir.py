"""P4 program IR: tables, conditionals, control flow.

The model is the fragment of P4-14 the paper's Fig. 2 uses: an ingress
control applying tables in sequence, with ``if``-conditions gating
sub-controls.  Tables carry the header/metadata fields their match *reads*
and their actions *write* — that is all the dependency analysis and stage
allocation need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from repro.errors import DataPlaneError


@dataclass(frozen=True)
class P4Table:
    """One logical match-action table."""

    name: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise DataPlaneError("P4 table needs a name")
        object.__setattr__(self, "reads", tuple(self.reads))
        object.__setattr__(self, "writes", tuple(self.writes))


@dataclass(frozen=True)
class P4Condition:
    """An if-else gate: ``if (<predicate over fields>) then ... else ...``.

    On hardware this becomes a gateway entry in an MAU; its read fields
    participate in dependencies like a table's match."""

    predicate: str
    reads: tuple[str, ...]
    then_branch: tuple["ControlNode", ...] = ()
    else_branch: tuple["ControlNode", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", tuple(self.reads))
        object.__setattr__(self, "then_branch", tuple(self.then_branch))
        object.__setattr__(self, "else_branch", tuple(self.else_branch))


ControlNode = Union[P4Table, P4Condition]


@dataclass
class P4Program:
    """An ingress control: an ordered list of tables / gated sub-controls."""

    name: str
    nodes: list[ControlNode] = field(default_factory=list)

    def tables(self) -> list[P4Table]:
        """All tables in program (application) order, descending into
        branches then-before-else."""
        out: list[P4Table] = []

        def walk(nodes: Sequence[ControlNode]) -> None:
            for node in nodes:
                if isinstance(node, P4Table):
                    out.append(node)
                else:
                    walk(node.then_branch)
                    walk(node.else_branch)

        walk(self.nodes)
        names = [t.name for t in out]
        if len(set(names)) != len(names):
            raise DataPlaneError(f"duplicate table names in program: {names}")
        return out

    def table_by_name(self, name: str) -> P4Table:
        """Find a table by name; raises if the program has none."""
        for table in self.tables():
            if table.name == name:
                return table
        raise DataPlaneError(f"no table named {name!r} in program {self.name!r}")


def chain_program(nf_definitions: Iterable, name: str = "sfc") -> P4Program:
    """Compose NF definitions into one sequential SFC program (the paper's
    Fig. 2 structure, minus the outer tcp/udp gate which callers can add
    with :class:`P4Condition`).

    ``nf_definitions`` are :class:`repro.nfs.base.NFDefinition` objects (or
    anything exposing ``p4_tables()``); each contributes its logical tables
    in order.  Table names are prefixed with the NF position to keep
    multi-instance chains unambiguous.
    """
    nodes: list[ControlNode] = []
    for position, nf in enumerate(nf_definitions):
        for table_name, reads, writes in nf.p4_tables():
            nodes.append(
                P4Table(
                    name=f"nf{position}_{table_name}",
                    reads=tuple(reads),
                    writes=tuple(writes),
                )
            )
    return P4Program(name=name, nodes=nodes)
