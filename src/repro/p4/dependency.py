"""Table dependency analysis.

Implements the table dependency graph (TDG) classification of "Compiling
Packet Programs to Reconfigurable Switches" (Jose et al., NSDI'15), which the
paper's §II-B paraphrases:

* **MATCH dependency** — an earlier table *writes* a field a later table's
  match *reads*: the later table must be in a strictly later stage.
* **ACTION dependency** — both tables *write* the same field: the later
  write must land in a strictly later stage so it wins.
* **REVERSE_MATCH dependency** — an earlier table *reads* a field a later
  table *writes*: they may share a stage (the match uses the pre-action
  value) but the later table must not be placed earlier.
* **NONE** — independent tables; freely placeable, may share an MAU.

Only program order creates dependencies (the earlier table in application
order is the edge source).
"""

from __future__ import annotations

import enum

import networkx as nx

from repro.p4.ir import P4Program


class DependencyKind(enum.Enum):
    MATCH = "match"
    ACTION = "action"
    REVERSE_MATCH = "reverse_match"

    @property
    def min_stage_gap(self) -> int:
        """Minimum stage distance the edge imposes (1 = strictly later,
        0 = same stage allowed)."""
        return 0 if self is DependencyKind.REVERSE_MATCH else 1


def classify(earlier, later) -> DependencyKind | None:
    """Dependency kind from ``earlier`` to ``later`` (program order), or
    ``None`` when independent.  When multiple kinds apply the strictest
    (match > action > reverse-match) wins."""
    e_writes = set(earlier.writes)
    if e_writes & set(later.reads):
        return DependencyKind.MATCH
    if e_writes & set(later.writes):
        return DependencyKind.ACTION
    if set(earlier.reads) & set(later.writes):
        return DependencyKind.REVERSE_MATCH
    return None


def build_dependency_graph(program: P4Program) -> nx.DiGraph:
    """The TDG of ``program``: nodes are table names, edges carry
    ``kind`` (:class:`DependencyKind`) and ``min_gap`` attributes."""
    tables = program.tables()
    graph = nx.DiGraph()
    for table in tables:
        graph.add_node(table.name, reads=table.reads, writes=table.writes)
    for i, earlier in enumerate(tables):
        for later in tables[i + 1 :]:
            kind = classify(earlier, later)
            if kind is not None:
                graph.add_edge(
                    earlier.name,
                    later.name,
                    kind=kind,
                    min_gap=kind.min_stage_gap,
                )
    return graph


def critical_path_stages(graph: nx.DiGraph) -> int:
    """Minimum number of stages the program needs under unlimited per-stage
    capacity: 1 + the longest min-gap-weighted path."""
    if graph.number_of_nodes() == 0:
        return 0
    depth = {node: 0 for node in nx.topological_sort(graph)}
    for node in nx.topological_sort(graph):
        for _, successor, data in graph.out_edges(node, data=True):
            depth[successor] = max(depth[successor], depth[node] + data["min_gap"])
    return 1 + max(depth.values())
