"""Table-to-stage allocation.

A list scheduler over the dependency graph: each table (in topological /
program order) is placed on the earliest stage that satisfies all its
dependency gaps and the per-stage table capacity — mirroring how switch
compilers pack independent tables into one MAU and spread dependent ones
across consecutive stages (§II-B).  The result also reports how many stages
each NF's tables span, which is what the placement model means by an NF
"viewed as several sub-NFs" when it spans multiple stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.errors import ResourceExhaustedError
from repro.p4.dependency import build_dependency_graph
from repro.p4.ir import P4Program


@dataclass
class StageAllocation:
    """Outcome of :func:`allocate_stages`."""

    #: table name -> 0-based stage.
    stages: dict[str, int] = field(default_factory=dict)
    num_stages_available: int = 0

    @property
    def num_stages_used(self) -> int:
        return 1 + max(self.stages.values()) if self.stages else 0

    def tables_by_stage(self) -> dict[int, list[str]]:
        """Stage index -> names of the tables packed into that MAU."""
        out: dict[int, list[str]] = {}
        for table, stage in self.stages.items():
            out.setdefault(stage, []).append(table)
        return out

    def span(self, prefix: str) -> int:
        """Number of stages spanned by tables whose name starts with
        ``prefix`` (e.g. one NF's ``nf2_`` tables)."""
        hit = [s for t, s in self.stages.items() if t.startswith(prefix)]
        if not hit:
            return 0
        return max(hit) - min(hit) + 1


def allocate_stages(
    program: P4Program,
    num_stages: int = 12,
    tables_per_stage: int = 8,
) -> StageAllocation:
    """Assign every table of ``program`` to a stage.

    Raises :class:`ResourceExhaustedError` when the program cannot fit the
    ``num_stages`` x ``tables_per_stage`` budget.
    """
    graph = build_dependency_graph(program)
    # Program order is a valid topological order (edges only go forward).
    order = [t.name for t in program.tables()]
    allocation = StageAllocation(num_stages_available=num_stages)
    load = [0] * num_stages

    for name in order:
        earliest = 0
        for pred, _, data in graph.in_edges(name, data=True):
            earliest = max(earliest, allocation.stages[pred] + data["min_gap"])
        stage = None
        for candidate in range(earliest, num_stages):
            if load[candidate] < tables_per_stage:
                stage = candidate
                break
        if stage is None:
            raise ResourceExhaustedError(
                f"table {name!r} needs a stage >= {earliest} with capacity; "
                f"none of the {num_stages} stages has room"
            )
        allocation.stages[name] = stage
        load[stage] += 1
    return allocation


def nf_stage_spans(program: P4Program, allocation: StageAllocation) -> dict[str, int]:
    """Stages spanned per NF position for a :func:`repro.p4.ir.chain_program`
    program (tables named ``nf<j>_...``)."""
    prefixes = sorted({name.split("_", 1)[0] for name in allocation.stages})
    return {prefix: allocation.span(prefix + "_") for prefix in prefixes}
