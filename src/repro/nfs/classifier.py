"""Traffic classifier: mark DSCP by flow aggregate."""

from __future__ import annotations

import numpy as np

from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.nfs.base import NFDefinition


class TrafficClassifier(NFDefinition):
    name = "traffic_classifier"
    type_id = 3

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("src_ip", MatchKind.TERNARY),
            MatchField("dst_port", MatchKind.RANGE),
            MatchField("protocol", MatchKind.EXACT),
        ]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules: list[TableEntry] = []
        for _ in range(count):
            src = int(0x0A000000 + rng.integers(0, 2**24))
            lo = int(rng.choice(np.array([0, 1024, 49152])))
            hi = {0: 1023, 1024: 49151, 49152: 65535}[lo]
            rules.append(
                TableEntry(
                    match={
                        "src_ip": (src, 0xFFFFFF00),
                        "dst_port": (lo, hi),
                        "protocol": int(rng.choice(np.array([6, 17]))),
                    },
                    action="set_dscp",
                    params={"dscp": int(rng.integers(0, 64))},
                )
            )
        return rules
