"""Source NAT."""

from __future__ import annotations

from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.nfs.base import NFDefinition


class NAT(NFDefinition):
    name = "nat"
    type_id = 6

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("src_ip", MatchKind.EXACT),
            MatchField("protocol", MatchKind.EXACT),
        ]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules: list[TableEntry] = []
        for _ in range(count):
            inside = int(0x0A000000 + rng.integers(0, 2**24))
            outside = int(0xC6336400 + rng.integers(0, 2**8))  # 198.51.100/24
            rules.append(
                TableEntry(
                    match={"src_ip": inside, "protocol": 6},
                    action="snat",
                    params={"src_ip": outside, "src_port": int(rng.integers(1024, 65536))},
                )
            )
        return rules
