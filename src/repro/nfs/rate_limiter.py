"""Token-bucket rate limiter (on-switch rate-limiter style)."""

from __future__ import annotations


from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.nfs.base import NFDefinition


class RateLimiter(NFDefinition):
    name = "rate_limiter"
    type_id = 5

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("src_ip", MatchKind.TERNARY),
            MatchField("protocol", MatchKind.EXACT),
        ]

    def p4_tables(self) -> list[tuple[str, list[str], list[str]]]:
        # The limiter reads and writes its bucket register state.
        return [(f"tab_{self.name}", ["src_ip", "protocol"], ["bucket_state"])]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules: list[TableEntry] = []
        for idx in range(count):
            src = int(0x0A000000 + rng.integers(0, 2**24))
            rules.append(
                TableEntry(
                    match={"src_ip": (src, 0xFFFFFF00), "protocol": 6},
                    action="rate_limit",
                    params={
                        "bucket": f"b{idx}",
                        "rate_pps": int(rng.integers(10_000, 1_000_000)),
                        "burst": int(rng.integers(100, 10_000)),
                    },
                )
            )
        return rules
