"""Stateless 5-tuple ACL firewall (P4Guard-style)."""

from __future__ import annotations

import numpy as np

from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.nfs.base import NFDefinition


class Firewall(NFDefinition):
    """Ternary 5-tuple ACL: explicit permits and denies, miss = permit
    (the physical table's ``no_op`` default forwards)."""

    name = "firewall"
    type_id = 1

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("src_ip", MatchKind.TERNARY),
            MatchField("dst_ip", MatchKind.TERNARY),
            MatchField("src_port", MatchKind.RANGE),
            MatchField("dst_port", MatchKind.RANGE),
            MatchField("protocol", MatchKind.EXACT),
        ]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules: list[TableEntry] = []
        full = 0xFFFFFFFF
        for _ in range(count):
            deny = rng.random() < 0.5
            src = int(0x0A000000 + rng.integers(0, 2**24))
            dst = int(0x0A000000 + rng.integers(0, 2**24))
            # Mask some rules down to /24-style ternary wildcards.
            src_mask = full if rng.random() < 0.5 else 0xFFFFFF00
            dport = int(rng.choice(np.array([22, 53, 80, 443, 8080])))
            rules.append(
                TableEntry(
                    match={
                        "src_ip": (src, src_mask),
                        "dst_ip": (dst, full),
                        "dst_port": (dport, dport),
                        "protocol": 6,
                    },
                    action="drop" if deny else "permit",
                    priority=10 if deny else 5,
                )
            )
        return rules
