"""NF registry: type name / type id -> definition, plus install helpers."""

from __future__ import annotations

from repro.dataplane.pipeline import SwitchPipeline
from repro.errors import DataPlaneError
from repro.nfs.base import NFDefinition
from repro.nfs.classifier import TrafficClassifier
from repro.nfs.firewall import Firewall
from repro.nfs.load_balancer import LoadBalancer
from repro.nfs.misc import CacheIndex, DDoSDetector, Monitor, VPNGateway
from repro.nfs.nat import NAT
from repro.nfs.rate_limiter import RateLimiter
from repro.nfs.router import Router

#: All catalog NFs, ordered by type_id (aligned with
#: :func:`repro.core.spec.default_nf_catalog`).
NF_REGISTRY: dict[str, NFDefinition] = {
    nf.name: nf
    for nf in (
        Firewall(),
        LoadBalancer(),
        TrafficClassifier(),
        Router(),
        RateLimiter(),
        NAT(),
        VPNGateway(),
        CacheIndex(),
        DDoSDetector(),
        Monitor(),
    )
}

_BY_TYPE_ID = {nf.type_id: nf for nf in NF_REGISTRY.values()}


def nf_names() -> list[str]:
    """Catalog NF names in type-id order."""
    return [_BY_TYPE_ID[i].name for i in sorted(_BY_TYPE_ID)]


def get_nf(key: str | int) -> NFDefinition:
    """Look an NF up by name or 1-based type id."""
    if isinstance(key, int):
        nf = _BY_TYPE_ID.get(key)
    else:
        nf = NF_REGISTRY.get(key)
    if nf is None:
        raise DataPlaneError(f"unknown NF {key!r}")
    return nf


def install_physical_nf(
    pipeline: SwitchPipeline, nf: str | int | NFDefinition, stage: int
) -> None:
    """Install an NF's physical (virtualized) table on a pipeline stage,
    reserving its boot-time SRAM block (§IV "Install Physical NFs")."""
    definition = nf if isinstance(nf, NFDefinition) else get_nf(nf)
    table = definition.make_physical_table(stage)
    pipeline.stage(stage).install_table(table)


def install_layout(pipeline: SwitchPipeline, physical) -> None:
    """Install a whole physical layout (the placement's boolean ``(I, S)``
    matrix) onto a pipeline."""
    num_types, num_stages = physical.shape
    if num_stages != pipeline.num_stages:
        raise DataPlaneError(
            f"layout has {num_stages} stages, pipeline has {pipeline.num_stages}"
        )
    for i in range(num_types):
        for s in range(num_stages):
            if physical[i, s]:
                install_physical_nf(pipeline, i + 1, s)
