"""LPM IPv4 router."""

from __future__ import annotations

import numpy as np

from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.nfs.base import NFDefinition


class Router(NFDefinition):
    name = "router"
    type_id = 4

    def match_fields(self) -> list[MatchField]:
        return [MatchField("dst_ip", MatchKind.LPM)]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules: list[TableEntry] = []
        for _ in range(count):
            length = int(rng.choice(np.array([16, 20, 24, 28, 32]), p=[0.1, 0.2, 0.5, 0.1, 0.1]))
            prefix = int(rng.integers(0, 2**32)) & (((1 << length) - 1) << (32 - length))
            rules.append(
                TableEntry(
                    match={"dst_ip": (prefix, length)},
                    action="forward",
                    params={"port": int(rng.integers(0, 32))},
                )
            )
        return rules
