"""L4 load balancer (SilkRoad-style).

Logically three tables, exactly as the paper's Fig. 2 walks through:
``tab_lb`` (VIP + specific-flow pinning), ``tab_lbhash`` (flow hashing) and
``tab_lbselect`` (pool pick).  The physical/placement view treats the NF as
one big table (§VII "Multiple-table NFs"), so the physical table is the VIP
table; the hash/select behaviour collapses into the ``set_dst`` action's
backend choice.
"""

from __future__ import annotations


from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.nfs.base import NFDefinition


class LoadBalancer(NFDefinition):
    name = "load_balancer"
    type_id = 2

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("dst_ip", MatchKind.EXACT),
            MatchField("dst_port", MatchKind.EXACT),
            MatchField("protocol", MatchKind.EXACT),
        ]

    def p4_tables(self) -> list[tuple[str, list[str], list[str]]]:
        # Fig. 2: tab_lb reads the VIP and may rewrite dst; on miss, the hash
        # and select tables pick a backend.  tab_lbhash writes the hash
        # metadata tab_lbselect reads -> a read/write dependency chain.
        return [
            ("tab_lb", ["dst_ip", "dst_port", "protocol"], ["dst_ip", "dst_port"]),
            ("tab_lbhash", ["src_ip", "src_port"], ["hash"]),
            ("tab_lbselect", ["hash"], ["dst_ip", "dst_port"]),
        ]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules: list[TableEntry] = []
        for _ in range(count):
            vip = int(0x0A640000 + rng.integers(0, 2**14))
            backend = int(0x0AC80000 + rng.integers(0, 2**14))
            rules.append(
                TableEntry(
                    match={"dst_ip": vip, "dst_port": 80, "protocol": 6},
                    action="set_dst",
                    params={"dst_ip": backend, "dst_port": 8080},
                )
            )
        return rules
