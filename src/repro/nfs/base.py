"""Base class for NF definitions.

An :class:`NFDefinition` describes one provider NF type:

* :meth:`match_fields` — the NF-specific part of the match key (SFP prepends
  ``tenant_id`` and ``pass_id`` when building the *physical* table, §IV);
* :meth:`make_physical_table` — the virtualized per-stage table;
* :meth:`generate_rules` — a seeded generator of plausible tenant rules
  (used by workload synthesis and the data-plane experiments);
* :meth:`p4_tables` — the NF's logical table structure for the
  :mod:`repro.p4` dependency/allocation layer (most NFs are one big table;
  the load balancer is three, per the paper's Fig. 2).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.dataplane.table import MatchActionTable, MatchField, MatchKind, TableEntry
from repro.dataplane.virtualization import physical_table_name
from repro.rng import make_rng


class NFDefinition(abc.ABC):
    """One NF type in the provider catalog."""

    #: Unique name (matches the catalog in :mod:`repro.core.spec`).
    name: str = ""
    #: 1-based type id aligned with the default catalog ordering.
    type_id: int = 0

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def match_fields(self) -> list[MatchField]:
        """NF-specific match key components (without tenant/pass)."""

    @abc.abstractmethod
    def generate_rules(
        self, rng: int | np.random.Generator | None, count: int
    ) -> list[TableEntry]:
        """``count`` plausible tenant rules (without tenant/pass fields)."""

    # ------------------------------------------------------------------
    def make_physical_table(self, stage: int) -> MatchActionTable:
        """The virtualized physical table for this NF at ``stage``:
        tenant/pass classifier fields + the NF's own key, defaulting to the
        §IV "No-Ops" forward-to-next-stage rule."""
        key = [
            MatchField("tenant_id", MatchKind.EXACT),
            MatchField("pass_id", MatchKind.EXACT),
            *self.match_fields(),
        ]
        return MatchActionTable(
            name=physical_table_name(self.name, stage),
            key=key,
            default_action="no_op",
        )

    def p4_tables(self) -> list[tuple[str, list[str], list[str]]]:
        """Logical P4 table structure as ``(table, reads, writes)`` triples
        for dependency analysis.  Default: one big table reading the NF's
        match fields and writing nothing."""
        return [(f"tab_{self.name}", [f.name for f in self.match_fields()], [])]

    # ------------------------------------------------------------------
    def _rng(self, rng) -> np.random.Generator:
        return make_rng(rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, type_id={self.type_id})"
