"""Library of P4-style network functions.

Each NF type in the provider catalog (:func:`repro.core.spec.default_nf_catalog`)
has a definition here: how to build its physical match-action table for a
stage (with the SFP tenant/pass classifier fields prepended), how to express
its logic as a multi-table P4 program for the :mod:`repro.p4` layer, and a
seeded generator of realistic tenant rule sets.
"""

from repro.nfs.base import NFDefinition
from repro.nfs.registry import (
    NF_REGISTRY,
    get_nf,
    install_layout,
    install_physical_nf,
    nf_names,
)

__all__ = [
    "NFDefinition",
    "NF_REGISTRY",
    "get_nf",
    "install_layout",
    "install_physical_nf",
    "nf_names",
]
