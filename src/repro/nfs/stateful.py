"""Stateful NF implementations backed by real switch externs.

The catalog's :class:`~repro.nfs.rate_limiter.RateLimiter` and
:class:`~repro.nfs.misc.Monitor` use simplified per-packet scratch state so
their rules stay plain data.  These variants are the §VII "NF states" story
done properly: each *instance* owns SRAM-resident extern state
(:class:`~repro.dataplane.registers.MeterArray` /
:class:`~repro.dataplane.registers.CounterArray`) whose fixed footprint is
declared up front, and its rules bind the extern by reference.

They are deliberately instance-scoped (one object per installed NF) rather
than registry entries: extern bindings are runtime objects, not serializable
rule data.
"""

from __future__ import annotations

import numpy as np

from repro.dataplane.registers import CounterArray, MeterArray
from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.errors import DataPlaneError
from repro.nfs.base import NFDefinition
from repro.rng import make_rng


class MeteredRateLimiter(NFDefinition):
    """A rate limiter whose buckets live in a :class:`MeterArray`.

    ``slots`` aggregates (match rules) share the meter array; each generated
    rule polices one slot at ``committed_bps`` with 2x peak.
    """

    name = "metered_rate_limiter"
    type_id = 5  # same catalog slot as the stateless limiter

    def __init__(
        self,
        slots: int = 64,
        committed_bps: float = 1e9,
        burst_bytes: float = 32_000.0,
    ) -> None:
        if slots < 1:
            raise DataPlaneError("need at least one meter slot")
        self.slots = slots
        self.meter = MeterArray(
            f"{self.name}_meter",
            size=slots,
            committed_bps=committed_bps,
            burst_bytes=burst_bytes,
        )

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("src_ip", MatchKind.TERNARY),
            MatchField("protocol", MatchKind.EXACT),
        ]

    @property
    def state_bits(self) -> int:
        """Declared SRAM footprint of the meter state (2 buckets + stamp
        per slot, 64 bits each) — what §VII says must be fixed up front."""
        return self.slots * 3 * 64

    def state_entries(self, rule_bits: int = 64) -> int:
        """The state footprint in rule-entry units, for
        :func:`repro.core.extensions.account_nf_state`."""
        return -(-self.state_bits // rule_bits)

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = make_rng(rng)
        rules: list[TableEntry] = []
        for i in range(count):
            src = int(0x0A000000 + rng.integers(0, 2**24))
            rules.append(
                TableEntry(
                    match={"src_ip": (src, 0xFFFFFF00), "protocol": 6},
                    action="meter_police",
                    params={"meter": self.meter, "index": i % self.slots},
                )
            )
        return rules


class ExternMonitor(NFDefinition):
    """Per-aggregate byte/packet accounting in a :class:`CounterArray`."""

    name = "extern_monitor"
    type_id = 10  # same catalog slot as the scratch-space monitor

    def __init__(self, slots: int = 128) -> None:
        if slots < 1:
            raise DataPlaneError("need at least one counter slot")
        self.slots = slots
        self.counters = CounterArray(f"{self.name}_counters", size=slots)

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("dst_ip", MatchKind.TERNARY),
            MatchField("protocol", MatchKind.EXACT),
        ]

    @property
    def state_bits(self) -> int:
        return self.slots * 2 * 64  # packet + byte cell per slot

    def state_entries(self, rule_bits: int = 64) -> int:
        """State footprint in rule-entry units (for NF-state accounting)."""
        return -(-self.state_bits // rule_bits)

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = make_rng(rng)
        rules: list[TableEntry] = []
        for i in range(count):
            dst = int(0x0A000000 + rng.integers(0, 2**24))
            rules.append(
                TableEntry(
                    match={
                        "dst_ip": (dst, 0xFFFFFF00),
                        "protocol": int(rng.choice(np.array([6, 17]))),
                    },
                    action="count_extern",
                    params={"counter": self.counters, "index": i % self.slots},
                )
            )
        return rules
