"""The remaining catalog NFs: VPN gateway, cache index, DDoS detector,
monitor.  Functionally thin (match + mark/count/forward actions) but with
realistic match keys and rule shapes, so placement and virtualization
experiments exercise ten genuinely distinct table layouts."""

from __future__ import annotations

import numpy as np

from repro.dataplane.table import MatchField, MatchKind, TableEntry
from repro.nfs.base import NFDefinition


class VPNGateway(NFDefinition):
    """IPsec-style site gateway: match remote subnets, rewrite to the
    tunnel endpoint (modeled as a destination rewrite)."""

    name = "vpn_gateway"
    type_id = 7

    def match_fields(self) -> list[MatchField]:
        return [MatchField("dst_ip", MatchKind.LPM)]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules = []
        for _ in range(count):
            prefix = int(0xAC100000 + (rng.integers(0, 2**12) << 8))  # 172.16/12 subnets
            endpoint = int(0xCB007100 + rng.integers(0, 2**8))        # 203.0.113/24
            rules.append(
                TableEntry(
                    match={"dst_ip": (prefix, 24)},
                    action="set_dst",
                    params={"dst_ip": endpoint},
                )
            )
        return rules


class CacheIndex(NFDefinition):
    """NetCache-style index: exact-match on the (server, port) serving a
    hot key partition; hit marks the packet for on-switch service."""

    name = "cache_index"
    type_id = 8

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("dst_ip", MatchKind.EXACT),
            MatchField("dst_port", MatchKind.EXACT),
        ]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules = []
        for idx in range(count):
            server = int(0x0AC80000 + rng.integers(0, 2**14))
            rules.append(
                TableEntry(
                    match={"dst_ip": server, "dst_port": 11211},
                    action="count",
                    params={"counter": f"cache_hit_{idx % 64}"},
                )
            )
        return rules


class DDoSDetector(NFDefinition):
    """Threshold heavy-hitter detector: suspicious sources get dropped."""

    name = "ddos_detector"
    type_id = 9

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("src_ip", MatchKind.TERNARY),
            MatchField("dst_port", MatchKind.EXACT),
        ]

    def p4_tables(self) -> list[tuple[str, list[str], list[str]]]:
        return [(f"tab_{self.name}", ["src_ip", "dst_port"], ["hh_sketch"])]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules = []
        for _ in range(count):
            src = int(rng.integers(0, 2**32))
            rules.append(
                TableEntry(
                    match={"src_ip": (src, 0xFFFFFF00), "dst_port": 80},
                    action="drop",
                    priority=20,
                )
            )
        return rules


class Monitor(NFDefinition):
    """Per-aggregate byte/packet counters."""

    name = "monitor"
    type_id = 10

    def match_fields(self) -> list[MatchField]:
        return [
            MatchField("dst_ip", MatchKind.TERNARY),
            MatchField("protocol", MatchKind.EXACT),
        ]

    def generate_rules(self, rng, count: int) -> list[TableEntry]:
        rng = self._rng(rng)
        rules = []
        for idx in range(count):
            dst = int(0x0A000000 + rng.integers(0, 2**24))
            rules.append(
                TableEntry(
                    match={"dst_ip": (dst, 0xFFFFFF00), "protocol": int(rng.choice(np.array([6, 17])))},
                    action="count",
                    params={"counter": f"agg_{idx % 128}"},
                )
            )
        return rules
