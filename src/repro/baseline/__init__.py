"""Software (DPDK-on-server) SFC baseline.

The paper's Fig. 4/5 baseline runs the same 4-NF chain on a DPDK-accelerated
server (16 of 56 cores).  No testbed is available here, so this package
models the two mechanisms those figures measure:

* the CPU chain is **packets-per-second bound** — throughput scales with
  packet size and caps at the core budget's pps, reaching line rate only for
  near-MTU packets (Fig. 4);
* software processing adds **per-NF CPU latency plus NIC/PCIe crossings**,
  ≈3x the switch ASIC (Fig. 5), growing further near saturation (queueing).

Calibration targets (from §VI-B): 64 B packets ≥10x slower than the switch,
100 Gbps reached only at 1500 B, average latency ≈1151 ns, 722 MB memory and
30.35 % CPU (17/56 cores) for the 4-NF chain.
"""

from repro.baseline.cpu import CpuSpec, ServerSpec
from repro.baseline.dpdk import DpdkChainModel

__all__ = ["CpuSpec", "DpdkChainModel", "ServerSpec"]
