"""DPDK run-to-completion SFC chain model.

Throughput: the worker cores process ``max_pps`` packets/s regardless of
size, so achieved Gbps = min(offered, NIC line rate, max_pps * wire size).
At 64 B the chain is deeply pps-bound (>=10x below the switch); at 1500 B
the same pps clears 100 Gbps — reproducing Fig. 4's crossover.

Latency: NIC/PCIe crossings plus per-NF software time, with an M/M/1-style
queueing inflation as offered load approaches the pps capacity (kept mild:
the paper reports averages under saturating load, ~1151 ns for 4 NFs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.baseline.cpu import ServerSpec
from repro.errors import WorkloadError


@dataclass(frozen=True)
class DpdkChainModel:
    """Performance model of one software SFC deployment."""

    server: ServerSpec = ServerSpec()
    chain_length: int = 4
    #: Fixed NIC + PCIe + wire time per direction pair (ns).
    nic_latency_ns: float = 591.0
    #: Software processing time per NF (ns) at low load.
    nf_latency_ns: float = 140.0
    #: Cap on the queueing inflation factor (keeps the model finite at
    #: exactly-saturating load).
    max_queue_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.chain_length < 0:
            raise WorkloadError("chain length must be >= 0")

    # ------------------------------------------------------------------
    @property
    def max_pps(self) -> float:
        return self.server.max_pps(self.chain_length)

    def throughput_gbps(self, offered_gbps: float, packet_bytes: int) -> float:
        """Achieved throughput for fixed-size traffic at ``offered_gbps``."""
        if offered_gbps < 0:
            raise WorkloadError("offered load must be >= 0")
        offered_pps = units.gbps_to_pps(offered_gbps, packet_bytes)
        achieved_pps = min(offered_pps, self.max_pps)
        return min(
            units.pps_to_gbps(achieved_pps, packet_bytes),
            offered_gbps,
            self.server.nic_gbps,
        )

    def throughput_mpps(self, offered_gbps: float, packet_bytes: int) -> float:
        """Achieved packet rate (Mpps) — Fig. 4's alternate axis."""
        achieved = self.throughput_gbps(offered_gbps, packet_bytes)
        return units.mpps(units.gbps_to_pps(achieved, packet_bytes))

    # ------------------------------------------------------------------
    def latency_ns(self, offered_gbps: float = 0.0, packet_bytes: int = 64) -> float:
        """Average per-packet latency at the given load.

        Base = NIC/PCIe + chain processing; as utilization rho -> 1 the
        processing term inflates by 1/(1-rho), capped.
        """
        base = self.nic_latency_ns + self.chain_length * self.nf_latency_ns
        if offered_gbps <= 0:
            return base
        rho = min(
            units.gbps_to_pps(offered_gbps, packet_bytes) / self.max_pps, 1.0
        )
        factor = min(1.0 / max(1.0 - rho, 1e-9), self.max_queue_factor)
        processing = self.chain_length * self.nf_latency_ns
        return self.nic_latency_ns + processing * factor

    # ------------------------------------------------------------------
    def resource_report(self) -> dict[str, float]:
        """The §VI-B resource footprint the switch offload saves."""
        return {
            "memory_mb": self.server.sfc_memory_mb,
            "cpu_utilization": self.server.cpu_utilization,
            "cores_used": float(self.server.worker_cores + self.server.master_cores),
        }
