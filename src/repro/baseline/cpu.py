"""Server and CPU cost specifications for the software baseline."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class CpuSpec:
    """One CPU's clock and the per-packet cycle costs of the NF runtime.

    Cycle costs follow the usual run-to-completion decomposition: a fixed
    I/O cost per packet (mbuf handling, RX/TX bursts) plus a per-NF
    processing cost.  Defaults are calibrated so a 16-core 2.2 GHz budget
    running a 4-NF chain lands on the paper's Fig. 4 shape (see
    :mod:`repro.baseline.dpdk`).
    """

    freq_hz: float = 2.2e9
    io_cycles_per_packet: float = 900.0
    nf_cycles_per_packet: float = 650.0

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise WorkloadError("CPU frequency must be positive")
        if self.io_cycles_per_packet < 0 or self.nf_cycles_per_packet < 0:
            raise WorkloadError("cycle costs must be non-negative")

    def cycles_per_packet(self, chain_length: int) -> float:
        """Per-packet cycles for a chain of ``chain_length`` NFs."""
        if chain_length < 0:
            raise WorkloadError("chain length must be >= 0")
        return self.io_cycles_per_packet + chain_length * self.nf_cycles_per_packet


@dataclass(frozen=True)
class ServerSpec:
    """The testbed server (§VI-A): 4x Xeon Gold 5120T, 56 usable cores,
    192 GB RAM, 100 Gbps ConnectX-5."""

    total_cores: int = 56
    worker_cores: int = 16
    #: DPDK master/management core (the paper counts 17/56 total).
    master_cores: int = 1
    cpu: CpuSpec = CpuSpec()
    nic_gbps: float = 100.0
    #: Measured by the paper for the 4-NF chain.
    sfc_memory_mb: float = 722.0

    def __post_init__(self) -> None:
        if not 0 < self.worker_cores + self.master_cores <= self.total_cores:
            raise WorkloadError(
                f"{self.worker_cores}+{self.master_cores} cores exceed "
                f"{self.total_cores}"
            )

    @property
    def cpu_utilization(self) -> float:
        """Fraction of server cores the SFC deployment occupies (the paper's
        30.35 % = 17/56)."""
        return (self.worker_cores + self.master_cores) / self.total_cores

    def max_pps(self, chain_length: int) -> float:
        """Aggregate worker packet rate for a chain of ``chain_length`` NFs."""
        return self.worker_cores * self.cpu.freq_hz / self.cpu.cycles_per_packet(
            chain_length
        )
