"""Exception hierarchy for the SFP reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library failures without accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """Raised when an optimization model is built or used incorrectly
    (duplicate variable names, mismatched model ownership, missing
    objective, ...)."""


class SolverError(ReproError):
    """Raised when a solver backend fails in a way that is not simply an
    infeasible/unbounded status (e.g. numerical breakdown, unknown backend)."""


class InfeasibleError(SolverError):
    """Raised by callers who required a feasible solution and got none."""


class UnboundedError(SolverError):
    """Raised when a model with an unbounded objective is solved and the
    caller required a finite optimum."""


class DataPlaneError(ReproError):
    """Raised on invalid data-plane operations (bad table entries,
    out-of-resource installs, malformed packets)."""


class ResourceExhaustedError(DataPlaneError):
    """Raised when an install would exceed a stage's SRAM blocks/entries or
    the pipeline's recirculation budget."""


class PlacementError(ReproError):
    """Raised when a placement solution violates the problem constraints or
    when a placement request cannot be expressed (e.g. unknown NF type)."""


class WorkloadError(ReproError):
    """Raised on invalid workload-generator parameters."""


class DurabilityError(ReproError):
    """Raised on write-ahead-log / checkpoint / recovery failures (corrupt
    manifests, incompatible checkpoints, unrecoverable log state)."""


class FencedError(DurabilityError):
    """Raised when a deposed primary — one whose lease epoch is no longer
    current — attempts a fenced operation: a WAL append or a frontend
    write.  The operation was **not** committed; the caller must redirect
    to the current primary.  This is what makes split-brain unable to
    commit: losing the lease turns every durability path into a fast
    failure instead of a silent divergent write."""


class ScenarioError(ReproError):
    """Raised on invalid scenario/campaign specs (malformed load curves,
    fault schedules referencing unknown switches, unparseable spec files)."""


class FrontendError(ReproError):
    """Raised on invalid front-end requests or lifecycle misuse (malformed
    intents, submitting to a closed queue, stopping a stopped pool)."""


class QueueFullError(FrontendError):
    """Raised when an intent queue refuses a submission — the per-tenant
    FIFO or the global bound is full.  The HTTP server maps this to 429
    (backpressure); in-process callers retry or shed load themselves."""
