"""Extensions the paper sketches in §III and §VII.

* **Sub-NF expansion** (§III "If one NF spans multiple stages, it is viewed
  as several sub-NFs"; §VII "Multiple-table NFs").  Given per-type stage
  spans — typically produced by the :mod:`repro.p4` allocator from the NF's
  real table structure — each logical NF occupying ``span`` stages is
  rewritten as ``span`` consecutive sub-NFs of synthetic types, and the
  physical catalog grows accordingly.  The expanded instance solves with the
  unmodified placement machinery; :func:`collapse_assignment` maps a
  solution back to original chain positions.

* **NF state accounting** (§VII "NF States ... SFP could be further
  extended to account for NF states whose size should be fixed as well as
  MATs").  States live in the same SRAM as the match-action tables, so a
  per-type fixed state footprint is accounted by charging it as additional
  entries on every logical NF of that type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.placement import Placement
from repro.core.spec import SFC, ProblemInstance
from repro.errors import PlacementError


# ----------------------------------------------------------------------
# NF state accounting
# ----------------------------------------------------------------------
def account_nf_state(
    instance: ProblemInstance, state_entries_by_type: dict[int, int]
) -> ProblemInstance:
    """Charge each logical NF its type's fixed state footprint (in entry
    units, i.e. ``state_bits / b``) on top of its rules.

    The placement model's memory constraint then covers rules *and* state,
    exactly the §VII extension.
    """
    for type_id, extra in state_entries_by_type.items():
        if type_id < 1 or type_id > instance.num_types:
            raise PlacementError(f"state for unknown NF type {type_id}")
        if extra < 0:
            raise PlacementError(f"negative state footprint for type {type_id}")
    new_sfcs = []
    for sfc in instance.sfcs:
        rules = tuple(
            r + state_entries_by_type.get(t, 0)
            for t, r in zip(sfc.nf_types, sfc.rules)
        )
        new_sfcs.append(
            SFC(
                name=sfc.name,
                tenant_id=sfc.tenant_id,
                nf_types=sfc.nf_types,
                rules=rules,
                bandwidth_gbps=sfc.bandwidth_gbps,
            )
        )
    return instance.with_sfcs(new_sfcs)


# ----------------------------------------------------------------------
# Sub-NF expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubNFExpansion:
    """Bookkeeping of an expansion: the new instance plus the maps needed to
    interpret its solutions in terms of the original one."""

    original: ProblemInstance
    expanded: ProblemInstance
    #: original type id -> tuple of synthetic sub-type ids (len = span).
    subtypes: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: per (chain, original position) -> slice of expanded positions.
    position_map: dict[tuple[int, int], tuple[int, ...]] = field(default_factory=dict)


def expand_multi_stage_nfs(
    instance: ProblemInstance, spans: dict[int, int]
) -> SubNFExpansion:
    """Expand NF types spanning several stages into chains of sub-NFs.

    ``spans`` maps type id -> number of stages the type's tables occupy
    (types omitted or with span 1 are untouched).  Each affected logical
    NF's rules are attributed to its first sub-NF (the "big table"; the
    paper notes the auxiliary tables contribute little to resource
    contention), while the later sub-NFs get zero-entry placeholders that
    still occupy a stage slot and preserve ordering.
    """
    for type_id, span in spans.items():
        if type_id < 1 or type_id > instance.num_types:
            raise PlacementError(f"span for unknown NF type {type_id}")
        if span < 1:
            raise PlacementError(f"span for type {type_id} must be >= 1")

    subtypes: dict[int, tuple[int, ...]] = {}
    next_type = instance.num_types + 1
    for i in range(1, instance.num_types + 1):
        span = spans.get(i, 1)
        if span == 1:
            subtypes[i] = (i,)
        else:
            extra = tuple(range(next_type, next_type + span - 1))
            subtypes[i] = (i,) + extra
            next_type += span - 1
    total_types = next_type - 1

    position_map: dict[tuple[int, int], tuple[int, ...]] = {}
    new_sfcs: list[SFC] = []
    for l, sfc in enumerate(instance.sfcs):
        types: list[int] = []
        rules: list[int] = []
        for j, (t, r) in enumerate(zip(sfc.nf_types, sfc.rules)):
            parts = subtypes[t]
            start = len(types)
            types.extend(parts)
            rules.append(r)
            rules.extend(0 for _ in parts[1:])
            position_map[(l, j)] = tuple(range(start, start + len(parts)))
        new_sfcs.append(
            SFC(
                name=sfc.name,
                tenant_id=sfc.tenant_id,
                nf_types=tuple(types),
                rules=tuple(rules),
                bandwidth_gbps=sfc.bandwidth_gbps,
            )
        )

    expanded = ProblemInstance(
        switch=instance.switch,
        sfcs=tuple(new_sfcs),
        num_types=total_types,
        max_recirculations=instance.max_recirculations,
    )
    return SubNFExpansion(
        original=instance,
        expanded=expanded,
        subtypes=subtypes,
        position_map=position_map,
    )


def collapse_assignment(
    expansion: SubNFExpansion, placement: Placement
) -> dict[int, tuple[int, ...]]:
    """Map an expanded placement's assignments back to original chain
    positions: each original NF's stage is its *first* sub-NF's stage.

    Returns ``{chain index: stages per original position}`` for placed
    chains.  (A full :class:`Placement` over the original instance is not
    reconstructed because the original catalog has no physical layout for
    the synthetic sub-types.)
    """
    if placement.instance is not expansion.expanded:
        raise PlacementError("placement does not belong to this expansion")
    out: dict[int, tuple[int, ...]] = {}
    for l, asg in placement.assignments.items():
        original = expansion.original.sfcs[l]
        stages = []
        for j in range(original.length):
            first = expansion.position_map[(l, j)][0]
            stages.append(asg.stages[first])
        out[l] = tuple(stages)
    return out
