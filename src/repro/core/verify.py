"""Independent feasibility checking for placements.

:func:`check_placement` re-derives every paper constraint directly from a
:class:`~repro.core.placement.Placement` — *without* going through the MILP
encoding — so it acts as an oracle for all three algorithms (ILP extraction,
randomized rounding's ``Verify_vars``, greedy) and as the property the
hypothesis tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import Placement


def check_placement(
    placement: Placement,
    require_all_types: bool = True,
    reserve_physical_block: bool = True,
) -> list[str]:
    """Return human-readable violations (empty list = feasible).

    Checks, in paper order:

    * assignments reference installed physical NFs of the right type (9),
    * virtual stages within ``K`` and strictly increasing (8) — increase is
      already enforced by :class:`NFAssignment`, the range is checked here,
    * per-stage SRAM blocks within ``B`` under the placement's accounting
      variant (11/24 or 25), optionally reserving a block per installed
      physical NF,
    * backplane capacity with recirculation amplification (12),
    * optionally, every type installed somewhere (4).
    """
    inst = placement.instance
    switch = inst.switch
    S, K = switch.stages, inst.virtual_stages
    problems: list[str] = []

    if require_all_types:
        missing = [
            i + 1 for i in range(inst.num_types) if not placement.physical[i].any()
        ]
        if missing:
            problems.append(f"types {missing} not installed on any stage (constraint 4)")

    for l, asg in sorted(placement.assignments.items()):
        sfc = inst.sfcs[l]
        for j, k in enumerate(asg.stages):
            if not 1 <= k <= K:
                problems.append(
                    f"SFC {l} position {j}: virtual stage {k} outside [1, {K}]"
                )
                continue
            i = sfc.nf_types[j] - 1
            if not placement.physical[i, (k - 1) % S]:
                problems.append(
                    f"SFC {l} position {j}: type {i + 1} not installed on "
                    f"physical stage {(k - 1) % S} (constraint 9)"
                )

    # Memory (24/25).  blocks_by_type_stage applies the right variant; an
    # installed physical NF reserves at least one block (its first logical
    # NF's rules land inside that reservation, hence max, not sum).
    per_type = placement.blocks_by_type_stage()
    if reserve_physical_block:
        per_type = np.maximum(per_type, placement.physical.astype(np.int64))
    blocks = per_type.sum(axis=0)
    over = np.flatnonzero(blocks > switch.blocks_per_stage)
    for s in over:
        problems.append(
            f"stage {s}: {int(blocks[s])} blocks > capacity "
            f"{switch.blocks_per_stage} (memory constraint)"
        )

    load = placement.backplane_gbps
    if load > switch.capacity_gbps + 1e-9:
        problems.append(
            f"backplane load {load:.1f} Gbps exceeds capacity "
            f"{switch.capacity_gbps:.1f} Gbps (constraint 12)"
        )
    return problems
