"""Mutable pipeline resource state shared by the greedy placer, the rounding
algorithm's constructive assignment, and the runtime-update engine.

Tracks, per (NF type, physical stage): whether a physical NF is installed and
how many rule entries the logical NFs mapped there consume, plus the
backplane bandwidth in use — i.e. exactly the state the data plane's control
API would mirror.  Supports both memory-accounting variants (Eq. 24
consolidation / Eq. 25 per-NF blocks) and cheap snapshot/rollback, which the
greedy algorithm uses for its try-then-commit placement attempts.

Performance note (this sits in the innermost loop of every constructive
placement: ``fits`` is probed for each candidate stage of each NF of each
chain): the per-(type, stage) block charge and the per-stage totals are
maintained *incrementally* on every mutation instead of being recomputed
from the entry matrix, making ``fits``/``blocks_needed_for`` O(1).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.core.placement import NFAssignment, Placement
from repro.core.spec import ProblemInstance
from repro.errors import PlacementError


def stable_digest(payload: object) -> str:
    """A short stable blake2b hex digest of a JSON-native payload.

    The payload is serialized canonically (sorted keys, no whitespace), so
    equal values always hash equal; floats must already be in a bit-exact
    encoding (use ``float.hex()``) when bit-identity matters.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class _Snapshot:
    physical: np.ndarray
    entries: np.ndarray
    nf_blocks: np.ndarray
    charged: np.ndarray
    stage_blocks: np.ndarray
    backplane_gbps: float


class LinkState:
    """Capacity accounting for one inter-switch fabric link.

    The fabric orchestrator charges a link with the bandwidth of every
    stitched chain whose segments are split across its endpoints.  The
    mechanism deliberately mirrors the switch-backplane accounting above
    (:meth:`PipelineState.add_backplane` / ``release_backplane``): same
    commit/release pair, same capacity check with the same tolerance, so a
    link binds exactly the way Equation (12) binds a backplane — only the
    capacity constant differs.
    """

    def __init__(self, capacity_gbps: float) -> None:
        if capacity_gbps <= 0:
            raise PlacementError(
                f"link capacity must be positive, got {capacity_gbps}"
            )
        self.capacity_gbps = float(capacity_gbps)
        #: Gbps committed to chains stitched across this link.
        self.load_gbps = 0.0

    @property
    def residual_gbps(self) -> float:
        """Uncommitted link bandwidth."""
        return self.capacity_gbps - self.load_gbps

    def fits(self, gbps: float) -> bool:
        """Whether another ``gbps`` of stitched traffic fits this link."""
        return self.load_gbps + gbps <= self.capacity_gbps + 1e-9

    def add_load(self, gbps: float) -> None:
        """Commit stitched-chain bandwidth; raises beyond capacity."""
        if not self.fits(gbps):
            raise PlacementError(
                f"link capacity exceeded: {self.load_gbps + gbps:.1f} "
                f"> {self.capacity_gbps:.1f} Gbps"
            )
        self.load_gbps += gbps

    def release_load(self, gbps: float) -> None:
        """Return stitched-chain bandwidth (tenant departure)."""
        self.load_gbps = max(0.0, self.load_gbps - gbps)

    def digest(self) -> str:
        """Stable blake2b digest of the link's exact state.  The load float
        is hashed via ``float.hex()``, so two digests are equal iff the
        loads are bit-identical — what invariant checks and crash-recovery
        acceptance compare instead of deep structures."""
        return stable_digest(
            {
                "capacity_gbps": self.capacity_gbps.hex(),
                "load_gbps": self.load_gbps.hex(),
            }
        )

    def __repr__(self) -> str:
        return (
            f"LinkState(load={self.load_gbps:.1f}/"
            f"{self.capacity_gbps:.1f} Gbps)"
        )


class PipelineState:
    """Resource occupancy of the switch pipeline during placement."""

    def __init__(
        self,
        instance: ProblemInstance,
        consolidate: bool = True,
        reserve_physical_block: bool = True,
    ) -> None:
        self.instance = instance
        self.switch = instance.switch
        self.consolidate = consolidate
        self.reserve_physical_block = reserve_physical_block
        I, S = instance.num_types, instance.switch.stages
        #: x_ik — installed physical NFs.  Assign via :attr:`physical`'s
        #: setter-like :meth:`set_physical_layout` to keep caches coherent.
        self._physical = np.zeros((I, S), dtype=bool)
        #: Rule entries per (type, physical stage) (consolidated accounting).
        self.entries = np.zeros((I, S), dtype=np.int64)
        #: Whole blocks charged per (type, stage) under Eq. 25 accounting.
        self.nf_blocks = np.zeros((I, S), dtype=np.int64)
        #: Cached block charge per (type, stage) under the active variant.
        self._charged = np.zeros((I, S), dtype=np.int64)
        #: Cached per-stage totals of ``_charged``.
        self._stage_blocks = np.zeros(S, dtype=np.int64)
        #: Backplane Gbps in use, counting recirculation passes (Eq. 12 LHS).
        self.backplane_gbps = 0.0

    # ------------------------------------------------------------------
    # Physical layout access (kept cache-coherent)
    # ------------------------------------------------------------------
    @property
    def physical(self) -> np.ndarray:
        return self._physical

    @physical.setter
    def physical(self, layout: np.ndarray) -> None:
        layout = np.asarray(layout, dtype=bool)
        if layout.shape != self._physical.shape:
            raise PlacementError(
                f"layout shape {layout.shape} != {self._physical.shape}"
            )
        self._physical = layout.copy()
        self._recompute_all()

    # ------------------------------------------------------------------
    # Block accounting
    # ------------------------------------------------------------------
    def _charge_of(self, i: int, s: int) -> int:
        epb = self.switch.entries_per_block
        if self.consolidate:
            blocks = -(-int(self.entries[i, s]) // epb)
        else:
            blocks = int(self.nf_blocks[i, s])
        if self.reserve_physical_block and self._physical[i, s]:
            blocks = max(blocks, 1)
        return blocks

    def _refresh(self, i: int, s: int) -> None:
        new = self._charge_of(i, s)
        self._stage_blocks[s] += new - self._charged[i, s]
        self._charged[i, s] = new

    def _recompute_all(self) -> None:
        epb = self.switch.entries_per_block
        if self.consolidate:
            charged = -(-self.entries // epb)
        else:
            charged = self.nf_blocks.copy()
        if self.reserve_physical_block:
            charged = np.maximum(charged, self._physical.astype(np.int64))
        self._charged = charged
        self._stage_blocks = charged.sum(axis=0)

    def blocks_at_stage(self, s: int) -> int:
        """Blocks currently charged on physical stage ``s``."""
        return int(self._stage_blocks[s])

    def free_blocks(self, s: int) -> int:
        """Uncommitted blocks remaining on physical stage ``s``."""
        return self.switch.blocks_per_stage - int(self._stage_blocks[s])

    def blocks_needed_for(self, i: int, s: int, rules: int) -> int:
        """Extra blocks that adding a logical NF (type ``i``, ``rules``
        entries) to stage ``s`` would consume, including installing the
        physical NF if absent."""
        epb = self.switch.entries_per_block
        if self.consolidate:
            new_blocks = -(-(int(self.entries[i, s]) + rules) // epb)
        else:
            new_blocks = int(self.nf_blocks[i, s]) + self.switch.blocks_for_entries(rules)
        if self.reserve_physical_block:
            new_blocks = max(new_blocks, 1)
        return new_blocks - int(self._charged[i, s])

    def fits(self, i: int, s: int, rules: int) -> bool:
        """Whether a logical NF of type ``i`` with ``rules`` entries fits on
        stage ``s`` (installing the physical NF if needed)."""
        return self.blocks_needed_for(i, s, rules) <= self.free_blocks(s)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_logical_nf(self, i: int, s: int, rules: int) -> None:
        """Install (if needed) the physical NF and copy a logical NF's rules
        onto stage ``s``.  Raises if it does not fit."""
        if not self.fits(i, s, rules):
            raise PlacementError(
                f"type {i + 1} with {rules} rules does not fit stage {s}"
            )
        self._physical[i, s] = True
        self.entries[i, s] += rules
        self.nf_blocks[i, s] += self.switch.blocks_for_entries(rules)
        self._refresh(i, s)

    def remove_logical_nf(self, i: int, s: int, rules: int) -> None:
        """Release a logical NF's rules (the physical NF stays installed, as
        in the paper's data plane where physical NFs are static)."""
        if self.entries[i, s] < rules:
            raise PlacementError(
                f"removing {rules} rules from (type {i + 1}, stage {s}) "
                f"which only holds {self.entries[i, s]}"
            )
        self.entries[i, s] -= rules
        self.nf_blocks[i, s] -= self.switch.blocks_for_entries(rules)
        self._refresh(i, s)

    def install_physical(self, i: int, s: int) -> None:
        """Install a physical NF with no tenant rules yet."""
        if not self._physical[i, s]:
            if self.reserve_physical_block and self.free_blocks(s) < 1:
                raise PlacementError(
                    f"no free block on stage {s} to install type {i + 1}"
                )
            self._physical[i, s] = True
            self._refresh(i, s)

    def add_backplane(self, gbps: float) -> None:
        """Commit backplane bandwidth; raises beyond capacity (Eq. 12)."""
        if self.backplane_gbps + gbps > self.switch.capacity_gbps + 1e-9:
            raise PlacementError(
                f"backplane capacity exceeded: {self.backplane_gbps + gbps:.1f} "
                f"> {self.switch.capacity_gbps:.1f} Gbps"
            )
        self.backplane_gbps += gbps

    def release_backplane(self, gbps: float) -> None:
        """Return backplane bandwidth (tenant departure)."""
        self.backplane_gbps = max(0.0, self.backplane_gbps - gbps)

    def digest(self) -> str:
        """Stable blake2b digest over the sorted snapshot of the full
        resource state (physical layout, entry/block matrices, backplane).

        The backplane float is hashed via ``float.hex()``, so two digests
        are equal iff the states are **bit-identical** — the controller's
        churn invariant and the durability subsystem's recovery acceptance
        compare this short hash instead of deep structures.

        The fields are hashed in a fixed sorted order over their raw array
        bytes (shape included) rather than through a JSON round-trip: the
        WAL journals one digest per committed op, so this sits on the
        controller's hot path.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(self.backplane_gbps.hex().encode("ascii"))
        h.update(b"|%d%d|" % (self.consolidate, self.reserve_physical_block))
        for arr in (
            self.entries.astype(np.int64, copy=False),
            self.nf_blocks.astype(np.int64, copy=False),
            self._physical,
        ):
            h.update(str(arr.shape).encode("ascii"))
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Snapshot / rollback (greedy's Try_placement)
    # ------------------------------------------------------------------
    def snapshot(self) -> _Snapshot:
        """Capture the full resource state for try-then-commit placement."""
        return _Snapshot(
            self._physical.copy(),
            self.entries.copy(),
            self.nf_blocks.copy(),
            self._charged.copy(),
            self._stage_blocks.copy(),
            self.backplane_gbps,
        )

    def restore(self, snap: _Snapshot) -> None:
        """Roll back to a snapshot (greedy's failed Try_placement)."""
        self._physical = snap.physical.copy()
        self.entries = snap.entries.copy()
        self.nf_blocks = snap.nf_blocks.copy()
        self._charged = snap.charged.copy()
        self._stage_blocks = snap.stage_blocks.copy()
        self.backplane_gbps = snap.backplane_gbps

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_placement(
        cls, placement: Placement, reserve_physical_block: bool = True
    ) -> "PipelineState":
        """Reconstruct the resource state an existing placement occupies."""
        state = cls(
            placement.instance,
            consolidate=placement.consolidate,
            reserve_physical_block=reserve_physical_block,
        )
        state._physical = placement.physical.copy()
        S = placement.instance.switch.stages
        for l, asg in placement.assignments.items():
            sfc = placement.instance.sfcs[l]
            for j, k in enumerate(asg.stages):
                i = sfc.nf_types[j] - 1
                s = (k - 1) % S
                state.entries[i, s] += sfc.rules[j]
                state.nf_blocks[i, s] += placement.instance.switch.blocks_for_entries(
                    sfc.rules[j]
                )
            state.backplane_gbps += asg.passes(S) * sfc.bandwidth_gbps
        state._recompute_all()
        return state

    def make_placement(
        self, assignments: dict[int, NFAssignment], algorithm: str
    ) -> Placement:
        """Freeze the current state + ``assignments`` into a Placement."""
        return Placement(
            instance=self.instance,
            physical=self._physical.copy(),
            assignments=dict(assignments),
            consolidate=self.consolidate,
            algorithm=algorithm,
        )
