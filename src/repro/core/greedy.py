"""The greedy baseline placer (paper §V-D, Algorithm 2).

SFC candidates are sorted by the paper's Equation (13) metric

    Metric_l = T_l / (J_l * sum_j F_jl)

("high throughput, low resource occupancy first").  Each chain is then placed
NF by NF: every logical NF goes to the *nearest next* virtual stage whose
physical NF of the right type already exists and has room; failing that, a
new physical NF is installed on the nearest next stage with a free block.
If any NF cannot be settled, or the chain's recirculation passes would
overflow the backplane capacity, the whole chain is rolled back
(Try_placement fails) and the algorithm moves on; on success the resource
state is recommitted (Resource_recompute).
"""

from __future__ import annotations

import time

from repro.core.placement import NFAssignment, Placement
from repro.core.spec import SFC, ProblemInstance
from repro.core.state import PipelineState


def sfc_metric(sfc: SFC) -> float:
    """Equation (13): bandwidth per unit of (length-weighted) rule cost."""
    denominator = sfc.length * sfc.total_rules
    if denominator == 0:
        return float("inf")  # a chain with no rules is free to host
    return sfc.bandwidth_gbps / denominator


def order_sfcs(instance: ProblemInstance) -> list[int]:
    """``Order_SFCs()`` — candidate indices, best metric first (ties broken
    by higher bandwidth, then index for determinism)."""
    return sorted(
        range(instance.num_sfcs),
        key=lambda l: (
            -sfc_metric(instance.sfcs[l]),
            -instance.sfcs[l].bandwidth_gbps,
            l,
        ),
    )


def try_place_chain(
    state: PipelineState, sfc: SFC, max_virtual_stages: int
) -> tuple[int, ...] | None:
    """``Try_placement()`` for one chain against the *current* state.

    Returns the virtual-stage assignment, or ``None`` if the chain does not
    fit.  Mutates ``state`` only on success (rollback on failure).
    """
    snap = state.snapshot()
    S = state.switch.stages
    stages: list[int] = []
    prev_k = 0
    for j in range(sfc.length):
        i = sfc.nf_types[j] - 1
        rules = sfc.rules[j]
        chosen = None
        # Lookahead bound: the remaining J-1-j NFs each need a strictly
        # later stage, so this NF may use at most stage K-(J-1-j).  Without
        # it an early NF can grab a late stage and doom the suffix.
        last_usable = max_virtual_stages - (sfc.length - 1 - j)
        # First preference: nearest next stage with this physical NF already
        # installed and enough room; second: nearest next stage where a new
        # physical NF can be installed.  A single forward scan implements
        # both "nearest next" rules of Algorithm 2, preferring existing NFs
        # at the same distance.
        for k in range(prev_k + 1, last_usable + 1):
            s = (k - 1) % S
            if state.physical[i, s] and state.fits(i, s, rules):
                chosen = k
                break
        if chosen is None:
            for k in range(prev_k + 1, last_usable + 1):
                s = (k - 1) % S
                if not state.physical[i, s] and state.fits(i, s, rules):
                    chosen = k
                    break
        if chosen is None:
            state.restore(snap)
            return None
        state.add_logical_nf(i, (chosen - 1) % S, rules)
        stages.append(chosen)
        prev_k = chosen

    passes = -(-stages[-1] // S)
    if state.backplane_gbps + passes * sfc.bandwidth_gbps > state.switch.capacity_gbps + 1e-9:
        state.restore(snap)
        return None
    state.add_backplane(passes * sfc.bandwidth_gbps)
    return tuple(stages)


def _ensure_all_types(state: PipelineState) -> None:
    """Install any catalog type missing from the pipeline (constraint 4),
    choosing the stage with the most free blocks.  Best-effort: skipped when
    no stage has room (the verifier will flag it)."""
    for i in range(state.instance.num_types):
        if state.physical[i].any():
            continue
        stages = sorted(
            range(state.switch.stages), key=lambda s: -state.free_blocks(s)
        )
        for s in stages:
            if not state.reserve_physical_block or state.free_blocks(s) >= 1:
                state.install_physical(i, s)
                break


def greedy_place(
    instance: ProblemInstance,
    consolidate: bool = True,
    reserve_physical_block: bool = True,
    require_all_types: bool = True,
    state: PipelineState | None = None,
    skip: set[int] | None = None,
) -> Placement:
    """Run Algorithm 2 over ``instance`` and return the placement.

    ``state``/``skip`` support the runtime-update path (§V-E): pass the
    resource state left behind by surviving SFCs and the indices that are
    already placed (or must not be considered).
    """
    start = time.perf_counter()
    if state is None:
        state = PipelineState(
            instance,
            consolidate=consolidate,
            reserve_physical_block=reserve_physical_block,
        )
    skip = skip or set()
    assignments: dict[int, NFAssignment] = {}
    K = instance.virtual_stages
    for l in order_sfcs(instance):
        if l in skip:
            continue
        stages = try_place_chain(state, instance.sfcs[l], K)
        if stages is not None:
            assignments[l] = NFAssignment(sfc_index=l, stages=stages)
    if require_all_types:
        _ensure_all_types(state)
    placement = state.make_placement(assignments, algorithm="greedy")
    placement.solve_seconds = time.perf_counter() - start
    return placement
