"""The *separate* (two-level) placement baseline.

§V-A motivates SFP's joint formulation: "If the two-level allocation is
considered separately, it is challenging to guarantee global optimality."
This module makes that comparison concrete — a library-level baseline that

1. fixes the physical layout first, using a heuristic (the greedy
   algorithm's layout by default, or a caller-supplied one), then
2. solves the *logical* placement optimally against that frozen layout by
   pinning every ``x_ik`` in the joint model.

The result is optimal **given** the layout, so any shortfall against the
joint ILP is attributable purely to separating the two levels — the
quantity the ablation benchmark reports.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.greedy import greedy_place
from repro.core.ilp import build_placement_model
from repro.core.placement import Placement
from repro.core.spec import ProblemInstance
from repro.errors import PlacementError
from repro.lp import solve as lp_solve


def solve_separate(
    instance: ProblemInstance,
    layout: np.ndarray | None = None,
    consolidate: bool = True,
    backend: str = "scipy",
    time_limit: float | None = None,
    **build_kwargs,
) -> Placement:
    """Two-phase placement: freeze the physical layout, then optimize the
    logical placement on it.

    ``layout`` is a boolean ``(I, S)`` matrix; defaults to the layout the
    greedy pass produces.  Raises :class:`PlacementError` when the pinned
    model yields no feasible point (e.g. the layout misses a mandatory type
    under ``require_all_types``).
    """
    start = time.perf_counter()
    if layout is None:
        layout = greedy_place(instance, consolidate=consolidate).physical
    layout = np.asarray(layout, dtype=bool)
    expected = (instance.num_types, instance.switch.stages)
    if layout.shape != expected:
        raise PlacementError(f"layout shape {layout.shape} != {expected}")

    ilp = build_placement_model(instance, consolidate=consolidate, **build_kwargs)
    for i in range(instance.num_types):
        for s in range(instance.switch.stages):
            ilp.model.add_constr(
                ilp.x[i][s] == (1.0 if layout[i, s] else 0.0),
                name=f"pin_x[{i + 1},{s}]",
            )
    solution = lp_solve(ilp.model, backend=backend, time_limit=time_limit)
    if not solution.is_feasible:
        raise PlacementError(
            f"separate placement found no solution (status "
            f"{solution.status.value}); the frozen layout may violate "
            "constraint 4 or the memory reserves"
        )
    placement = ilp.extract(solution)
    placement.algorithm = "separate"
    placement.solve_seconds = time.perf_counter() - start
    return placement
