"""SFP control plane: the paper's primary contribution.

Joint placement of *physical* NFs (type -> pipeline stage, variables
``x_ik``) and *logical* NFs (chain position -> virtual stage, variables
``z_ijkl``) to maximize offloaded tenant traffic, plus the LP-relaxation
rounding algorithm, the greedy baseline, and the runtime-update engine.

Module map (paper section -> module):

* Table I / problem data    -> :mod:`repro.core.spec`
* §V-A IP formulation       -> :mod:`repro.core.ilp`
* §V-B/§V-C Algorithm 1     -> :mod:`repro.core.rounding`
* §V-D Algorithm 2 (greedy) -> :mod:`repro.core.greedy`
* §V-E runtime update       -> :mod:`repro.core.update`
* solution representation   -> :mod:`repro.core.placement`
* feasibility checking      -> :mod:`repro.core.verify`
"""

from repro.core.extensions import (
    SubNFExpansion,
    account_nf_state,
    collapse_assignment,
    expand_multi_stage_nfs,
)
from repro.core.greedy import greedy_place
from repro.core.ilp import PlacementILP, build_placement_model, solve_ilp
from repro.core.separate import solve_separate
from repro.core.placement import NFAssignment, Placement
from repro.core.rounding import RoundingResult, sfc_metric, solve_with_rounding
from repro.core.spec import (
    SFC,
    NFType,
    ProblemInstance,
    SwitchSpec,
    default_nf_catalog,
)
from repro.core.update import RuntimeUpdater, UpdateResult
from repro.core.verify import check_placement

__all__ = [
    "SFC",
    "NFAssignment",
    "NFType",
    "Placement",
    "PlacementILP",
    "ProblemInstance",
    "RoundingResult",
    "RuntimeUpdater",
    "SubNFExpansion",
    "SwitchSpec",
    "UpdateResult",
    "account_nf_state",
    "build_placement_model",
    "check_placement",
    "collapse_assignment",
    "default_nf_catalog",
    "expand_multi_stage_nfs",
    "greedy_place",
    "sfc_metric",
    "solve_ilp",
    "solve_separate",
    "solve_with_rounding",
]
