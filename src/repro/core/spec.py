"""Problem data model — the code form of the paper's Table I.

==========  =======================================================
Paper       Here
==========  =======================================================
``i / I``   :attr:`NFType.type_id` / :attr:`ProblemInstance.num_types`
``j / J_l`` position in :attr:`SFC.nf_types` / :attr:`SFC.length`
``k / K``   virtual stage index / :attr:`ProblemInstance.virtual_stages`
``l / L``   index into :attr:`ProblemInstance.sfcs`
``S``       :attr:`SwitchSpec.stages`
``B``       :attr:`SwitchSpec.blocks_per_stage`
``E / b``   :attr:`SwitchSpec.block_bits` / :attr:`SwitchSpec.rule_bits`
``C``       :attr:`SwitchSpec.capacity_gbps`
``f_jl``    :attr:`SFC.nf_types` entries
``F_jl``    :attr:`SFC.rules` entries
``T_l``     :attr:`SFC.bandwidth_gbps`
==========  =======================================================

Stages are 0-based here (the math in :mod:`repro.core.ilp` uses 1-based
virtual stage indices internally so that "stage 0" can mean *unplaced*, as in
the paper's ``s_l = 0`` convention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PlacementError


@dataclass(frozen=True)
class NFType:
    """A network-function *type* offered by the provider (paper §III:
    "the provider predefines a few NFs, and the tenants make selection").

    ``type_id`` is the paper's index ``i`` (1-based, as in constraint (6)
    where the numeric value of ``i`` participates in arithmetic).
    """

    type_id: int
    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.type_id < 1:
            raise PlacementError(f"NF type ids are 1-based, got {self.type_id}")


#: The four NFs the paper prototypes in P4 (§VI-A) plus the other kinds it
#: cites as switch-implementable (§II-A), giving the 10 types used in §VI-C.
_DEFAULT_CATALOG = (
    ("firewall", "5-tuple ACL firewall (P4Guard-style)"),
    ("load_balancer", "L4 load balancer (SilkRoad-style), 3 tables per Fig. 2"),
    ("traffic_classifier", "DSCP/flow classifier"),
    ("router", "LPM IPv4 router"),
    ("rate_limiter", "token-bucket rate limiter"),
    ("nat", "source NAT"),
    ("vpn_gateway", "IPsec-style gateway (match/rewrite only)"),
    ("cache_index", "in-network cache index (NetCache-style)"),
    ("ddos_detector", "threshold-based heavy-hitter detector"),
    ("monitor", "per-tenant byte/packet counters"),
)


def default_nf_catalog(count: int = 10) -> list[NFType]:
    """The default provider catalog; ``count`` <= 10 types (paper uses 10)."""
    if not 1 <= count <= len(_DEFAULT_CATALOG):
        raise PlacementError(
            f"count must be in [1, {len(_DEFAULT_CATALOG)}], got {count}"
        )
    return [
        NFType(type_id=i + 1, name=name, description=desc)
        for i, (name, desc) in enumerate(_DEFAULT_CATALOG[:count])
    ]


@dataclass(frozen=True)
class SFC:
    """A tenant's service function chain: ordered NF types with per-NF rule
    counts and a bandwidth demand (the tuple ``(T_l, [f_jl], [F_jl])``).
    """

    name: str
    nf_types: tuple[int, ...]
    rules: tuple[int, ...]
    bandwidth_gbps: float
    tenant_id: int = 0

    def __post_init__(self) -> None:
        if len(self.nf_types) == 0:
            raise PlacementError(f"SFC {self.name!r} has no NFs")
        if len(self.nf_types) != len(self.rules):
            raise PlacementError(
                f"SFC {self.name!r}: {len(self.nf_types)} NFs but "
                f"{len(self.rules)} rule counts"
            )
        if any(t < 1 for t in self.nf_types):
            raise PlacementError(f"SFC {self.name!r}: NF type ids are 1-based")
        if any(r < 0 for r in self.rules):
            raise PlacementError(f"SFC {self.name!r}: negative rule count")
        if self.bandwidth_gbps <= 0:
            raise PlacementError(
                f"SFC {self.name!r}: bandwidth must be positive, "
                f"got {self.bandwidth_gbps}"
            )
        # Dataclass is frozen; normalize via object.__setattr__.
        object.__setattr__(self, "nf_types", tuple(int(t) for t in self.nf_types))
        object.__setattr__(self, "rules", tuple(int(r) for r in self.rules))

    def to_dict(self) -> dict:
        """JSON-native form — the shape shared by churn traces
        (:mod:`repro.controller.events`) and the durability subsystem's WAL
        records and checkpoints."""
        return {
            "name": self.name,
            "nf_types": list(self.nf_types),
            "rules": list(self.rules),
            "bandwidth_gbps": self.bandwidth_gbps,
            "tenant_id": self.tenant_id,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SFC":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=record["name"],
            nf_types=tuple(record["nf_types"]),
            rules=tuple(record["rules"]),
            bandwidth_gbps=float(record["bandwidth_gbps"]),
            tenant_id=int(record["tenant_id"]),
        )

    @property
    def length(self) -> int:
        """The paper's ``J_l``."""
        return len(self.nf_types)

    @property
    def total_rules(self) -> int:
        """``sum_j F_jl`` — total table entries this chain installs."""
        return sum(self.rules)

    @property
    def weight(self) -> float:
        """This chain's contribution to the objective when placed:
        ``T_l * J_l`` (Equation 1/14)."""
        return self.bandwidth_gbps * self.length


@dataclass(frozen=True)
class SwitchSpec:
    """Physical switch resources (paper constants ``S, B, E, b, C``).

    ``rule_bits`` (``b``) and ``block_bits`` (``E``) only ever appear as the
    ratio ``E/b`` = entries per block; both are kept so the memory constraint
    reads like Equation (24)/(25).
    """

    stages: int = 8
    blocks_per_stage: int = 20
    block_bits: int = 64_000
    rule_bits: int = 64
    capacity_gbps: float = 400.0
    #: Per-pass pipeline latency in ns; calibrated so a 4-NF pass ≈ the
    #: paper's 341 ns (§VI-B).  Used by the data-plane latency model.
    stage_latency_ns: float = 25.0
    recirculation_latency_ns: float = 11.7

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise PlacementError(f"switch needs >=1 stage, got {self.stages}")
        if self.blocks_per_stage < 1:
            raise PlacementError("switch needs >=1 block per stage")
        if self.block_bits % self.rule_bits != 0:
            raise PlacementError(
                f"block size {self.block_bits} not a multiple of rule width "
                f"{self.rule_bits}"
            )
        if self.capacity_gbps <= 0:
            raise PlacementError("capacity must be positive")

    @property
    def entries_per_block(self) -> int:
        """``E / b`` — rule entries that fit one SRAM block (paper: 1000)."""
        return self.block_bits // self.rule_bits

    @property
    def entries_per_stage(self) -> int:
        return self.blocks_per_stage * self.entries_per_block

    def blocks_for_entries(self, entries: int) -> int:
        """Blocks needed to hold ``entries`` rules (the ceil of Eq. 24)."""
        if entries < 0:
            raise PlacementError(f"negative entry count {entries}")
        return math.ceil(entries / self.entries_per_block)

    def to_dict(self) -> dict:
        """JSON-native form — the shape shared by durability manifests and
        scenario topology specs."""
        return {
            "stages": self.stages,
            "blocks_per_stage": self.blocks_per_stage,
            "block_bits": self.block_bits,
            "rule_bits": self.rule_bits,
            "capacity_gbps": self.capacity_gbps,
            "stage_latency_ns": self.stage_latency_ns,
            "recirculation_latency_ns": self.recirculation_latency_ns,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SwitchSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            stages=int(record["stages"]),
            blocks_per_stage=int(record["blocks_per_stage"]),
            block_bits=int(record["block_bits"]),
            rule_bits=int(record["rule_bits"]),
            capacity_gbps=float(record["capacity_gbps"]),
            stage_latency_ns=float(record["stage_latency_ns"]),
            recirculation_latency_ns=float(record["recirculation_latency_ns"]),
        )


@dataclass(frozen=True)
class ProblemInstance:
    """One placement problem: a switch, the SFC candidates, the NF catalog
    size ``I``, and the recirculation budget ``R`` (so ``K = S * (R+1)``).
    """

    switch: SwitchSpec
    sfcs: tuple[SFC, ...]
    num_types: int
    max_recirculations: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "sfcs", tuple(self.sfcs))
        if self.num_types < 1:
            raise PlacementError("need at least one NF type")
        if self.max_recirculations < 0:
            raise PlacementError("max_recirculations must be >= 0")
        for sfc in self.sfcs:
            bad = [t for t in sfc.nf_types if t > self.num_types]
            if bad:
                raise PlacementError(
                    f"SFC {sfc.name!r} uses type ids {bad} beyond catalog "
                    f"size {self.num_types}"
                )

    @property
    def num_sfcs(self) -> int:
        """The paper's ``L``."""
        return len(self.sfcs)

    @property
    def virtual_stages(self) -> int:
        """``K = S * (R + 1)`` — the unrolled pipeline length."""
        return self.switch.stages * (self.max_recirculations + 1)

    def with_sfcs(self, sfcs: list[SFC] | tuple[SFC, ...]) -> "ProblemInstance":
        """A copy of this instance over a different candidate set."""
        return ProblemInstance(
            switch=self.switch,
            sfcs=tuple(sfcs),
            num_types=self.num_types,
            max_recirculations=self.max_recirculations,
        )

    def with_recirculations(self, r: int) -> "ProblemInstance":
        """A copy with a different recirculation budget (Fig. 7 sweep)."""
        return ProblemInstance(
            switch=self.switch,
            sfcs=self.sfcs,
            num_types=self.num_types,
            max_recirculations=r,
        )
