"""Runtime SFC update engine (paper §V-E).

Tenants arrive and leave at runtime.  The updater keeps the live placement's
resource state, releases resources when SFCs depart, and places newly arrived
candidates into the *residual* resources while never disturbing survivors
("maintain the SFCs who do not leave in previous placement").  Because the
incremental result can drift from the global optimum, the updater can compare
against a freshly solved reference placement and trigger a full
reconfiguration once the relative objective gap exceeds a threshold (the
paper notes this costs extensive rule changes or a reboot, so it is opt-in).

SFC *modification* is modeled as departure + arrival, exactly as the paper
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.greedy import order_sfcs, try_place_chain
from repro.core.placement import NFAssignment, Placement
from repro.core.spec import SFC, ProblemInstance
from repro.core.state import PipelineState
from repro.errors import PlacementError


def rule_churn_by_stage(
    sfc: SFC, stages: Iterable[int], num_physical_stages: int
) -> dict[int, int]:
    """Rule entries a chain assignment installs (or removes), per *physical*
    stage — the shared accounting path used by :class:`UpdateResult`, the
    fig. 11 experiment, and the controller's churn bookkeeping, so all three
    report rule churn identically."""
    churn: dict[int, int] = {}
    for j, k in enumerate(stages):
        s = (k - 1) % num_physical_stages
        churn[s] = churn.get(s, 0) + sfc.rules[j]
    return churn


def merge_churn(into: dict[int, int], other: dict[int, int]) -> dict[int, int]:
    """Accumulate one per-stage churn dict into another (in place)."""
    for s, count in other.items():
        into[s] = into.get(s, 0) + count
    return into


@dataclass
class UpdateResult:
    """Outcome of one update round."""

    placement: Placement
    removed: list[int] = field(default_factory=list)
    added: list[int] = field(default_factory=list)
    #: True when the drift threshold forced a full re-place.
    reconfigured: bool = False
    #: Objective of the reference (fresh global) solve, when one was run.
    reference_objective: float | None = None
    #: Rule entries installed this round, per physical stage.  Includes the
    #: full reinstall when the round ended in a reconfiguration.
    rules_added_by_stage: dict[int, int] = field(default_factory=dict)
    #: Rule entries deleted this round, per physical stage.  Departures via
    #: :meth:`RuntimeUpdater.remove` since the previous round are folded in.
    rules_deleted_by_stage: dict[int, int] = field(default_factory=dict)

    @property
    def rules_added(self) -> int:
        """Total rule entries installed this round."""
        return sum(self.rules_added_by_stage.values())

    @property
    def rules_deleted(self) -> int:
        """Total rule entries deleted this round."""
        return sum(self.rules_deleted_by_stage.values())


class RuntimeUpdater:
    """Owns a live placement and applies departures/arrivals incrementally."""

    def __init__(
        self,
        placement: Placement,
        reserve_physical_block: bool = True,
        reconfigure_threshold: float | None = None,
        reference_solver: Callable[[ProblemInstance], Placement] | None = None,
    ) -> None:
        self.instance = placement.instance
        self.consolidate = placement.consolidate
        self.reserve_physical_block = reserve_physical_block
        self.reconfigure_threshold = reconfigure_threshold
        self.reference_solver = reference_solver
        self.assignments: dict[int, NFAssignment] = dict(placement.assignments)
        self.state = PipelineState.from_placement(
            placement, reserve_physical_block=reserve_physical_block
        )
        #: Per-stage deletions accumulated since the last UpdateResult.
        self._pending_deleted: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def placement(self) -> Placement:
        """The current live placement."""
        return self.state.make_placement(self.assignments, algorithm="update")

    # ------------------------------------------------------------------
    def remove(self, indices: Iterable[int]) -> list[int]:
        """Tenant departure: delete the chains' rules and release their
        memory and backplane bandwidth.  Physical NFs stay installed (the
        data plane's physical pipeline is static).  Returns the indices
        actually removed, in deterministic (sorted) order; duplicates in
        ``indices`` are collapsed.  The deleted rule entries are accumulated
        into the next round's :attr:`UpdateResult.rules_deleted_by_stage`."""
        removed = []
        S = self.instance.switch.stages
        for l in sorted(set(indices)):
            asg = self.assignments.pop(l, None)
            if asg is None:
                continue
            sfc = self.instance.sfcs[l]
            for j, k in enumerate(asg.stages):
                self.state.remove_logical_nf(
                    sfc.nf_types[j] - 1, (k - 1) % S, sfc.rules[j]
                )
            self.state.release_backplane(asg.passes(S) * sfc.bandwidth_gbps)
            merge_churn(self._pending_deleted, rule_churn_by_stage(sfc, asg.stages, S))
            removed.append(l)
        return removed

    # ------------------------------------------------------------------
    def admit(self, candidates: Iterable[int] | None = None) -> UpdateResult:
        """Tenant arrival: place not-yet-placed candidates into residual
        resources (best Equation-13 metric first), then optionally check the
        drift threshold and fall back to a full reconfiguration.
        """
        pool = set(candidates) if candidates is not None else set(range(self.instance.num_sfcs))
        pool -= set(self.assignments)
        added: list[int] = []
        K = self.instance.virtual_stages
        S = self.instance.switch.stages
        added_churn: dict[int, int] = {}
        for l in order_sfcs(self.instance):
            if l not in pool:
                continue
            stages = try_place_chain(self.state, self.instance.sfcs[l], K)
            if stages is not None:
                self.assignments[l] = NFAssignment(sfc_index=l, stages=stages)
                added.append(l)
                merge_churn(
                    added_churn, rule_churn_by_stage(self.instance.sfcs[l], stages, S)
                )

        deleted_churn, self._pending_deleted = self._pending_deleted, {}
        result = UpdateResult(
            placement=self.placement,
            added=added,
            rules_added_by_stage=added_churn,
            rules_deleted_by_stage=deleted_churn,
        )
        if self.reconfigure_threshold is not None:
            if self.reference_solver is None:
                raise PlacementError(
                    "reconfigure_threshold set but no reference_solver given"
                )
            reference = self.reference_solver(self.instance)
            result.reference_objective = reference.objective
            current = result.placement.objective
            if reference.objective > 0 and (
                1.0 - current / reference.objective
            ) > self.reconfigure_threshold:
                # Full re-place: extensive rule churn, possibly a reboot.
                # Everything live (including this round's incremental adds)
                # is torn down and the reference placement reinstalled, and
                # the churn accounting says so.
                for l, asg in self.assignments.items():
                    merge_churn(
                        deleted_churn,
                        rule_churn_by_stage(self.instance.sfcs[l], asg.stages, S),
                    )
                for l, asg in reference.assignments.items():
                    merge_churn(
                        added_churn,
                        rule_churn_by_stage(self.instance.sfcs[l], asg.stages, S),
                    )
                self.assignments = dict(reference.assignments)
                self.state = PipelineState.from_placement(
                    reference, reserve_physical_block=self.reserve_physical_block
                )
                result = UpdateResult(
                    placement=self.placement,
                    added=added,
                    reconfigured=True,
                    reference_objective=reference.objective,
                    rules_added_by_stage=added_churn,
                    rules_deleted_by_stage=deleted_churn,
                )
        return result

    # ------------------------------------------------------------------
    def modify(self, index: int, new_sfc_index: int) -> UpdateResult:
        """Adjust a tenant's chain: modeled as departure of ``index`` then
        arrival of ``new_sfc_index`` (both are indices into the instance's
        candidate list)."""
        removed = self.remove([index])
        result = self.admit([new_sfc_index])
        result.removed = removed
        return result
