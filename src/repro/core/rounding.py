"""LP relaxation with randomized rounding — the paper's §V-B/§V-C, Algorithm 1.

For each recirculation budget ``r`` in ``0..R`` the joint ILP is built over
``K = S*(r+1)`` virtual stages, relaxed (``Relax_vars``), and solved as an LP
(``LP()``).  The fractional solution is then rounded (``Round_vars``) and the
rounded placement is verified against the original constraints
(``Verify_vars``); chains that do not survive a rounding attempt are the
ones the paper's strip rule would shed (Equation 13 decides assignment
order, so low-value chains yield first).  The best verified placement across
attempts and across all ``r`` trials is returned.

Rounding detail.  The paper rounds each fractional variable independently
("X.Y -> X+1 with probability Y") and loops until the constraint check
passes.  Independent per-``z`` rounding almost never yields a well-formed
chain assignment (sum_k z = d, strictly increasing stages), so — keeping the
paper's randomization exactly where it carries information — we:

1. round each **x_ik** independently with its LP probability (re-instating
   the argmax stage for any type rounded to nothing, to keep constraint 4),
2. round each chain's **d_l** with its LP probability (the LP's ``z`` mass
   for chain position j sums to d_l, so this *is* the marginal the paper
   rounds),
3. for chains rounded in, derive the per-NF stages deterministically by an
   earliest-fit walk seeded with the rounded physical layout (installing a
   missing physical NF when a stage has spare blocks, exactly like the data
   plane would) — any integral ``z`` consistent with the resulting ``x`` and
   the ordering constraint is equivalent for the objective, which only
   depends on ``d``.

A chain the walk cannot settle is stripped for that attempt (the paper's
strip-and-retry, with Eq. 13 deciding who yields first), a residual fill
re-admits coin-flipped-out chains into leftover resources, and the best
verified candidate across attempts and recirculation budgets wins — the
paper's "if result is optimal then keep" step.  The expectation-preservation
claim of randomized rounding (E[objective] = LP objective) holds for the
d-rounding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.greedy import sfc_metric, try_place_chain
from repro.core.ilp import build_placement_model
from repro.core.placement import NFAssignment, Placement
from repro.core.spec import ProblemInstance
from repro.core.state import PipelineState
from repro.core.verify import check_placement
from repro.lp import SolveStatus
from repro.lp import solve as lp_solve
from repro.rng import make_rng

__all__ = ["RoundingResult", "sfc_metric", "solve_with_rounding"]


@dataclass
class RoundingResult:
    """Outcome of Algorithm 1: the best verified placement plus diagnostics."""

    placement: Placement
    #: LP-relaxation objective for the winning recirculation budget — an
    #: upper bound on any integral objective, reported as the optimality gap.
    lp_objective: float
    #: Rounding attempts used per recirculation budget tried.
    attempts_per_r: dict[int, int] = field(default_factory=dict)
    lp_objective_per_r: dict[int, float] = field(default_factory=dict)

    @property
    def gap(self) -> float:
        """Relative gap between the LP bound and the rounded objective."""
        if self.lp_objective <= 0:
            return 0.0
        return 1.0 - self.placement.objective / self.lp_objective


def _round_physical(
    x_frac: np.ndarray, rng: np.random.Generator, require_all_types: bool
) -> np.ndarray:
    """Independently round the physical layout, restoring constraint (4)."""
    rounded = rng.random(x_frac.shape) < x_frac
    if require_all_types:
        for i in range(x_frac.shape[0]):
            if not rounded[i].any():
                rounded[i, int(np.argmax(x_frac[i]))] = True
    return rounded


def solve_with_rounding(
    instance: ProblemInstance,
    consolidate: bool = True,
    backend: str = "scipy",
    rng: int | np.random.Generator | None = None,
    max_attempts: int | None = None,
    require_all_types: bool = True,
    reserve_physical_block: bool = True,
    recirculation_budgets: list[int] | None = None,
) -> RoundingResult:
    """Run Algorithm 1 ("SFP-Appro.") and return the best verified placement.

    ``recirculation_budgets`` defaults to ``0..instance.max_recirculations``
    (the paper "tried 0 to R").  ``max_attempts`` bounds the rounding retry
    loop per budget; defaults to ``L + 5`` so the strip rule can, in the
    worst case, peel every candidate off.
    """
    start = time.perf_counter()
    rng = make_rng(rng)
    budgets = (
        recirculation_budgets
        if recirculation_budgets is not None
        else list(range(instance.max_recirculations + 1))
    )
    if max_attempts is None:
        max_attempts = instance.num_sfcs + 5

    best: Placement | None = None
    best_lp = 0.0
    attempts_per_r: dict[int, int] = {}
    lp_per_r: dict[int, float] = {}

    for r in budgets:
        sub = instance.with_recirculations(r)
        ilp = build_placement_model(
            sub,
            consolidate=consolidate,
            require_all_types=require_all_types,
            reserve_physical_block=reserve_physical_block,
        )
        lp_solution = lp_solve(ilp.model, backend=backend, relax=True)
        if lp_solution.status is not SolveStatus.OPTIMAL:
            continue
        lp_per_r[r] = float(lp_solution.objective)

        x_frac = np.array(
            [[lp_solution[ilp.x[i][s]] for s in range(sub.switch.stages)]
             for i in range(sub.num_types)]
        )
        d_frac = np.clip(
            np.array([lp_solution[ilp.d[l]] for l in range(sub.num_sfcs)]), 0.0, 1.0
        )

        K = sub.virtual_stages
        for attempt in range(1, max_attempts + 1):
            attempts_per_r[r] = attempt
            physical = _round_physical(x_frac, rng, require_all_types)
            selected = [l for l in range(sub.num_sfcs) if rng.random() < d_frac[l]]
            state = PipelineState(
                sub,
                consolidate=consolidate,
                reserve_physical_block=reserve_physical_block,
            )
            state.physical = physical.copy()
            assignments: dict[int, NFAssignment] = {}
            # Assign highest-metric chains first; a chain that does not fit
            # the rounded layout is stripped for this attempt (Eq. 13's
            # "most resource, least bandwidth" candidates yield first).
            for l in sorted(selected, key=lambda l: -sfc_metric(sub.sfcs[l])):
                stages = try_place_chain(state, sub.sfcs[l], K)
                if stages is not None:
                    assignments[l] = NFAssignment(sfc_index=l, stages=stages)
            # Residual fill: chains the coin flip left out may still fit the
            # rounded layout's leftover memory/bandwidth — admitting them
            # can only raise the objective (maximization).
            leftovers = [l for l in range(sub.num_sfcs) if l not in assignments]
            for l in sorted(leftovers, key=lambda l: -sfc_metric(sub.sfcs[l])):
                stages = try_place_chain(state, sub.sfcs[l], K)
                if stages is not None:
                    assignments[l] = NFAssignment(sfc_index=l, stages=stages)
            candidate = state.make_placement(assignments, algorithm="rounding")
            # Verify_vars: the constructive assignment already respects
            # memory/capacity, so this is a belt-and-braces oracle check.
            problems = check_placement(
                candidate,
                require_all_types=require_all_types,
                reserve_physical_block=reserve_physical_block,
            )
            if problems:
                continue
            if best is None or candidate.objective > best.objective:
                best = candidate
                best_lp = lp_per_r[r]
            if candidate.objective >= lp_per_r[r] - 1e-9:
                break  # rounded result already matches the LP bound

    if best is None:
        # Nothing verified: return the empty (but constraint-4-respecting)
        # placement so callers always get a well-formed result.
        state = PipelineState(
            instance,
            consolidate=consolidate,
            reserve_physical_block=reserve_physical_block,
        )
        for i in range(instance.num_types):
            state.install_physical(i, i % instance.switch.stages)
        best = state.make_placement({}, algorithm="rounding")
        best_lp = max(lp_per_r.values(), default=0.0)

    best.solve_seconds = time.perf_counter() - start
    return RoundingResult(
        placement=best,
        lp_objective=best_lp,
        attempts_per_r=attempts_per_r,
        lp_objective_per_r=lp_per_r,
    )
