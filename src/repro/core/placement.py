"""Placement solutions and their derived metrics.

A :class:`Placement` is the integral outcome of any placement algorithm
(ILP, LP rounding, greedy): which physical NF types sit on which physical
stage (the ``x_ik``) and, per SFC, which virtual stage hosts each logical NF
(the ``z_ijkl``, collapsed to one stage index per chain position).

All the quantities the evaluation plots are derived here so every algorithm
is measured identically:

* **objective** — Eq. (1): ``sum_placed T_l * J_l``
* **offloaded throughput** — ``sum_placed T_l``
* **backplane load** — Eq. (12) LHS: ``sum_placed (R_l + 1) * T_l`` (this is
  the "throughput (Gbps)" axis of Figs. 6/7/9/10/11, which saturates at the
  400 Gbps backplane capacity)
* **block / entry utilization** — Eq. (24) (consolidated) or Eq. (25)
  (per-logical-NF blocks), per Figs. 6/7
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import ProblemInstance
from repro.errors import PlacementError


@dataclass(frozen=True)
class NFAssignment:
    """Virtual-stage assignment of one SFC: ``stages[j]`` is the 1-based
    virtual stage hosting chain position ``j`` (paper's ``g_jl``)."""

    sfc_index: int
    stages: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(int(s) for s in self.stages))
        if any(s < 1 for s in self.stages):
            raise PlacementError("virtual stages are 1-based; got a stage < 1")
        if any(b <= a for a, b in zip(self.stages, self.stages[1:])):
            raise PlacementError(
                f"SFC {self.sfc_index}: stages {self.stages} are not strictly "
                "increasing (violates ordering constraint (8))"
            )

    @property
    def last_stage(self) -> int:
        """The paper's ``s_l``."""
        return self.stages[-1]

    def passes(self, physical_stages: int) -> int:
        """``R_l + 1`` — pipeline passes this chain's traffic makes."""
        return -(-self.last_stage // physical_stages)  # ceil division

    def recirculations(self, physical_stages: int) -> int:
        """The paper's ``R_l``."""
        return self.passes(physical_stages) - 1


@dataclass
class Placement:
    """An integral placement: physical layout + per-chain assignments.

    ``physical`` is a boolean ``(I, S)`` matrix (``x_ik`` over *physical*
    stages; the virtual repetition of constraint (10) is implicit).
    ``assignments`` maps SFC index -> :class:`NFAssignment` for placed
    chains only.
    """

    instance: ProblemInstance
    physical: np.ndarray
    assignments: dict[int, NFAssignment] = field(default_factory=dict)
    #: Which memory-accounting variant produced/should judge this placement
    #: (True = Eq. 24 consolidation, False = Eq. 25 per-NF blocks).
    consolidate: bool = True
    #: Wall-clock seconds the producing algorithm took (for Fig. 8).
    solve_seconds: float = 0.0
    #: Free-form provenance ("ilp", "rounding", "greedy", ...).
    algorithm: str = ""

    def __post_init__(self) -> None:
        expected = (self.instance.num_types, self.instance.switch.stages)
        self.physical = np.asarray(self.physical, dtype=bool)
        if self.physical.shape != expected:
            raise PlacementError(
                f"physical layout has shape {self.physical.shape}, expected {expected}"
            )
        for l, asg in self.assignments.items():
            if not 0 <= l < self.instance.num_sfcs:
                raise PlacementError(f"assignment for unknown SFC index {l}")
            sfc = self.instance.sfcs[l]
            if len(asg.stages) != sfc.length:
                raise PlacementError(
                    f"SFC {l}: {len(asg.stages)} stage assignments for a "
                    f"chain of length {sfc.length}"
                )

    # ------------------------------------------------------------------
    # Chain-level quantities
    # ------------------------------------------------------------------
    @property
    def placed_indices(self) -> list[int]:
        return sorted(self.assignments)

    @property
    def num_placed(self) -> int:
        return len(self.assignments)

    def passes(self, l: int) -> int:
        """``R_l + 1`` for chain ``l`` (0 if not placed)."""
        asg = self.assignments.get(l)
        if asg is None:
            return 0
        return asg.passes(self.instance.switch.stages)

    # ------------------------------------------------------------------
    # Objective / traffic metrics
    # ------------------------------------------------------------------
    @property
    def objective(self) -> float:
        """Eq. (1): offloaded processing, ``sum_placed T_l * J_l``."""
        return sum(self.instance.sfcs[l].weight for l in self.assignments)

    @property
    def offloaded_gbps(self) -> float:
        """Tenant traffic served by the switch: ``sum_placed T_l``."""
        return sum(self.instance.sfcs[l].bandwidth_gbps for l in self.assignments)

    @property
    def backplane_gbps(self) -> float:
        """Backplane bandwidth consumed, counting recirculation passes
        (Eq. 12 LHS) — the "throughput" axis of the placement figures."""
        return sum(
            self.passes(l) * self.instance.sfcs[l].bandwidth_gbps
            for l in self.assignments
        )

    # ------------------------------------------------------------------
    # Memory metrics
    # ------------------------------------------------------------------
    def entries_by_type_stage(self) -> np.ndarray:
        """``(I, S)`` matrix of installed rule entries after folding virtual
        stages onto physical ones (the inner sums of Eq. 24)."""
        I = self.instance.num_types
        S = self.instance.switch.stages
        entries = np.zeros((I, S), dtype=np.int64)
        for l, asg in self.assignments.items():
            sfc = self.instance.sfcs[l]
            for j, k in enumerate(asg.stages):
                s = (k - 1) % S
                entries[sfc.nf_types[j] - 1, s] += sfc.rules[j]
        return entries

    def blocks_by_type_stage(self) -> np.ndarray:
        """``(I, S)`` blocks charged per (type, physical stage) under this
        placement's accounting variant — Eq. (24) consolidation (one ceil
        over the pooled entries) or Eq. (25) (one ceil per logical NF)."""
        switch = self.instance.switch
        S = switch.stages
        if self.consolidate:
            entries = self.entries_by_type_stage()
            return -(-entries // switch.entries_per_block)  # ceil, vectorized
        blocks = np.zeros((self.instance.num_types, S), dtype=np.int64)
        for l, asg in self.assignments.items():
            sfc = self.instance.sfcs[l]
            for j, k in enumerate(asg.stages):
                blocks[sfc.nf_types[j] - 1, (k - 1) % S] += switch.blocks_for_entries(
                    sfc.rules[j]
                )
        return blocks

    def blocks_by_stage(self) -> np.ndarray:
        """Blocks consumed per physical stage (rule storage only; the
        verifier additionally charges idle physical-NF reservations)."""
        return self.blocks_by_type_stage().sum(axis=0)

    @property
    def total_entries(self) -> int:
        """Total installed rule entries across the pipeline."""
        return sum(self.instance.sfcs[l].total_rules for l in self.assignments)

    @property
    def block_utilization(self) -> float:
        """Average blocks used per stage (the Fig. 6a/7a left axis, whose
        "upper bound" is ``blocks_per_stage``)."""
        blocks = self.blocks_by_stage()
        return float(blocks.mean()) if blocks.size else 0.0

    @property
    def entry_utilization(self) -> float:
        """Installed entries / capacity of the blocks they occupy — lower
        under Eq. (25) because of per-NF internal fragmentation (Fig. 6b)."""
        blocks = int(self.blocks_by_stage().sum())
        if blocks == 0:
            return 0.0
        return self.total_entries / (blocks * self.instance.switch.entries_per_block)

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """The metric row the experiment harness prints per data point."""
        return {
            "num_placed": float(self.num_placed),
            "objective": self.objective,
            "offloaded_gbps": self.offloaded_gbps,
            "backplane_gbps": self.backplane_gbps,
            "block_utilization": self.block_utilization,
            "entry_utilization": self.entry_utilization,
            "solve_seconds": self.solve_seconds,
        }

    def __repr__(self) -> str:
        return (
            f"Placement(algorithm={self.algorithm!r}, placed={self.num_placed}/"
            f"{self.instance.num_sfcs}, objective={self.objective:.1f}, "
            f"backplane={self.backplane_gbps:.1f}Gbps)"
        )
