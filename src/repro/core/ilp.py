"""The joint physical/logical NF placement integer program (paper §V-A).

This module turns a :class:`~repro.core.spec.ProblemInstance` into the MILP
of Equations (1)-(12), with two deliberate model reductions that provably do
not change the feasible set:

* **Type-restricted z.**  The paper's ``z_ijkl`` ranges over all types ``i``,
  with constraint (6) (``sum z * i = f_jl * d_jl``) forcing the type to match.
  Because (5) caps ``sum z`` at one, any solution has ``z_ijkl = 0`` for all
  ``i != f_jl``; we therefore only create ``z[l][j][k] := z_{i=f_jl, j, k, l}``
  — an I-fold variable reduction that leaves (6) trivially satisfied.
* **Physical-stage x.**  Constraint (10) forces ``x_ik = x_{i,k+S}``, so we
  create ``x[i][s]`` over the S physical stages only and consult
  ``x[i][(k-1) % S]`` for virtual stage ``k``.

Virtual stages ``k`` are 1-based so the derived ``g_jl = sum_k k*z`` is 0 for
unplaced chains, matching the paper's ``s_l = 0`` convention.

The ceil in the memory constraint (11)/(24) is linearized with an integer
block-count variable ``Y_is`` per (type, physical stage):

    entries_per_block * Y_is >= sum of entries mapped to (i, s),  sum_i Y_is <= B

The paper additionally pins ``Y`` from above (``Y - 1 + eps <= expr``); since
``Y`` only appears in a ``<= B`` constraint, leaving it free upward does not
enlarge the feasible set, and dropping the upper pin avoids the paper's
epsilon hack.  Under the no-consolidation variant (Eq. 25) the ceil applies
per *logical* NF, and since ``z`` is binary, ``ceil(z*F*b/E) = z*ceil(F*b/E)``
is already linear — no auxiliary variables needed.

The recirculation term of the capacity constraint (12) is linearized with an
integer pass count ``P_l >= g_{J_l,l} / S`` (so ``P_l = R_l + 1`` at any
binding optimum, and 0 for unplaced chains).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.placement import NFAssignment, Placement
from repro.core.spec import ProblemInstance
from repro.errors import PlacementError
from repro.lp import Model, Objective, Solution, SolveStatus, Var
from repro.lp import solve as lp_solve
from repro.lp.expr import LinExpr, lin_sum


@dataclass
class PlacementILP:
    """A built placement model plus the variable handles needed to read a
    solution back out.

    ``x[i][s]``  physical NF of type ``i+1`` on physical stage ``s`` (0-based).
    ``z[l][j][k-1]`` chain ``l`` position ``j`` on virtual stage ``k``.
    ``d[l]``     chain placed indicator.
    ``p[l]``     pipeline passes of chain ``l`` (``R_l + 1``; 0 if unplaced).
    ``y[i][s]``  SRAM blocks consumed by type ``i+1`` at stage ``s``
                 (consolidated variant only; ``None`` otherwise).
    """

    instance: ProblemInstance
    consolidate: bool
    model: Model
    x: list[list[Var]]
    z: list[list[list[Var]]]
    d: list[Var]
    p: list[Var]
    y: list[list[Var]] | None

    def extract(self, solution: Solution) -> Placement:
        """Read an integral solution into a :class:`Placement`."""
        if not solution.is_feasible:
            raise PlacementError(
                f"cannot extract placement from status {solution.status.value}"
            )
        inst = self.instance
        physical = np.zeros((inst.num_types, inst.switch.stages), dtype=bool)
        for i in range(inst.num_types):
            for s in range(inst.switch.stages):
                physical[i, s] = solution[self.x[i][s]] > 0.5
        assignments: dict[int, NFAssignment] = {}
        for l, sfc in enumerate(inst.sfcs):
            if solution[self.d[l]] < 0.5:
                continue
            stages = []
            for j in range(sfc.length):
                hits = [
                    k + 1
                    for k, var in enumerate(self.z[l][j])
                    if solution[var] > 0.5
                ]
                if len(hits) != 1:
                    raise PlacementError(
                        f"SFC {l} position {j}: {len(hits)} stages selected "
                        "in an integral solution"
                    )
                stages.append(hits[0])
            assignments[l] = NFAssignment(sfc_index=l, stages=tuple(stages))
        return Placement(
            instance=inst,
            physical=physical,
            assignments=assignments,
            consolidate=self.consolidate,
            solve_seconds=solution.solve_seconds,
            algorithm="ilp",
        )


def build_placement_model(
    instance: ProblemInstance,
    consolidate: bool = True,
    require_all_types: bool = True,
    reserve_physical_block: bool = True,
) -> PlacementILP:
    """Build the joint placement MILP for ``instance``.

    Parameters
    ----------
    consolidate:
        ``True`` -> memory constraint (11)/(24): same-type logical NFs on the
        same physical stage share blocks.  ``False`` -> Eq. (25): each logical
        NF rounds up to whole blocks on its own ("SFP without consolidation",
        the Fig. 6/7 baseline).
    require_all_types:
        Constraint (4): every catalog type must be installed on >= 1 stage.
    reserve_physical_block:
        An installed physical NF reserves at least one block even before any
        tenant rules are copied in (§IV "reserves a piece of switch
        resource").  Only meaningful under consolidation.
    """
    inst = instance
    switch = inst.switch
    I, S, K = inst.num_types, switch.stages, inst.virtual_stages
    L = inst.num_sfcs
    epb = switch.entries_per_block
    max_passes = inst.max_recirculations + 1

    m = Model(f"sfp-placement(L={L},K={K},consolidate={consolidate})")

    # x_ik over physical stages (constraints 2, 10).
    x = [[m.add_var(f"x[{i + 1},{s}]", binary=True) for s in range(S)] for i in range(I)]

    # z over (chain, position, virtual stage) restricted to i = f_jl
    # (constraints 3, 6); d_jl collapsed to one d_l per chain (constraints
    # 5, 7 - all-or-nothing placement).
    d = [m.add_var(f"d[{l}]", binary=True) for l in range(L)]
    z: list[list[list[Var]]] = []
    for l, sfc in enumerate(inst.sfcs):
        chain_vars: list[list[Var]] = []
        for j in range(sfc.length):
            chain_vars.append(
                [m.add_var(f"z[{l},{j},{k + 1}]", binary=True) for k in range(K)]
            )
        z.append(chain_vars)

    # Pass-count variables for the capacity constraint (12).
    p = [
        m.add_var(f"p[{l}]", lb=0, ub=max_passes, integer=True)
        for l in range(L)
    ]

    # --- placement constraints -------------------------------------------
    if require_all_types:
        for i in range(I):
            m.add_constr(lin_sum(x[i]) >= 1, name=f"type_installed[{i + 1}]")

    g: list[list[LinExpr]] = []  # g_jl as expressions
    for l, sfc in enumerate(inst.sfcs):
        g_chain: list[LinExpr] = []
        for j in range(sfc.length):
            # sum_k z = d  (constraints 5+6+7 under the type restriction)
            m.add_constr(lin_sum(z[l][j]) == d[l], name=f"deploy[{l},{j}]")
            g_chain.append(lin_sum((k + 1) * var for k, var in enumerate(z[l][j])))
        g.append(g_chain)
        # Ordering (8): g_{j+1} >= g_j + d_l.
        for j in range(sfc.length - 1):
            m.add_constr(g_chain[j + 1] - g_chain[j] >= d[l], name=f"order[{l},{j}]")

    # --- consistency (9): logical placement needs the physical NF ---------
    for l, sfc in enumerate(inst.sfcs):
        for j in range(sfc.length):
            i = sfc.nf_types[j] - 1
            for k in range(K):
                m.add_constr(
                    z[l][j][k] <= x[i][k % S], name=f"consistency[{l},{j},{k + 1}]"
                )

    # --- memory (11 / 24 with consolidation, 25 without) ------------------
    y: list[list[Var]] | None = None
    if consolidate:
        y = [
            [
                m.add_var(f"y[{i + 1},{s}]", lb=0, ub=switch.blocks_per_stage, integer=True)
                for s in range(S)
            ]
            for i in range(I)
        ]
        # Gather entry loads per (type, physical stage).
        loads: dict[tuple[int, int], list] = {}
        for l, sfc in enumerate(inst.sfcs):
            for j in range(sfc.length):
                i = sfc.nf_types[j] - 1
                F = sfc.rules[j]
                if F == 0:
                    continue
                for k in range(K):
                    loads.setdefault((i, k % S), []).append(F * z[l][j][k])
        for i in range(I):
            for s in range(S):
                terms = loads.get((i, s))
                if terms:
                    m.add_constr(
                        epb * y[i][s] >= lin_sum(terms), name=f"blocks[{i + 1},{s}]"
                    )
                if reserve_physical_block:
                    m.add_constr(y[i][s] >= x[i][s], name=f"reserve[{i + 1},{s}]")
        for s in range(S):
            m.add_constr(
                lin_sum(y[i][s] for i in range(I)) <= switch.blocks_per_stage,
                name=f"stage_blocks[{s}]",
            )
    else:
        # Eq. (25): per-logical-NF whole blocks; linear because z is binary.
        per_stage: dict[int, list] = {s: [] for s in range(S)}
        occupancy: dict[tuple[int, int], list] = {}
        for l, sfc in enumerate(inst.sfcs):
            for j in range(sfc.length):
                i = sfc.nf_types[j] - 1
                nf_blocks = switch.blocks_for_entries(sfc.rules[j])
                for k in range(K):
                    per_stage[k % S].append(nf_blocks * z[l][j][k])
                    occupancy.setdefault((i, k % S), []).append(z[l][j][k])
        if reserve_physical_block:
            # An installed-but-idle physical NF still reserves one block;
            # once a logical NF lands there, its own blocks absorb the
            # reserve: u_is >= x_is - (#logical NFs at (i, s)), u >= 0.
            for i in range(I):
                for s in range(S):
                    u = m.add_var(f"u[{i + 1},{s}]", lb=0.0, ub=1.0)
                    occupants = occupancy.get((i, s))
                    if occupants:
                        m.add_constr(
                            u >= x[i][s] - lin_sum(occupants),
                            name=f"idle_reserve[{i + 1},{s}]",
                        )
                    else:
                        m.add_constr(
                            u >= x[i][s].to_expr(), name=f"idle_reserve[{i + 1},{s}]"
                        )
                    per_stage[s].append(u.to_expr())
        for s in range(S):
            if per_stage[s]:
                m.add_constr(
                    lin_sum(per_stage[s]) <= switch.blocks_per_stage,
                    name=f"stage_blocks[{s}]",
                )

    # --- capacity (12) with pass linearization ----------------------------
    for l, sfc in enumerate(inst.sfcs):
        # P_l >= s_l / S  ->  S * P_l >= g_{J_l, l}
        m.add_constr(S * p[l] >= g[l][sfc.length - 1], name=f"passes[{l}]")
    if L > 0:
        m.add_constr(
            lin_sum(sfc.bandwidth_gbps * p[l] for l, sfc in enumerate(inst.sfcs))
            <= switch.capacity_gbps,
            name="backplane_capacity",
        )

    # --- objective (1) -----------------------------------------------------
    m.set_objective(
        lin_sum(sfc.weight * d[l] for l, sfc in enumerate(inst.sfcs)),
        Objective.MAXIMIZE,
    )

    return PlacementILP(
        instance=inst, consolidate=consolidate, model=m, x=x, z=z, d=d, p=p, y=y
    )


def solve_ilp(
    instance: ProblemInstance,
    consolidate: bool = True,
    backend: str = "scipy",
    time_limit: float | None = None,
    mip_gap: float = 1e-4,
    **build_kwargs,
) -> Placement:
    """Build and solve the joint MILP; return the resulting placement.

    On a time-limited solve the best incumbent is extracted (the paper's
    Fig. 9 early-termination behaviour).  If the solver produces *no*
    feasible point within the limit, an empty placement is returned — the
    paper reports exactly this as "performance is 0" at the 5 s limit.
    """
    start = time.perf_counter()
    ilp = build_placement_model(instance, consolidate=consolidate, **build_kwargs)
    solution = lp_solve(ilp.model, backend=backend, time_limit=time_limit, mip_gap=mip_gap)
    elapsed = time.perf_counter() - start
    if solution.status is SolveStatus.INFEASIBLE:
        raise PlacementError(
            "placement model infeasible — the switch cannot even host the "
            "mandatory physical NFs (check require_all_types / blocks_per_stage)"
        )
    if not solution.is_feasible:
        placement = Placement(
            instance=instance,
            physical=np.zeros((instance.num_types, instance.switch.stages), dtype=bool),
            assignments={},
            consolidate=consolidate,
            algorithm="ilp",
        )
        placement.solve_seconds = elapsed
        return placement
    placement = ilp.extract(solution)
    placement.solve_seconds = elapsed
    return placement
