"""Tenant → switch partitioning strategies.

A partitioner does not *decide* where a tenant lands — it produces a
**preference order** over the fabric's active switches, and the orchestrator
walks that order with per-switch admission as the fallback: if the
preferred shard rejects (memory, backplane, chain length), the next-best
shard is tried and the spillover is recorded.  Two strategies ship:

* :class:`ConsistentHashPartitioner` — a classic consistent-hash ring with
  virtual nodes.  Placement is a pure function of ``(tenant_id, active
  switch set)``: sticky under churn, minimally disturbed when a switch is
  drained (only that switch's arc re-homes), and needs no load feedback.
  Hashes are ``blake2b``-based so the order is stable across processes
  (Python's builtin ``hash`` is seed-randomized).
* :class:`LeastBackplanePartitioner` — load-aware: prefers the shard with
  the lowest backplane *utilization fraction* (ties broken by name), which
  levels recirculation load across heterogeneous switches at the price of
  a non-sticky mapping.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import TYPE_CHECKING, Protocol

from repro.core.spec import SFC
from repro.errors import PlacementError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (orchestrator imports us)
    from repro.fabric.orchestrator import FabricOrchestrator


def _stable_hash(key: str) -> int:
    """A process-stable 64-bit hash (builtin ``hash`` is seed-randomized)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class Partitioner(Protocol):
    """Strategy interface: a preference order over active switches."""

    def order(self, sfc: SFC, fabric: "FabricOrchestrator") -> list[str]:
        """Active switch names, most-preferred first, for hosting ``sfc``."""
        ...  # pragma: no cover


class ConsistentHashPartitioner:
    """Hash-ring preference order with ``replicas`` virtual nodes per
    switch.  Walking the ring clockwise from the tenant's hash yields every
    active switch exactly once — the full admission-fallback order, not
    just the owner."""

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise PlacementError(f"need >= 1 virtual node, got {replicas}")
        self.replicas = replicas
        self._ring_for: tuple[str, ...] = ()
        self._ring: list[tuple[int, str]] = []

    def _ring_over(self, names: tuple[str, ...]) -> list[tuple[int, str]]:
        if names != self._ring_for:
            points = [
                (_stable_hash(f"{name}#{r}"), name)
                for name in names
                for r in range(self.replicas)
            ]
            points.sort()
            # Ring before key: concurrent routers (the front end calls
            # ``order`` outside any fabric lock) must never see the new
            # cache key paired with the old ring.
            self._ring = points
            self._ring_for = names
        return self._ring

    def order(self, sfc: SFC, fabric: "FabricOrchestrator") -> list[str]:
        """Ring walk from the tenant's hash: every active switch once,
        most-preferred first."""
        names = tuple(fabric.active_switches)
        if not names:
            return []
        ring = self._ring_over(names)
        start = bisect.bisect_right(ring, (_stable_hash(f"tenant-{sfc.tenant_id}"), ""))
        out: list[str] = []
        seen: set[str] = set()
        for i in range(len(ring)):
            name = ring[(start + i) % len(ring)][1]
            if name not in seen:
                seen.add(name)
                out.append(name)
                if len(out) == len(names):
                    break
        return out


class LeastBackplanePartitioner:
    """Load-aware preference order: lowest backplane utilization fraction
    first (Eq. 12 load over capacity), names as the deterministic
    tie-break."""

    def order(self, sfc: SFC, fabric: "FabricOrchestrator") -> list[str]:
        """Active switches sorted by ascending backplane utilization."""
        def utilization(name: str) -> float:
            shard = fabric.shards[name]
            return shard.state.backplane_gbps / shard.base.switch.capacity_gbps

        return sorted(fabric.active_switches, key=lambda n: (utilization(n), n))


class ModuloPartitioner:
    """Round-robin-by-id preference order: the tenant's home shard is
    ``active[tenant_id % N]`` and spillover walks the remaining active
    switches in ring order.  The order is a pure O(N) function of
    ``(tenant_id, active switch set)`` with no hashing and no per-switch
    load reads — the strategy the million-tenant scale harness
    (:mod:`repro.scenarios.scale`) mirrors exactly, so fabric-vs-scale
    differential tests can compare placement decisions one to one."""

    def order(self, sfc: SFC, fabric: "FabricOrchestrator") -> list[str]:
        """Active switches starting at ``tenant_id % N``, ring order."""
        names = fabric.active_switches
        if not names:
            return []
        start = sfc.tenant_id % len(names)
        return names[start:] + names[:start]


#: Registry for the CLI / benchmarks (``--partitioner`` choices).
PARTITIONERS = {
    "hash": ConsistentHashPartitioner,
    "least-backplane": LeastBackplanePartitioner,
    "modulo": ModuloPartitioner,
}


def make_partitioner(name: str) -> Partitioner:
    """Instantiate a registered strategy by name."""
    try:
        return PARTITIONERS[name]()
    except KeyError:
        raise PlacementError(
            f"unknown partitioner {name!r}; choices: {sorted(PARTITIONERS)}"
        ) from None
