"""Churn replay against the fabric: the cluster-level twin of
:class:`~repro.controller.events.ChurnEngine`.

The same timestamped streams (synthesized or loaded from JSONL traces by
:mod:`repro.controller.events`) drive a whole
:class:`~repro.fabric.orchestrator.FabricOrchestrator` instead of a single
controller.  :class:`~repro.fabric.orchestrator.FabricOpResult` is
field-compatible with the per-switch ``OpResult`` where
:class:`~repro.controller.events.ChurnReport` looks, so replays produce the
same report type — plus the fabric's own metrics (spillovers, stitches,
per-switch admit-latency histograms) on the orchestrator.
"""

from __future__ import annotations

from typing import Iterable

from repro.controller.events import ChurnEvent, ChurnReport, EventKind
from repro.errors import WorkloadError
from repro.fabric.orchestrator import FabricOpResult, FabricOrchestrator


class FabricChurnEngine:
    """Applies a churn stream to a fabric orchestrator, one event at a
    time."""

    def __init__(self, fabric: FabricOrchestrator) -> None:
        self.fabric = fabric

    def apply(self, event: ChurnEvent) -> FabricOpResult:
        """Dispatch one event to the orchestrator."""
        if event.kind is EventKind.ARRIVAL:
            if event.sfc is None:
                raise WorkloadError(f"arrival event at t={event.time_s} has no SFC")
            return self.fabric.admit(event.sfc)
        if event.kind is EventKind.DEPARTURE:
            return self.fabric.evict(event.tenant_id)
        if event.sfc is None:
            raise WorkloadError(f"modify event at t={event.time_s} has no SFC")
        return self.fabric.modify(event.tenant_id, event.sfc)

    def replay(self, events: Iterable[ChurnEvent]) -> ChurnReport:
        """Apply every event in order and collect the report."""
        report = ChurnReport()
        with self.fabric.metrics.timer("replay_wall_s") as timer:
            for event in events:
                report.results.append((event, self.apply(event)))
        report.wall_seconds = timer.elapsed_s
        return report
