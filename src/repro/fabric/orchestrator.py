"""The fabric orchestrator: N per-switch SFC controllers behind one API.

:class:`FabricOrchestrator` shards tenant SFCs across a switch cluster.
Every fabric switch runs its own full :class:`~repro.controller.controller.
SfcController` — admission, placement, transactional data-plane installs —
and the orchestrator owns only what is genuinely *cross*-switch:

* **Routing.**  A pluggable partitioner (:mod:`repro.fabric.partitioner`)
  yields a preference order over active switches; the orchestrator walks it
  with per-switch admission as the fallback, recording spillover when a
  tenant lands off its preferred shard.
* **Stitching.**  Chains no single switch can host are split at a fold
  boundary (:mod:`repro.fabric.stitching`) into two segments placed on
  adjacent switches; the inter-switch link is charged the tenant's
  bandwidth through :class:`~repro.core.state.LinkState` — the same
  commit/release discipline as each switch's backplane.
* **Drain / failover.**  ``drain(switch)`` excludes a switch and re-homes
  its tenants through the normal admit path on the survivors, reporting
  who moved and who could not be re-placed; the drained shard ends with
  zero tenant rules.

The orchestrator inherits the controller's bookkeeping discipline: link
loads are renormalized in sorted-tenant order after every event, so the
incremental fabric state (per-switch arrays + backplane floats + link
floats) stays **bit-identical** to a from-scratch recomputation —
:meth:`check_invariant` asserts exactly that, per shard and per link.

**Concurrency.**  The fabric is safe to drive from the concurrent front
end's shard workers (:mod:`repro.frontend.workers`).  Every shard has its
own lock; the ``*_local`` fast paths (:meth:`admit_local`,
:meth:`evict_local`, :meth:`modify_local`) decide single-shard intents
under exactly one shard lock, so workers on different shards run
concurrently.  Anything cross-shard — spillover, stitching, drain — goes
through the public lifecycle methods, which acquire *every* shard lock in
sorted-name order (a total order, hence deadlock-free against fast paths,
which never hold more than one shard lock).  The shared tenant directory,
link loads, and gauges sit under an inner ``_dir_lock``.  Callers must
keep per-tenant program order themselves (the intent queue's
at-most-one-in-flight-per-tenant rule); read paths (``digest``,
``summary``, ``check_invariant``) are quiesce-only — call them with no op
in flight.  When journaling runs concurrently, set :attr:`journal_digests`
to ``False``: the fabric-wide digest reads every shard and cannot be
computed consistently under one shard lock (recovery verifies digests only
when present; the concurrent bench proves convergence by crash-recovery
against a serial-replay oracle instead).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from repro.controller.admission import AdmissionPolicy
from repro.controller.controller import OpResult, RuleFactory, SfcController
from repro.core.spec import SFC, ProblemInstance
from repro.core.state import LinkState, PipelineState, stable_digest
from repro.errors import PlacementError
from repro.fabric.partitioner import ConsistentHashPartitioner, Partitioner
from repro.fabric.stitching import StitchPlan, plan_stitch
from repro.fabric.topology import FabricTopology, LinkKey
from repro.telemetry.metrics import MetricsRegistry, Timer
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.spans import Tracer, maybe_span


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of a tenant's chain on one fabric switch:
    positions ``[start, stop)`` of the logical chain, installed as
    ``sfc`` at virtual stages ``stages`` on ``switch``."""

    switch: str
    sfc: SFC
    start: int
    stop: int
    stages: tuple[int, ...]


@dataclass(frozen=True)
class FabricTenant:
    """Fabric-level directory entry: the tenant's full logical chain plus
    where its segments live and which links they cross."""

    sfc: SFC
    segments: tuple[Segment, ...]
    links: tuple[LinkKey, ...] = ()

    @property
    def stitched(self) -> bool:
        return len(self.segments) > 1

    @property
    def switches(self) -> tuple[str, ...]:
        return tuple(seg.switch for seg in self.segments)


@dataclass
class FabricOpResult:
    """Outcome of one fabric operation.  Field-compatible with the
    per-switch :class:`~repro.controller.controller.OpResult` where the
    churn replay machinery needs it (``ok``/``op``/``latency_s``/rule
    churn), plus the fabric-only routing facts."""

    ok: bool
    tenant_id: int
    op: str
    switches: tuple[str, ...] = ()
    #: True when the chain was split across two switches.
    stitched: bool = False
    #: Preference rank of the accepting switch (0 = first choice; > 0
    #: means the tenant spilled over past rejecting shards).
    spillover: int = 0
    reason: str | None = None
    detail: str = ""
    hitless: bool = True
    latency_s: float = 0.0
    rules_added: int = 0
    rules_deleted: int = 0


@dataclass(frozen=True)
class DrainReport:
    """What ``drain(switch)`` did to the drained switch's tenants."""

    switch: str
    rehomed: tuple[int, ...] = ()
    evicted: tuple[int, ...] = ()

    @property
    def num_rehomed(self) -> int:
        return len(self.rehomed)

    @property
    def num_evicted(self) -> int:
        return len(self.evicted)

    def describe(self) -> str:
        """One-line human-readable summary (the CLI's output)."""
        return (
            f"drained {self.switch}: {self.num_rehomed} tenants re-homed, "
            f"{self.num_evicted} evicted"
        )


class FabricOrchestrator:
    """Tenant lifecycle (admit / evict / modify / drain) over a switch
    cluster, one :class:`SfcController` shard per fabric switch."""

    def __init__(
        self,
        topology: FabricTopology,
        num_types: int,
        partitioner: Partitioner | None = None,
        with_dataplane: bool = True,
        policy: AdmissionPolicy | None = None,
        consolidate: bool = True,
        reserve_physical_block: bool = True,
        rule_factory: RuleFactory | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
        fastpath: bool = False,
        fastpath_backend: str = "auto",
    ) -> None:
        self.topology = topology
        self.num_types = num_types
        self.partitioner = partitioner or ConsistentHashPartitioner()
        self.with_dataplane = with_dataplane
        #: Optional control-plane tracer, cascaded into every shard so one
        #: fabric admit yields one causally linked span tree
        #: (fabric -> controller -> install -> runtime.write).
        self.tracer = tracer
        #: Always-on flight recorder (bounded ring): lifecycle transitions
        #: land here, and the invariant checker / drain path snap the ring
        #: automatically on failure.  Pass your own to share it fabric-wide.
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.shards: dict[str, SfcController] = {}
        for name in topology.switch_names:
            node = topology.nodes[name]
            instance = ProblemInstance(
                switch=node.spec,
                sfcs=(),
                num_types=num_types,
                max_recirculations=node.max_recirculations,
            )
            self.shards[name] = SfcController(
                instance,
                with_dataplane=with_dataplane,
                policy=policy,
                consolidate=consolidate,
                reserve_physical_block=reserve_physical_block,
                rule_factory=rule_factory,
                name=name,
                tracer=tracer,
                recorder=self.recorder,
                fastpath=fastpath,
                fastpath_backend=fastpath_backend,
            )
        self.links: dict[LinkKey, LinkState] = {
            key: LinkState(link.capacity_gbps)
            for key, link in topology.links.items()
        }
        #: Fabric-level tenant directory (the only cross-switch state).
        self.tenants: dict[int, FabricTenant] = {}
        self.drained: set[str] = set()
        self.metrics = MetricsRegistry()
        # -- concurrency seams (see the module docstring) ----------------
        #: One lock per shard.  Fast paths hold exactly one; the public
        #: lifecycle methods acquire all of them in sorted-name order.
        self._shard_locks: dict[str, threading.RLock] = {
            name: threading.RLock() for name in topology.switch_names
        }
        self._lock_order: tuple[str, ...] = tuple(
            sorted(topology.switch_names)
        )
        #: Guards the tenant directory, link loads, and gauge refreshes —
        #: the state single-shard fast paths on *different* shards share.
        self._dir_lock = threading.RLock()
        #: Embed the fabric-wide digest in every journaled op (the per-LSN
        #: recovery oracle).  The concurrent front end sets this ``False``:
        #: the digest reads every shard and would tear under one shard
        #: lock.  Recovery only verifies digests that are present.
        self.journal_digests = True
        #: Optional durability coordinator (:class:`~repro.durability.
        #: checkpoint.FabricDurability`), set by ``attach()``.  Every
        #: successful fabric op is journaled to the fabric manifest log —
        #: the authoritative redo log recovery replays — while each shard
        #: additionally journals its own ops to a per-switch WAL shard.
        self.durability = None
        #: HA role: ``"primary"`` serves writes; a ``"standby"`` fabric is
        #: driven only by WAL replay and the frontend refuses writes on it
        #: (role-aware 503 + redirect to the primary).
        self.role = "primary"
        #: Fencing token of the lease reign this fabric serves under
        #: (0 = HA not in play; see :mod:`repro.ha.lease`).
        self.epoch = 0
        #: Lifecycle-op count at the last global re-optimization pass —
        #: :meth:`maybe_reoptimize` gates its cadence on the drift since.
        self._last_reopt_ops = 0

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active_switches(self) -> list[str]:
        """Sorted names of switches accepting new placements."""
        return [n for n in self.topology.switch_names if n not in self.drained]

    def metrics_snapshot(self) -> dict:
        """Current fabric metrics as one plain dict."""
        return self.metrics.snapshot()

    def digest(self) -> str:
        """Stable blake2b digest of the whole fabric: every shard's state
        digest, every link's load digest, the tenant directory (chains,
        segments, link charges) and the drained set.  Bit-identical fabric
        states — and only those — hash equal; this is the quantity the
        durability subsystem journals per LSN and recovery must reproduce.
        """
        return stable_digest(
            {
                "shards": {
                    name: self.shards[name].state.digest()
                    for name in self.topology.switch_names
                },
                "links": {
                    f"{a}-{b}": self.links[(a, b)].digest()
                    for a, b in sorted(self.links)
                },
                "tenants": [
                    {
                        "tenant_id": t,
                        "sfc": self.tenants[t].sfc.to_dict(),
                        "segments": [
                            [seg.switch, seg.start, seg.stop, list(seg.stages)]
                            for seg in self.tenants[t].segments
                        ],
                        "links": [list(key) for key in self.tenants[t].links],
                    }
                    for t in sorted(self.tenants)
                ],
                "drained": sorted(self.drained),
            }
        )

    def summary(self) -> dict:
        """Aggregate fabric state as one JSON-native dict: per-switch
        occupancy, link loads, tenant/stitch counts."""
        switches = {}
        for name in self.topology.switch_names:
            shard = self.shards[name]
            switches[name] = {
                "tenants": len(shard.tenants),
                "backplane_gbps": shard.state.backplane_gbps,
                "blocks_used": [
                    shard.state.blocks_at_stage(s)
                    for s in range(shard.base.switch.stages)
                ],
                "drained": name in self.drained,
            }
        links = {
            f"{a}-{b}": {
                "load_gbps": self.links[(a, b)].load_gbps,
                "capacity_gbps": self.links[(a, b)].capacity_gbps,
            }
            for a, b in sorted(self.links)
        }
        counters = self.metrics.snapshot()["counters"]
        return {
            "switches": switches,
            "links": links,
            "tenants": len(self.tenants),
            "stitched_tenants": sum(
                1 for rec in self.tenants.values() if rec.stitched
            ),
            "globalopt": {
                "runs": int(counters.get("globalopt.runs", 0)),
                "moves_planned": int(
                    counters.get("globalopt.moves_planned", 0)
                ),
                "moves_executed": int(
                    counters.get("globalopt.moves_executed", 0)
                ),
                "moves_skipped": int(
                    counters.get("globalopt.moves_skipped", 0)
                ),
                "moves_failed": int(
                    counters.get("globalopt.moves_failed", 0)
                ),
            },
        }

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    @contextmanager
    def _fabric_locked(self):
        """Hold every shard lock, acquired in sorted-name order — the
        fabric-wide total order that makes cross-shard ops deadlock-free
        against single-shard fast paths (which never hold more than one
        shard lock, so they can never close a cycle)."""
        for name in self._lock_order:
            self._shard_locks[name].acquire()
        try:
            yield
        finally:
            for name in reversed(self._lock_order):
                self._shard_locks[name].release()

    def _reject(
        self, tenant_id: int, op: str, reason: str, detail: str, timer: Timer
    ) -> FabricOpResult:
        self.metrics.inc("rejected")
        self.metrics.inc(f"rejected.{reason}")
        return FabricOpResult(
            ok=False,
            tenant_id=tenant_id,
            op=op,
            reason=reason,
            detail=detail,
            latency_s=timer.elapsed_s,
        )

    def _record_op(self, result: FabricOpResult) -> None:
        """Log one fabric lifecycle outcome into the flight recorder."""
        self.recorder.record_state(
            f"fabric.{result.op}",
            tenant=result.tenant_id,
            ok=result.ok,
            switches=list(result.switches),
            stitched=result.stitched,
            reason=result.reason,
        )

    def _commit_durable(self, op: str, data: dict) -> None:
        """Journal one successful fabric op (plus, when
        :attr:`journal_digests` is on, the post-op fabric digest —
        recovery's per-LSN oracle) to the attached coordinator."""
        if self.durability is None:
            return
        payload = dict(data)
        if self.journal_digests:
            payload["digest"] = self.digest()
        self.durability.commit_op(self, op, payload)

    def _refresh_gauges(self) -> None:
        with self._dir_lock:
            self.metrics.gauge("tenants").set(len(self.tenants))
            self.metrics.gauge("stitched_tenants").set(
                sum(1 for rec in self.tenants.values() if rec.stitched)
            )
            for name, shard in self.shards.items():
                self.metrics.gauge(f"backplane_gbps.{name}").set(
                    shard.state.backplane_gbps
                )
                self.metrics.gauge(f"tenants.{name}").set(len(shard.tenants))
            for (a, b), link in self.links.items():
                self.metrics.gauge(f"link_load_gbps.{a}-{b}").set(
                    link.load_gbps
                )

    def promote(self, epoch: int, durability=None) -> list[str]:
        """Promote-from-replica entry point: flip a standby-replayed fabric
        into the serving primary at lease ``epoch``.

        Validates the fabric invariant, adopts the new fencing token, and —
        when a fresh :class:`~repro.durability.checkpoint.FabricDurability`
        is supplied (built with ``start_lsn`` = the replica's applied LSN,
        so the journal continues the failed primary's LSN sequence) —
        attaches it, stamps it with the new epoch, and takes an immediate
        checkpoint so the promoted state is durable before the first write
        is served.  Returns the invariant problems (empty = clean
        takeover); on problems the durability attach still happens but the
        checkpoint is skipped, mirroring recovery's behaviour."""
        with self._fabric_locked():
            problems = self.check_invariant()
            self.role = "primary"
            self.epoch = int(epoch)
            if durability is not None:
                durability.attach(self)
                durability.set_epoch(self.epoch)
                if not problems:
                    durability.checkpoint(self)
            self._refresh_gauges()
            self.metrics.inc("ha.promotions")
            self.recorder.snap(
                "ha-promote",
                epoch=self.epoch,
                digest=self.digest(),
                ok=not problems,
            )
        return problems

    def _renormalize_links(self) -> None:
        """Recompute every link's load in sorted-tenant order — the exact
        accumulation a from-scratch recomputation over the directory uses,
        so incremental link floats stay bit-identical to it (the fabric
        analogue of the controller's backplane renormalization)."""
        with self._dir_lock:
            loads = {key: 0.0 for key in self.links}
            for tenant_id in sorted(self.tenants):
                record = self.tenants[tenant_id]
                for key in record.links:
                    loads[key] += record.sfc.bandwidth_gbps
            for key, total in loads.items():
                self.links[key].load_gbps = total

    def _observe_admit(self, switch: str, result: OpResult) -> None:
        self.metrics.observe(f"admit_latency_s.{switch}", result.latency_s)

    def _commit_stitch(
        self, sfc: SFC, plan: StitchPlan, op: str, order: list[str], timer: Timer
    ) -> FabricOpResult | None:
        """Admit both planned segments and charge the link; ``None`` (with
        any partial admit rolled back) if a shard refuses after all —
        planning probed ``can_host``, so only a data-plane surprise can
        land here."""
        head_res = self.shards[plan.head_switch].admit(plan.head)
        self._observe_admit(plan.head_switch, head_res)
        if not head_res.ok:
            return None
        tail_res = self.shards[plan.tail_switch].admit(plan.tail)
        self._observe_admit(plan.tail_switch, tail_res)
        if not tail_res.ok:
            self.shards[plan.head_switch].evict(sfc.tenant_id)
            return None
        self.links[plan.link].add_load(sfc.bandwidth_gbps)
        self.tenants[sfc.tenant_id] = FabricTenant(
            sfc=sfc,
            segments=(
                Segment(
                    switch=plan.head_switch,
                    sfc=plan.head,
                    start=0,
                    stop=plan.split,
                    stages=head_res.stages,
                ),
                Segment(
                    switch=plan.tail_switch,
                    sfc=plan.tail,
                    start=plan.split,
                    stop=sfc.length,
                    stages=tail_res.stages,
                ),
            ),
            links=(plan.link,),
        )
        self._renormalize_links()
        self.metrics.inc("stitched")
        return FabricOpResult(
            ok=True,
            tenant_id=sfc.tenant_id,
            op=op,
            switches=(plan.head_switch, plan.tail_switch),
            stitched=True,
            spillover=order.index(plan.head_switch),
            rules_added=head_res.rules_added + tail_res.rules_added,
            latency_s=timer.elapsed_s,
        )

    def _place(self, sfc: SFC, op: str, timer: Timer) -> FabricOpResult:
        """Route one chain: preferred shard first, spillover down the
        partitioner order, cross-switch stitching as the last resort."""
        order = self.partitioner.order(sfc, self)
        if not order:
            return self._reject(
                sfc.tenant_id, op, "no-active-switch",
                "every fabric switch is drained", timer,
            )
        last: OpResult | None = None
        for rank, name in enumerate(order):
            result = self.shards[name].admit(sfc)
            self._observe_admit(name, result)
            if result.ok:
                self.tenants[sfc.tenant_id] = FabricTenant(
                    sfc=sfc,
                    segments=(
                        Segment(
                            switch=name,
                            sfc=sfc,
                            start=0,
                            stop=sfc.length,
                            stages=result.stages,
                        ),
                    ),
                )
                if rank:
                    self.metrics.inc("spillovers")
                return FabricOpResult(
                    ok=True,
                    tenant_id=sfc.tenant_id,
                    op=op,
                    switches=(name,),
                    spillover=rank,
                    rules_added=result.rules_added,
                    latency_s=timer.elapsed_s,
                )
            last = result
        plan = plan_stitch(self, sfc, order)
        if plan is not None:
            stitched = self._commit_stitch(sfc, plan, op, order, timer)
            if stitched is not None:
                return stitched
        assert last is not None  # order was non-empty
        return self._reject(
            sfc.tenant_id, op, last.reason or "no-feasible-placement",
            f"no single switch fits and stitching failed; last shard said: "
            f"{last.detail}", timer,
        )

    def _remove(self, tenant_id: int) -> tuple[FabricTenant, int]:
        """Evict every segment of a directory tenant and release its link
        charges; returns the removed record and the rule-churn total.
        Caller holds the lock of every shard the tenant touches."""
        with self._dir_lock:
            record = self.tenants.pop(tenant_id)
        deleted = 0
        for seg in record.segments:
            result = self.shards[seg.switch].evict(tenant_id)
            deleted += result.rules_deleted
        with self._dir_lock:
            for key in record.links:
                self.links[key].release_load(record.sfc.bandwidth_gbps)
            self._renormalize_links()
        return record, deleted

    # ------------------------------------------------------------------
    # Lifecycle operations
    # ------------------------------------------------------------------
    def admit(self, sfc: SFC) -> FabricOpResult:
        """Admit one tenant chain somewhere on the fabric."""
        with self._fabric_locked():
            with maybe_span(
                self.tracer, "fabric.admit", tenant=sfc.tenant_id
            ) as span, self.metrics.timer("op_latency_s.admit") as timer:
                result = self._admit(sfc, timer)
                span.set(
                    ok=result.ok, switches=list(result.switches),
                    stitched=result.stitched,
                )
            self._record_op(result)
            if result.ok:
                self._commit_durable(
                    "admit", {"tenant_id": sfc.tenant_id, "sfc": sfc.to_dict()}
                )
        return result

    def _admit(self, sfc: SFC, timer: Timer) -> FabricOpResult:
        if sfc.tenant_id in self.tenants:
            return self._reject(
                sfc.tenant_id, "admit", "duplicate-tenant",
                f"tenant {sfc.tenant_id} already has a live chain", timer,
            )
        result = self._place(sfc, "admit", timer)
        if result.ok:
            self.metrics.inc("admitted")
            self._refresh_gauges()
        return result

    def evict(self, tenant_id: int) -> FabricOpResult:
        """Tenant departure: tear down every segment, release links."""
        with self._fabric_locked():
            with maybe_span(
                self.tracer, "fabric.evict", tenant=tenant_id
            ) as span, self.metrics.timer("op_latency_s.evict") as timer:
                result = self._evict(tenant_id, timer)
                span.set(ok=result.ok, switches=list(result.switches))
            self._record_op(result)
            if result.ok:
                self._commit_durable("evict", {"tenant_id": tenant_id})
        return result

    def _evict(self, tenant_id: int, timer: Timer) -> FabricOpResult:
        if tenant_id not in self.tenants:
            return self._reject(
                tenant_id, "evict", "unknown-tenant",
                f"tenant {tenant_id} has no live chain", timer,
            )
        record, deleted = self._remove(tenant_id)
        self.metrics.inc("evicted")
        self._refresh_gauges()
        return FabricOpResult(
            ok=True,
            tenant_id=tenant_id,
            op="evict",
            switches=record.switches,
            stitched=record.stitched,
            rules_deleted=deleted,
            latency_s=timer.elapsed_s,
        )

    def modify(self, tenant_id: int, new_chain: SFC) -> FabricOpResult:
        """Swap a live tenant's chain.  Single-homed tenants first try a
        hitless in-place modify on their home shard; stitched tenants (or
        a home-shard refusal) fall back to re-homing — evict then re-admit
        through the normal routing path (not hitless).  If the new chain
        fits nowhere, the old chain is restored (its resources were just
        freed, so the same routing re-places it) and the rejection is
        returned."""
        with self._fabric_locked():
            with maybe_span(
                self.tracer, "fabric.modify", tenant=tenant_id
            ) as span, self.metrics.timer("op_latency_s.modify") as timer:
                result = self._modify(tenant_id, new_chain, timer)
                span.set(ok=result.ok, hitless=result.hitless)
            self._record_op(result)
            # Failed modifies are journaled too (unless trivially rejected):
            # a refused re-home still evicts + re-places the old chain, which
            # can land the tenant on different switches — a state change
            # replay must re-drive.
            if result.ok or result.reason != "unknown-tenant":
                self._commit_durable(
                    "modify",
                    {
                        "tenant_id": tenant_id,
                        "sfc": new_chain.to_dict(),
                        "ok": result.ok,
                    },
                )
        return result

    def _modify(
        self, tenant_id: int, new_chain: SFC, timer: Timer
    ) -> FabricOpResult:
        record = self.tenants.get(tenant_id)
        if record is None:
            return self._reject(
                tenant_id, "modify", "unknown-tenant",
                f"tenant {tenant_id} has no live chain", timer,
            )
        new_sfc = replace(new_chain, tenant_id=tenant_id)
        if not record.stitched:
            home = record.segments[0].switch
            result = self.shards[home].modify(tenant_id, new_sfc)
            if result.ok:
                self.tenants[tenant_id] = FabricTenant(
                    sfc=new_sfc,
                    segments=(
                        Segment(
                            switch=home,
                            sfc=new_sfc,
                            start=0,
                            stop=new_sfc.length,
                            stages=result.stages,
                        ),
                    ),
                )
                self.metrics.inc("modified")
                self._refresh_gauges()
                return FabricOpResult(
                    ok=True,
                    tenant_id=tenant_id,
                    op="modify",
                    switches=(home,),
                    hitless=result.hitless,
                    rules_added=result.rules_added,
                    rules_deleted=result.rules_deleted,
                    latency_s=timer.elapsed_s,
                )
        old_record, deleted = self._remove(tenant_id)
        placed = self._place(new_sfc, "modify", timer)
        if placed.ok:
            self.metrics.inc("modified")
            self.metrics.inc("modify_rehomed")
            self._refresh_gauges()
            placed.hitless = False
            placed.rules_deleted += deleted
            return placed
        restored = self._place(old_record.sfc, "modify", timer)
        if not restored.ok:
            # Should be unreachable (the old chain's resources were just
            # freed); counted so a regression cannot hide.
            self.metrics.inc("modify_restore_failed")
        self._refresh_gauges()
        return placed

    # ------------------------------------------------------------------
    # Drain / failover
    # ------------------------------------------------------------------
    def drain(self, switch: str) -> DrainReport:
        """Take ``switch`` out of service: exclude it from routing, then
        re-home every tenant with a segment on it through the normal admit
        path on the surviving shards.  Tenants that fit nowhere else are
        evicted.  Afterwards the drained shard hosts zero tenants and zero
        tenant rules.  Tenants that could not be re-homed snap the flight
        recorder, preserving the event window that led to each eviction."""
        if switch not in self.shards:
            raise PlacementError(f"unknown switch {switch!r}")
        with self._fabric_locked():
            with maybe_span(
                self.tracer, "fabric.drain", switch=switch
            ) as span, self.metrics.timer("op_latency_s.drain"):
                self.drained.add(switch)
                affected = sorted(
                    tenant_id
                    for tenant_id, record in self.tenants.items()
                    if switch in record.switches
                )
                rehomed: list[int] = []
                evicted: list[int] = []
                for tenant_id in affected:
                    record, _deleted = self._remove(tenant_id)
                    placed = self._place(record.sfc, "drain", Timer())
                    if placed.ok:
                        rehomed.append(tenant_id)
                    else:
                        evicted.append(tenant_id)
                self.metrics.inc("drains")
                self.metrics.inc("drain.rehomed", len(rehomed))
                self.metrics.inc("drain.evicted", len(evicted))
                self._refresh_gauges()
                span.set(rehomed=len(rehomed), evicted=len(evicted))
            self.recorder.record_state(
                "fabric.drain", switch=switch,
                rehomed=list(rehomed), evicted=list(evicted),
            )
            if evicted:
                self.recorder.snap(
                    "drain-evicted-tenants", switch=switch,
                    evicted=list(evicted),
                )
            self._commit_durable(
                "drain",
                {
                    "switch": switch,
                    "rehomed": list(rehomed),
                    "evicted": list(evicted),
                },
            )
        return DrainReport(
            switch=switch, rehomed=tuple(rehomed), evicted=tuple(evicted)
        )

    def undrain(self, switch: str) -> None:
        """Return a drained switch to the routing pool (its tenants do not
        move back; new arrivals may land on it again)."""
        if switch not in self.shards:
            raise PlacementError(f"unknown switch {switch!r}")
        with self._fabric_locked():
            self.drained.discard(switch)
            self._commit_durable("undrain", {"switch": switch})

    # ------------------------------------------------------------------
    # Global re-optimization (see :mod:`repro.globalopt`)
    # ------------------------------------------------------------------
    def reoptimize(self, **kwargs):
        """Run one fleet-wide re-optimization pass: snapshot the fabric,
        re-solve the tenant->switch assignment, and hitlessly migrate the
        wins.  Thin wrapper over :func:`repro.globalopt.reoptimize_fabric`
        (kwargs pass through); returns its :class:`~repro.globalopt.
        ReoptReport`."""
        from repro.globalopt import reoptimize_fabric

        return reoptimize_fabric(self, **kwargs)

    def maybe_reoptimize(
        self,
        min_stitched: int = 2,
        min_interval_ops: int = 200,
        **kwargs,
    ):
        """Drift-gated cadence: run :meth:`reoptimize` only when the fleet
        looks fragmented (at least ``min_stitched`` stitched tenants) and
        enough lifecycle churn (``min_interval_ops`` admits/evicts/
        modifies) has passed since the last pass.  Returns the report, or
        ``None`` when the gate holds."""
        counters = self.metrics.snapshot()["counters"]
        ops = (
            int(counters.get("admitted", 0))
            + int(counters.get("evicted", 0))
            + int(counters.get("modified", 0))
        )
        if ops - self._last_reopt_ops < min_interval_ops:
            return None
        with self._dir_lock:
            stitched = sum(1 for r in self.tenants.values() if r.stitched)
        if stitched < min_stitched:
            self._last_reopt_ops = ops
            return None
        return self.reoptimize(**kwargs)

    # ------------------------------------------------------------------
    # Single-shard fast paths (the concurrent front end's entry points)
    # ------------------------------------------------------------------
    # Each ``*_local`` decides an intent under exactly one shard lock when
    # the outcome is provably single-shard, and returns ``None`` when the
    # caller must escalate to the matching public method (which takes the
    # fabric-wide lock order).  Callers must serialize ops per tenant
    # (the intent queue's at-most-one-in-flight rule); the journaled
    # record order then matches execution order per shard and per tenant,
    # because the journal append happens before the shard lock is
    # released.
    def preferred_switch(self, sfc: SFC) -> str | None:
        """The partitioner's first active choice for ``sfc`` — the shard
        the front end routes an admit intent to (``None`` = all drained).
        Only pure (state-independent) partitioners make concurrent routing
        reproducible under replay; see :mod:`repro.fabric.partitioner`."""
        order = self.partitioner.order(sfc, self)
        return order[0] if order else None

    def home_switch(self, tenant_id: int) -> str | None:
        """The single home shard of ``tenant_id`` — how the front end
        routes evict/modify intents.  ``None`` when the tenant is unknown
        (any worker may reject it) or stitched (escalate)."""
        with self._dir_lock:
            record = self.tenants.get(tenant_id)
            if record is None or record.stitched:
                return None
            return record.segments[0].switch

    def admit_local(self, sfc: SFC, switch: str) -> FabricOpResult | None:
        """Fast-path admit: try exactly ``switch`` (the caller's routing
        choice, normally :meth:`preferred_switch`) under that shard's lock
        alone.  Returns the result when the outcome is decided locally —
        success, or a duplicate-tenant rejection — and ``None`` when this
        shard refuses and the caller must escalate to :meth:`admit`
        (spillover / stitching need the fabric-wide lock order)."""
        lock = self._shard_locks.get(switch)
        if lock is None:
            raise PlacementError(f"unknown switch {switch!r}")
        with lock:
            with maybe_span(
                self.tracer, "fabric.admit", tenant=sfc.tenant_id
            ) as span, self.metrics.timer("op_latency_s.admit") as timer:
                with self._dir_lock:
                    duplicate = sfc.tenant_id in self.tenants
                    drained = switch in self.drained
                if duplicate:
                    result = self._reject(
                        sfc.tenant_id, "admit", "duplicate-tenant",
                        f"tenant {sfc.tenant_id} already has a live chain",
                        timer,
                    )
                    span.set(ok=False, switches=[], stitched=False)
                    self._record_op(result)
                    return result
                if drained:
                    span.set(escalated=True)
                    return None
                shard_res = self.shards[switch].admit(sfc)
                self._observe_admit(switch, shard_res)
                if not shard_res.ok:
                    span.set(escalated=True)
                    return None
                with self._dir_lock:
                    self.tenants[sfc.tenant_id] = FabricTenant(
                        sfc=sfc,
                        segments=(
                            Segment(
                                switch=switch,
                                sfc=sfc,
                                start=0,
                                stop=sfc.length,
                                stages=shard_res.stages,
                            ),
                        ),
                    )
                    self.metrics.inc("admitted")
                    self._refresh_gauges()
                result = FabricOpResult(
                    ok=True,
                    tenant_id=sfc.tenant_id,
                    op="admit",
                    switches=(switch,),
                    rules_added=shard_res.rules_added,
                    latency_s=timer.elapsed_s,
                )
                span.set(ok=True, switches=[switch], stitched=False)
            self._record_op(result)
            self._commit_durable(
                "admit", {"tenant_id": sfc.tenant_id, "sfc": sfc.to_dict()}
            )
        return result

    def evict_local(self, tenant_id: int) -> FabricOpResult | None:
        """Fast-path evict under the tenant's home-shard lock alone.
        Decides unknown tenants (rejection) and single-homed tenants
        locally; returns ``None`` for stitched tenants, which touch two
        shards and a link and must go through :meth:`evict`."""
        with self._dir_lock:
            record = self.tenants.get(tenant_id)
        if record is None:
            with maybe_span(
                self.tracer, "fabric.evict", tenant=tenant_id
            ) as span, self.metrics.timer("op_latency_s.evict") as timer:
                result = self._reject(
                    tenant_id, "evict", "unknown-tenant",
                    f"tenant {tenant_id} has no live chain", timer,
                )
                span.set(ok=False, switches=[])
            self._record_op(result)
            return result
        if record.stitched:
            return None
        home = record.segments[0].switch
        with self._shard_locks[home]:
            # Revalidate under the lock: a cross-shard op (drain is keyed
            # by switch, so the queue does not serialize it against this
            # tenant's intents) may have re-homed or evicted the tenant
            # between routing and locking.  Mutating through a stale home
            # lock would race the real home's worker, so escalate instead.
            with self._dir_lock:
                record = self.tenants.get(tenant_id)
            if (
                record is None
                or record.stitched
                or record.segments[0].switch != home
            ):
                return None
            with maybe_span(
                self.tracer, "fabric.evict", tenant=tenant_id
            ) as span, self.metrics.timer("op_latency_s.evict") as timer:
                record, deleted = self._remove(tenant_id)
                self.metrics.inc("evicted")
                self._refresh_gauges()
                result = FabricOpResult(
                    ok=True,
                    tenant_id=tenant_id,
                    op="evict",
                    switches=record.switches,
                    rules_deleted=deleted,
                    latency_s=timer.elapsed_s,
                )
                span.set(ok=True, switches=list(record.switches))
            self._record_op(result)
            self._commit_durable("evict", {"tenant_id": tenant_id})
        return result

    def modify_local(
        self, tenant_id: int, new_chain: SFC
    ) -> FabricOpResult | None:
        """Fast-path modify: hitless in-place swap on a single-homed
        tenant's home shard, under that shard's lock alone.  Returns
        ``None`` for stitched tenants or when the home shard refuses the
        in-place swap — re-homing evicts and re-routes, so it must go
        through :meth:`modify`."""
        with self._dir_lock:
            record = self.tenants.get(tenant_id)
        if record is None:
            with maybe_span(
                self.tracer, "fabric.modify", tenant=tenant_id
            ) as span, self.metrics.timer("op_latency_s.modify") as timer:
                result = self._reject(
                    tenant_id, "modify", "unknown-tenant",
                    f"tenant {tenant_id} has no live chain", timer,
                )
                span.set(ok=False, hitless=True)
            self._record_op(result)
            return result
        if record.stitched:
            return None
        home = record.segments[0].switch
        with self._shard_locks[home]:
            # Same revalidation as evict_local: a concurrent drain may
            # have moved or evicted the tenant while we routed here.
            with self._dir_lock:
                record = self.tenants.get(tenant_id)
            if (
                record is None
                or record.stitched
                or record.segments[0].switch != home
            ):
                return None
            with maybe_span(
                self.tracer, "fabric.modify", tenant=tenant_id
            ) as span, self.metrics.timer("op_latency_s.modify") as timer:
                new_sfc = replace(new_chain, tenant_id=tenant_id)
                shard_res = self.shards[home].modify(tenant_id, new_sfc)
                if not shard_res.ok:
                    span.set(escalated=True)
                    return None
                with self._dir_lock:
                    self.tenants[tenant_id] = FabricTenant(
                        sfc=new_sfc,
                        segments=(
                            Segment(
                                switch=home,
                                sfc=new_sfc,
                                start=0,
                                stop=new_sfc.length,
                                stages=shard_res.stages,
                            ),
                        ),
                    )
                    self.metrics.inc("modified")
                    self._refresh_gauges()
                result = FabricOpResult(
                    ok=True,
                    tenant_id=tenant_id,
                    op="modify",
                    switches=(home,),
                    hitless=shard_res.hitless,
                    rules_added=shard_res.rules_added,
                    rules_deleted=shard_res.rules_deleted,
                    latency_s=timer.elapsed_s,
                )
                span.set(ok=True, hitless=shard_res.hitless)
            self._record_op(result)
            self._commit_durable(
                "modify",
                {
                    "tenant_id": tenant_id,
                    "sfc": new_chain.to_dict(),
                    "ok": True,
                },
            )
        return result

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def probe_tenant(self, tenant_id: int) -> bool:
        """End-to-end forwarding check: inject one probe packet per segment
        and require each to execute its segment's *complete* installed rule
        generation, with the segments jointly covering the whole logical
        chain.  Needs the data plane."""
        from repro.controller.install import TENANT_MAP
        from repro.dataplane.packet import Packet

        if not self.with_dataplane:
            raise PlacementError("probe_tenant needs with_dataplane=True")
        record = self.tenants.get(tenant_id)
        if record is None:
            return False
        covered = 0
        for seg in record.segments:
            shard = self.shards[seg.switch]
            assert shard.pipeline is not None and shard.installer is not None
            [result] = shard.pipeline.process_batch(
                [Packet(tenant_id=tenant_id, pass_id=1)], trace=True
            )
            applied = [t for t in result.applied_tables() if t != TENANT_MAP]
            expected = [
                nf.table_name
                for nf in shard.installer.installed[tenant_id].compiled
            ]
            if applied != expected:
                return False
            covered += len(applied)
        return covered == record.sfc.length

    def check_invariant(self) -> list[str]:
        """Audit the whole fabric against a from-scratch recomputation.

        Per shard: the incremental :class:`PipelineState` must be
        bit-identical to :meth:`PipelineState.from_placement` over that
        shard's surviving tenants.  Per link: the incremental load must
        equal the sorted-tenant-order sum over the directory.  Plus
        directory/shard cross-consistency and empty drained shards.
        Returns human-readable problem strings (empty = invariant holds);
        any problem snaps the flight recorder so the run-up to the drift is
        preserved alongside the findings.
        """
        problems: list[str] = []
        for name in self.topology.switch_names:
            shard = self.shards[name]
            reference = PipelineState.from_placement(
                shard.placement,
                reserve_physical_block=shard.reserve_physical_block,
            )
            if not np.array_equal(shard.state.entries, reference.entries):
                problems.append(f"{name}: entry matrix drifted")
            if not np.array_equal(shard.state.nf_blocks, reference.nf_blocks):
                problems.append(f"{name}: nf-block matrix drifted")
            if not np.array_equal(shard.state.physical, reference.physical):
                problems.append(f"{name}: physical layout drifted")
            for s in range(shard.base.switch.stages):
                if shard.state.blocks_at_stage(s) != reference.blocks_at_stage(s):
                    problems.append(f"{name}: stage {s} block total drifted")
            if shard.state.backplane_gbps != reference.backplane_gbps:
                problems.append(
                    f"{name}: backplane {shard.state.backplane_gbps!r} != "
                    f"recomputed {reference.backplane_gbps!r}"
                )
            if shard.state.digest() != reference.digest():
                problems.append(
                    f"{name}: state digest {shard.state.digest()} != "
                    f"recomputed {reference.digest()}"
                )
            expected_tenants = {
                tenant_id
                for tenant_id, record in self.tenants.items()
                if name in record.switches
            }
            if set(shard.tenants) != expected_tenants:
                problems.append(
                    f"{name}: shard tenants {sorted(shard.tenants)} != "
                    f"directory {sorted(expected_tenants)}"
                )
        for tenant_id in sorted(self.tenants):
            for seg in self.tenants[tenant_id].segments:
                shard_record = self.shards[seg.switch].tenants.get(tenant_id)
                if shard_record is None or shard_record.sfc != seg.sfc:
                    problems.append(
                        f"tenant {tenant_id}: segment on {seg.switch} does "
                        f"not match the shard's record"
                    )
        expected_loads = {key: 0.0 for key in self.links}
        for tenant_id in sorted(self.tenants):
            record = self.tenants[tenant_id]
            for key in record.links:
                expected_loads[key] += record.sfc.bandwidth_gbps
        for key in sorted(self.links):
            if self.links[key].load_gbps != expected_loads[key]:
                problems.append(
                    f"link {key}: load {self.links[key].load_gbps!r} != "
                    f"recomputed {expected_loads[key]!r} "
                    f"(digest {self.links[key].digest()})"
                )
        for name in sorted(self.drained):
            shard = self.shards[name]
            if shard.tenants or shard.state.entries.sum() != 0:
                problems.append(f"{name}: drained but not empty")
        if problems:
            self.recorder.snap("fabric-invariant-violated", problems=problems)
        return problems
