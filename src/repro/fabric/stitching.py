"""Cross-switch chain stitching: split a logical SFC at a fold boundary.

When no single switch can host a tenant's chain — too long for one
switch's ``K = S·(R+1)`` virtual stages, or no shard has the SRAM /
backplane for it — the fabric splits the *logical* chain into two
contiguous segments and places each through the normal per-switch admit
path.  The split point prefers **fold boundaries** (multiples of the
physical stage count ``S``): a chain folded at stage ``S`` would have paid
one full recirculation pass on a single switch, so cutting there converts
the most expensive fold into an inter-switch hop instead of an in-switch
recirculation — the hop is charged to the link, the surviving folds to
each segment's own backplane, reusing the recirculation-amplification
accounting of :mod:`repro.core.state` on both sides.

Planning is read-only (shards are probed via
:meth:`~repro.controller.controller.SfcController.can_host`); the
orchestrator commits a returned :class:`StitchPlan` by admitting both
segments and charging the link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.spec import SFC
from repro.errors import PlacementError
from repro.fabric.topology import LinkKey

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.fabric.orchestrator import FabricOrchestrator


def split_points(length: int, stages: int) -> list[int]:
    """Candidate split indices ``1 .. length-1``, fold boundaries first.

    Within each class (fold / non-fold) the more balanced split wins, so
    the planner tries the cheapest, most even cuts before degenerate ones.
    """
    if length < 2:
        return []
    balance = lambda j: (abs(2 * j - length), j)  # noqa: E731 — local sort key
    candidates = range(1, length)
    folds = sorted((j for j in candidates if j % stages == 0), key=balance)
    rest = sorted((j for j in candidates if j % stages != 0), key=balance)
    return folds + rest


def split_chain(sfc: SFC, at: int) -> tuple[SFC, SFC]:
    """Cut ``sfc`` into head (positions ``< at``) and tail (``>= at``)
    segments.  Both keep the tenant's ID and full bandwidth — every packet
    of the tenant traverses both segments."""
    if not 1 <= at <= sfc.length - 1:
        raise PlacementError(
            f"split index {at} outside [1, {sfc.length - 1}] for {sfc.name!r}"
        )
    head = SFC(
        name=f"{sfc.name}#head",
        nf_types=sfc.nf_types[:at],
        rules=sfc.rules[:at],
        bandwidth_gbps=sfc.bandwidth_gbps,
        tenant_id=sfc.tenant_id,
    )
    tail = SFC(
        name=f"{sfc.name}#tail",
        nf_types=sfc.nf_types[at:],
        rules=sfc.rules[at:],
        bandwidth_gbps=sfc.bandwidth_gbps,
        tenant_id=sfc.tenant_id,
    )
    return head, tail


@dataclass(frozen=True)
class StitchPlan:
    """A committed-to-nothing stitching decision: where to cut the chain
    and which adjacent pair of switches hosts the two segments."""

    split: int
    head_switch: str
    tail_switch: str
    head: SFC
    tail: SFC
    link: LinkKey


def plan_stitch(
    fabric: "FabricOrchestrator", sfc: SFC, order: list[str]
) -> StitchPlan | None:
    """Find a feasible two-segment stitching of ``sfc``, or ``None``.

    Split points are tried fold-boundaries-first; for each cut, head hosts
    follow the partitioner's preference ``order`` and tail hosts must be
    *adjacent* to the head with enough residual link capacity for the
    tenant's bandwidth.  All probes are non-mutating (``can_host``), so a
    failed search leaves no trace on any shard.
    """
    if sfc.length < 2 or len(order) < 2:
        return None
    stages = min(fabric.topology.nodes[name].spec.stages for name in order)
    for at in split_points(sfc.length, stages):
        head, tail = split_chain(sfc, at)
        for head_switch in order:
            if not fabric.shards[head_switch].can_host(head):
                continue
            for tail_switch in order:
                if tail_switch == head_switch:
                    continue
                link = fabric.topology.link_between(head_switch, tail_switch)
                if link is None:
                    continue
                if not fabric.links[link.key].fits(sfc.bandwidth_gbps):
                    continue
                if fabric.shards[tail_switch].can_host(tail):
                    return StitchPlan(
                        split=at,
                        head_switch=head_switch,
                        tail_switch=tail_switch,
                        head=head,
                        tail=tail,
                        link=link.key,
                    )
    return None
