"""The fabric's physical model: switches plus capacity-annotated links.

A :class:`FabricTopology` is the static wiring of a switch cluster: each
:class:`SwitchNode` carries its own :class:`~repro.core.spec.SwitchSpec` and
recirculation budget (clusters may be heterogeneous), and each
:class:`FabricLink` is an undirected inter-switch connection with its own
bandwidth capacity.  Links are pure description — the live load they carry
is tracked by the orchestrator through
:class:`~repro.core.state.LinkState`, mirroring how a
:class:`~repro.core.spec.SwitchSpec` describes a switch while
:class:`~repro.core.state.PipelineState` tracks its occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.spec import SwitchSpec
from repro.errors import PlacementError

#: Canonical undirected link key: the sorted endpoint pair.
LinkKey = tuple[str, str]


def link_key(a: str, b: str) -> LinkKey:
    """The canonical (order-independent) key of the link between ``a`` and
    ``b``."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class SwitchNode:
    """One fabric switch: a name plus its pipeline spec and recirculation
    budget (the per-switch half of a :class:`ProblemInstance`)."""

    name: str
    spec: SwitchSpec = field(default_factory=SwitchSpec)
    max_recirculations: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise PlacementError("fabric switches need a non-empty name")
        if self.max_recirculations < 0:
            raise PlacementError("max_recirculations must be >= 0")


@dataclass(frozen=True)
class FabricLink:
    """An undirected inter-switch link with a bandwidth capacity."""

    a: str
    b: str
    capacity_gbps: float = 400.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise PlacementError(f"self-link on switch {self.a!r}")
        if self.capacity_gbps <= 0:
            raise PlacementError(
                f"link {self.a!r}-{self.b!r}: capacity must be positive"
            )

    @property
    def key(self) -> LinkKey:
        return link_key(self.a, self.b)


class FabricTopology:
    """Validated switch-cluster wiring: named switches + undirected links."""

    def __init__(
        self, nodes: Iterable[SwitchNode], links: Iterable[FabricLink] = ()
    ) -> None:
        self.nodes: dict[str, SwitchNode] = {}
        for node in nodes:
            if node.name in self.nodes:
                raise PlacementError(f"duplicate switch name {node.name!r}")
            self.nodes[node.name] = node
        if not self.nodes:
            raise PlacementError("a fabric needs at least one switch")
        self.links: dict[LinkKey, FabricLink] = {}
        for link in links:
            for end in (link.a, link.b):
                if end not in self.nodes:
                    raise PlacementError(
                        f"link endpoint {end!r} is not a fabric switch"
                    )
            if link.key in self.links:
                raise PlacementError(
                    f"duplicate link between {link.a!r} and {link.b!r}"
                )
            self.links[link.key] = link

    # ------------------------------------------------------------------
    @property
    def switch_names(self) -> list[str]:
        """All switch names, sorted (the canonical fabric iteration order)."""
        return sorted(self.nodes)

    def link_between(self, a: str, b: str) -> FabricLink | None:
        """The link joining ``a`` and ``b``, or ``None`` if they are not
        adjacent."""
        return self.links.get(link_key(a, b))

    def neighbors(self, name: str) -> list[str]:
        """Switches adjacent to ``name``, sorted."""
        if name not in self.nodes:
            raise PlacementError(f"unknown switch {name!r}")
        out = set()
        for a, b in self.links:
            if a == name:
                out.add(b)
            elif b == name:
                out.add(a)
        return sorted(out)

    def __repr__(self) -> str:
        return (
            f"FabricTopology(switches={len(self.nodes)}, "
            f"links={len(self.links)})"
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def full_mesh(
        cls,
        num_switches: int,
        spec: SwitchSpec | None = None,
        link_capacity_gbps: float = 400.0,
        max_recirculations: int = 2,
    ) -> "FabricTopology":
        """A homogeneous fully connected fabric of ``num_switches`` switches
        named ``sw0 .. sw{n-1}`` (the default shape for experiments)."""
        if num_switches < 1:
            raise PlacementError("a fabric needs at least one switch")
        spec = spec if spec is not None else SwitchSpec()
        names = [f"sw{i}" for i in range(num_switches)]
        nodes = [
            SwitchNode(name, spec=spec, max_recirculations=max_recirculations)
            for name in names
        ]
        links = [
            FabricLink(names[i], names[j], capacity_gbps=link_capacity_gbps)
            for i in range(num_switches)
            for j in range(i + 1, num_switches)
        ]
        return cls(nodes, links)

    @classmethod
    def ring(
        cls,
        num_switches: int,
        spec: SwitchSpec | None = None,
        link_capacity_gbps: float = 400.0,
        max_recirculations: int = 2,
    ) -> "FabricTopology":
        """A ring fabric (each switch linked to its two neighbours) — the
        sparse topology for exercising link-constrained stitching."""
        if num_switches < 1:
            raise PlacementError("a fabric needs at least one switch")
        spec = spec if spec is not None else SwitchSpec()
        names = [f"sw{i}" for i in range(num_switches)]
        nodes = [
            SwitchNode(name, spec=spec, max_recirculations=max_recirculations)
            for name in names
        ]
        links = []
        if num_switches == 2:
            links = [FabricLink(names[0], names[1], link_capacity_gbps)]
        elif num_switches > 2:
            links = [
                FabricLink(
                    names[i], names[(i + 1) % num_switches], link_capacity_gbps
                )
                for i in range(num_switches)
            ]
        return cls(nodes, links)
