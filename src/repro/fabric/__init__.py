"""Multi-switch fabric orchestration: shard tenant SFCs across a cluster.

One :class:`~repro.controller.controller.SfcController` per fabric switch,
a pluggable tenant→switch partitioner with per-switch admission fallback,
cross-switch chain stitching over capacity-annotated links, and
drain/failover — all behind the single tenant-facing
:class:`FabricOrchestrator` API.
"""

from repro.fabric.engine import FabricChurnEngine
from repro.fabric.orchestrator import (
    DrainReport,
    FabricOpResult,
    FabricOrchestrator,
    FabricTenant,
    Segment,
)
from repro.fabric.partitioner import (
    PARTITIONERS,
    ConsistentHashPartitioner,
    LeastBackplanePartitioner,
    ModuloPartitioner,
    Partitioner,
    make_partitioner,
)
from repro.fabric.stitching import StitchPlan, plan_stitch, split_chain, split_points
from repro.fabric.topology import (
    FabricLink,
    FabricTopology,
    LinkKey,
    SwitchNode,
    link_key,
)

__all__ = [
    "PARTITIONERS",
    "ConsistentHashPartitioner",
    "DrainReport",
    "FabricChurnEngine",
    "FabricLink",
    "FabricOpResult",
    "FabricOrchestrator",
    "FabricTenant",
    "FabricTopology",
    "LeastBackplanePartitioner",
    "LinkKey",
    "ModuloPartitioner",
    "Partitioner",
    "Segment",
    "StitchPlan",
    "SwitchNode",
    "link_key",
    "make_partitioner",
    "plan_stitch",
    "split_chain",
    "split_points",
]
