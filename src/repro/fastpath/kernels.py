"""Columnar batch kernels executing a :class:`CompiledChain`.

Two interchangeable backends with one contract — given a compiled plan and
a group of same-tenant, first-pass packets, produce *exactly* the packet
mutations, pass counts, hit/miss counter bumps and recirculation-overflow
accounting the interpreter would, and return the per-packet pass count:

* :class:`NumpyKernel` — header fields become int64 columns; each compiled
  step evaluates its rank-ordered entries as boolean masks over the still-
  unassigned packets, applies bindings per winner-group as masked columnar
  writes, and recirculation is a masked pass loop.  Per-packet Python work
  is O(1): column load and writeback.
* :class:`PythonKernel` — the numpy-free fallback (the ``repro[fast]``
  extra is optional): a scalar walk over the *compiled* plan, still
  skipping the interpreter's per-packet dict lookups, registry resolution
  and stage dispatch.

Counter exactness: the interpreter performs one lookup per live packet per
table application, so the kernels bump ``table.hits``/``table.misses`` by
the matched/unassigned cardinalities of each step — identical totals, in
bulk.  Dropped packets leave the active set immediately (no later table
sees them) and their REC flag freezes as-is, mirroring the interpreter's
mid-stage break.
"""

from __future__ import annotations

from repro.fastpath.compiler import Binding, CompiledChain, FoldedStep

try:  # pragma: no cover - exercised implicitly by backend selection
    import numpy as _np

    HAS_NUMPY = True
except Exception:  # pragma: no cover - numpy genuinely absent
    _np = None
    HAS_NUMPY = False

#: Header/metadata fields materialized as columns (everything a match key
#: may read or a vector action may write, minus the pass/flag state the
#: kernel tracks separately).
COLUMN_FIELDS = (
    "tenant_id",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "dscp",
)


class NumpyKernel:
    """Vectorized plan execution over int64 header columns."""

    backend = "numpy"

    def __init__(self) -> None:
        if not HAS_NUMPY:
            raise RuntimeError(
                "numpy is not available; install the repro[fast] extra "
                "or use PythonKernel"
            )

    def run(self, plan: CompiledChain, packets: list, pipeline) -> list[int]:
        """Execute ``plan`` over same-tenant first-pass ``packets``,
        mutating them in place; returns each packet's pass count."""
        n = len(packets)
        cols = {
            f: _np.fromiter((getattr(p, f) for p in packets), _np.int64, count=n)
            for f in COLUMN_FIELDS
        }
        rec = _np.zeros(n, bool)
        dropped = _np.zeros(n, bool)
        active = _np.ones(n, bool)
        egress = _np.zeros(n, _np.int64)
        egress_set = _np.zeros(n, bool)
        for i, p in enumerate(packets):
            if p.egress_port is not None:
                egress[i] = p.egress_port
                egress_set[i] = True
        final_pass = _np.ones(n, _np.int64)
        state = (cols, rec, dropped, active, egress, egress_set, packets)
        max_passes = len(plan.passes)
        for pi, steps in enumerate(plan.passes):
            if not active.any():
                break
            pnum = pi + 1
            final_pass[active] = pnum
            rec[active] = False
            for step in steps:
                if not active.any():
                    break
                if isinstance(step, FoldedStep):
                    count = int(active.sum())
                    if step.hit:
                        step.table.hits += count
                    else:
                        step.table.misses += count
                    self._apply(step.binding, active.copy(), state)
                    continue
                unassigned = active.copy()
                for ce in step.entries:
                    if not unassigned.any():
                        break
                    m = unassigned
                    for pred in ce.preds:
                        m = m & self._pred_mask(pred, cols)
                        if not m.any():
                            break
                    if m is unassigned:
                        m = unassigned.copy()
                    if m.any():
                        step.table.hits += int(m.sum())
                        self._apply(ce.binding, m, state)
                        unassigned = unassigned & ~m
                if unassigned.any():
                    step.table.misses += int(unassigned.sum())
                    self._apply(step.default, unassigned, state)
            if pnum >= max_passes:
                overflowing = int((active & rec).sum())
                if overflowing:
                    pipeline.recirculation_overflows += overflowing
                break
            active = active & rec
        # -- writeback -----------------------------------------------------
        tenant_c = cols["tenant_id"]
        src_ip_c = cols["src_ip"]
        dst_ip_c = cols["dst_ip"]
        src_port_c = cols["src_port"]
        dst_port_c = cols["dst_port"]
        proto_c = cols["protocol"]
        dscp_c = cols["dscp"]
        passes_out = final_pass.tolist()
        rec_l = rec.tolist()
        dropped_l = dropped.tolist()
        egress_l = egress.tolist()
        egress_set_l = egress_set.tolist()
        tenant_l = tenant_c.tolist()
        src_ip_l = src_ip_c.tolist()
        dst_ip_l = dst_ip_c.tolist()
        src_port_l = src_port_c.tolist()
        dst_port_l = dst_port_c.tolist()
        proto_l = proto_c.tolist()
        dscp_l = dscp_c.tolist()
        for i, p in enumerate(packets):
            p.tenant_id = tenant_l[i]
            p.src_ip = src_ip_l[i]
            p.dst_ip = dst_ip_l[i]
            p.src_port = src_port_l[i]
            p.dst_port = dst_port_l[i]
            p.protocol = proto_l[i]
            p.dscp = dscp_l[i]
            p.pass_id = passes_out[i]
            p.recirculate = rec_l[i]
            p.dropped = dropped_l[i]
            p.egress_port = egress_l[i] if egress_set_l[i] else None
        return passes_out

    # ------------------------------------------------------------------
    @staticmethod
    def _pred_mask(pred: tuple, cols: dict):
        kind = pred[0]
        if kind == "exact":
            return cols[pred[1]] == pred[2]
        if kind == "mask":
            return (cols[pred[1]] & pred[2]) == pred[3]
        # range
        col = cols[pred[1]]
        return (col >= pred[2]) & (col <= pred[3])

    @staticmethod
    def _apply(b: Binding, mask, state) -> None:
        """Apply one binding to the packets selected by ``mask``."""
        cols, rec, dropped, active, egress, egress_set, packets = state
        if b.kind == "scalar":
            # Per-packet call of the real registered function: these only
            # touch scratch/extern state, drop and REC, so the flags are
            # shuttled through the real Packet around the call.
            for i in _np.nonzero(mask)[0]:
                pkt = packets[i]
                pkt.recirculate = bool(rec[i])
                pkt.dropped = False
                b.fn(pkt, b.params)
                if pkt.recirculate:
                    rec[i] = True
                if pkt.dropped:
                    dropped[i] = True
                    active[i] = False
            return
        if b.drop:
            dropped[mask] = True
            active[mask] = False
            return
        for fname, value in b.writes:
            cols[fname][mask] = value
        if b.egress is not None:
            egress[mask] = b.egress
            egress_set[mask] = True
        if b.rec:
            rec[mask] = True


class PythonKernel:
    """Scalar plan execution — the numpy-free fallback backend.

    Still considerably faster than the interpreter: the compiled plan has
    pre-filtered other tenants' entries, pre-resolved tables/actions and
    pre-coerced parameters, so the per-packet walk is branchy but lean.
    """

    backend = "python"

    def run(self, plan: CompiledChain, packets: list, pipeline) -> list[int]:
        """Same contract as :meth:`NumpyKernel.run`, one packet at a time,
        operating directly on the real :class:`Packet` objects."""
        max_passes = len(plan.passes)
        passes_out = []
        for pkt in packets:
            passes = 0
            for pi, steps in enumerate(plan.passes):
                passes = pi + 1
                pkt.recirculate = False
                for step in steps:
                    if pkt.dropped:
                        break
                    if isinstance(step, FoldedStep):
                        if step.hit:
                            step.table.hits += 1
                        else:
                            step.table.misses += 1
                        self._apply(step.binding, pkt)
                        continue
                    winner = None
                    for ce in step.entries:
                        matched = True
                        for pred in ce.preds:
                            if not self._check(pred, pkt):
                                matched = False
                                break
                        if matched:
                            winner = ce
                            break
                    if winner is not None:
                        step.table.hits += 1
                        self._apply(winner.binding, pkt)
                    else:
                        step.table.misses += 1
                        self._apply(step.default, pkt)
                if pkt.dropped or not pkt.recirculate:
                    break
                if passes >= max_passes:
                    pipeline.recirculation_overflows += 1
                    break
                pkt.pass_id += 1
            passes_out.append(passes)
        return passes_out

    # ------------------------------------------------------------------
    @staticmethod
    def _check(pred: tuple, pkt) -> bool:
        kind = pred[0]
        if kind == "exact":
            return getattr(pkt, pred[1]) == pred[2]
        if kind == "mask":
            return (getattr(pkt, pred[1]) & pred[2]) == pred[3]
        return pred[2] <= getattr(pkt, pred[1]) <= pred[3]

    @staticmethod
    def _apply(b: Binding, pkt) -> None:
        if b.kind == "scalar":
            b.fn(pkt, b.params)
            return
        if b.drop:
            pkt.dropped = True
            return
        for fname, value in b.writes:
            setattr(pkt, fname, value)
        if b.egress is not None:
            pkt.egress_port = b.egress
        if b.rec:
            pkt.recirculate = True
