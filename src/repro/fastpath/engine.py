"""The fast-path engine: per-tenant plan cache, routing, invalidation.

Attach with :meth:`FastPathEngine.attach`: the engine hangs itself on
``pipeline.fastpath`` and ``SwitchPipeline.process_batch`` starts routing
batches here.  Per batch the engine:

1. reserves the telemetry collector's sampling counter for the whole batch
   in one lock grab (:meth:`PostcardCollector.reserve`), reproducing the
   exact 1-in-N decision sequence per-packet ``should_sample`` would make;
2. routes to the **interpreter** (``process_batch_interpreted`` semantics,
   shared action memo, original batch order) every packet that is traced,
   sampled, mid-recirculation (``pass_id != 1``), pre-dropped, or belongs
   to a tenant whose chain is uncompilable — postcards therefore come out
   of the oracle itself and stay bit-exact by construction;
3. groups the rest by tenant and executes each group's
   :class:`~repro.fastpath.compiler.CompiledChain` on the selected kernel.

Invalidation is two-layered:

* **Lazy (always correct):** every cache lookup revalidates the plan's
  recorded table generations + pipeline structure generation — a handful
  of int compares — so mutations that bypass the notify hook (the SFC
  virtualizer writes tables directly) can never execute a stale plan.
* **Precise (keeps churn cheap):** ``RuntimeAPI`` reports each committed
  batch write with the touched table, the written entries and the pre/post
  generations.  A plan is dropped only when a written entry's
  ``tenant_id`` spec matches one of the plan's baked-in constants (raw or
  wire ID) or wildcards; otherwise the plan's recorded generation is
  advanced *only if* it equals the pre-write generation — a plan that
  already missed some other mutation stays stale and falls to the lazy
  layer instead of being wrongly refreshed.  Rolled-back batches are net
  no-ops, so they refresh without ever invalidating.  Make-before-break
  therefore behaves exactly right: phase-1 inserts under a fresh wire ID
  refresh everyone cheaply, and only the map flip naming the tenant drops
  that one tenant's plan.
"""

from __future__ import annotations

import threading

from repro.dataplane.lookup_index import _match_one
from repro.dataplane.packet import Packet, PacketResult
from repro.dataplane.pipeline import SwitchPipeline
from repro.errors import DataPlaneError
from repro.fastpath.compiler import CompiledChain, compile_chain
from repro.fastpath.kernels import HAS_NUMPY, NumpyKernel, PythonKernel


class FastPathEngine:
    """Compiled-plan cache + batch router for one pipeline."""

    def __init__(self, pipeline: SwitchPipeline, backend: str = "auto") -> None:
        if backend == "auto":
            backend = "numpy" if HAS_NUMPY else "python"
        if backend == "numpy":
            if not HAS_NUMPY:
                raise DataPlaneError(
                    "fastpath backend 'numpy' requested but numpy is not "
                    "installed (pip install 'repro[fast]')"
                )
            self.kernel = NumpyKernel()
        elif backend == "python":
            self.kernel = PythonKernel()
        else:
            raise DataPlaneError(
                f"unknown fastpath backend {backend!r} "
                "(expected 'auto', 'numpy' or 'python')"
            )
        self.backend = backend
        self.pipeline = pipeline
        #: tenant id -> CompiledChain (negative entries carry
        #: ``fallback_reason`` so uncompilable tenants aren't re-analyzed
        #: per batch).
        self._plans: dict[int, CompiledChain] = {}
        # Cache mutations (compile, notify, drop) happen under one lock so
        # shard worker threads can share the engine with concurrent writers.
        self._lock = threading.RLock()
        self.stats = {
            "batches": 0,
            "compiles": 0,
            "cache_hits": 0,
            "invalidations": 0,
            "refreshes": 0,
            "compiled_packets": 0,
            "interpreted_packets": 0,
            "fallback_packets": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def attach(cls, pipeline: SwitchPipeline, backend: str = "auto") -> "FastPathEngine":
        """Create an engine and hook it into ``pipeline.fastpath``."""
        engine = cls(pipeline, backend=backend)
        pipeline.fastpath = engine
        return engine

    def detach(self) -> None:
        """Unhook from the pipeline (batches go back to the interpreter)."""
        if self.pipeline.fastpath is self:
            self.pipeline.fastpath = None

    # -- plan cache --------------------------------------------------------
    def plan_for(self, tenant_id: int) -> CompiledChain:
        """The current (validated) plan for ``tenant_id``, compiling on
        miss or staleness."""
        with self._lock:
            plan = self._plans.get(tenant_id)
            if plan is not None:
                if plan.is_current(self.pipeline):
                    self.stats["cache_hits"] += 1
                    return plan
                # Lazy layer caught a mutation the notify hook never saw.
                self.stats["invalidations"] += 1
            plan = compile_chain(self.pipeline, tenant_id)
            self.stats["compiles"] += 1
            self._plans[tenant_id] = plan
            return plan

    def invalidate_all(self) -> None:
        """Drop every cached plan (recompile on next use)."""
        with self._lock:
            self.stats["invalidations"] += len(self._plans)
            self._plans.clear()

    def invalidate_tenant(self, tenant_id: int) -> None:
        """Drop one tenant's cached plan if present."""
        with self._lock:
            if self._plans.pop(tenant_id, None) is not None:
                self.stats["invalidations"] += 1

    @property
    def cached_plans(self) -> int:
        return len(self._plans)

    # -- write notifications ----------------------------------------------
    def notify_write(self, table, entries, pre_gen: int, post_gen: int) -> None:
        """A committed RuntimeAPI batch touched ``table``, writing
        ``entries`` (inserted, deleted, or replacement forms), moving its
        generation ``pre_gen`` -> ``post_gen``."""
        tenant_kind = None
        tenant_in_key = False
        for f in table.key:
            if f.name == "tenant_id":
                tenant_kind = f.kind
                tenant_in_key = True
                break
        with self._lock:
            for tenant_id in list(self._plans):
                plan = self._plans[tenant_id]
                slot = plan.table_gens.get(id(table))
                if slot is None:
                    # Table outside the plan's walk (installed after the
                    # compile): the structure generation already handles it.
                    continue
                if self._affects(plan, entries, tenant_in_key, tenant_kind):
                    del self._plans[tenant_id]
                    self.stats["invalidations"] += 1
                elif slot[1] == pre_gen:
                    slot[1] = post_gen
                    self.stats["refreshes"] += 1

    def notify_reverted(self, table, pre_gen: int, post_gen: int) -> None:
        """A RuntimeAPI batch touching ``table`` rolled back: the content
        equals the pre-batch snapshot, so plans that were current before
        the batch are still current — advance their recorded generation
        without invalidating anything."""
        with self._lock:
            for plan in self._plans.values():
                slot = plan.table_gens.get(id(table))
                if slot is not None and slot[1] == pre_gen:
                    slot[1] = post_gen
                    self.stats["refreshes"] += 1

    @staticmethod
    def _affects(plan: CompiledChain, entries, tenant_in_key: bool, tenant_kind) -> bool:
        """Could writing ``entries`` change ``plan``'s walk?"""
        if plan.fallback_reason is not None:
            # Negative entries invalidate conservatively: churn may have
            # removed whatever made the chain uncompilable.
            return True
        if not tenant_in_key:
            # No tenant_id in the key: any entry can match any tenant.
            return True
        for entry in entries:
            spec = entry.match.get("tenant_id")
            if spec is None:
                return True  # wildcard tenant: matches every group
            if any(_match_one(tenant_kind, spec, c) for c in plan.consts):
                return True
        return False

    # -- execution ---------------------------------------------------------
    def process_batch(self, packets: list[Packet], trace: bool = False) -> list[PacketResult]:
        """Execute one batch, compiled where possible, bit-exact always."""
        pipeline = self.pipeline
        self.stats["batches"] += 1
        n = len(packets)
        if n == 0:
            return []
        collector = pipeline.telemetry
        if collector is not None:
            base = collector.reserve(n)
            every = collector.sample_every
            sampled = [
                every > 0 and (base + i + 1) % every == 0 for i in range(n)
            ]
        else:
            sampled = None
        results: list[PacketResult | None] = [None] * n
        interp: list[int] = []
        groups: dict[int, list[int]] = {}
        for i, p in enumerate(packets):
            if (
                trace
                or (sampled is not None and sampled[i])
                or p.pass_id != 1
                or p.dropped
            ):
                interp.append(i)
            else:
                groups.setdefault(p.tenant_id, []).append(i)
        latency_model = pipeline.latency_model
        for tenant_id, idxs in groups.items():
            plan = self.plan_for(tenant_id)
            if plan.fallback_reason is not None:
                self.stats["fallback_packets"] += len(idxs)
                interp.extend(idxs)
                continue
            group = [packets[i] for i in idxs]
            passes = self.kernel.run(plan, group, pipeline)
            self.stats["compiled_packets"] += len(idxs)
            latency_by_passes: dict[int, float] = {}
            for j, i in enumerate(idxs):
                p = passes[j]
                latency = latency_by_passes.get(p)
                if latency is None:
                    latency = latency_model.latency_ns(passes=p)
                    latency_by_passes[p] = latency
                result = PacketResult(packet=group[j], passes=p)
                result.latency_ns = latency
                results[i] = result
        if interp:
            interp.sort()
            self.stats["interpreted_packets"] += len(interp)
            memo: dict = {}
            for i in interp:
                results[i] = pipeline.process(
                    packets[i],
                    trace=trace,
                    _resolved=memo,
                    _sampled=False if sampled is None else sampled[i],
                )
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return (
            f"FastPathEngine(pipeline={self.pipeline.name!r}, "
            f"backend={self.backend!r}, plans={len(self._plans)})"
        )
