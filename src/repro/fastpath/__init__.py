"""Compiled dataplane fast path (ROADMAP item 2).

The interpreted :class:`~repro.dataplane.pipeline.SwitchPipeline` walks
every packet through every stage, table, dict lookup and action-registry
resolution — faithful, but ~5.4k packets/s.  This package compiles each
tenant's *installed* chain once into a flat :class:`CompiledChain` — table
refs pre-resolved, ``(tenant_id, pass_id)`` match components constant-folded
away, action parameters pre-coerced — and executes packet batches as
header-field *columns* (numpy when available, a pure-python scalar walk
otherwise).

Three pieces:

* :mod:`repro.fastpath.compiler` — walks a tenant's rules once per
  recirculation pass and emits the fused step list plus the invalidation
  keys (per-table generations, pipeline structure generation, the tenant
  constants the folds depended on).
* :mod:`repro.fastpath.kernels` — the columnar batch executors.
* :mod:`repro.fastpath.engine` — the per-tenant plan cache hung on
  ``pipeline.fastpath``; :meth:`FastPathEngine.process_batch` routes traced,
  sampled, mid-recirculation or uncompilable packets to the interpreter
  (which stays the differential oracle, exactly as ``lookup_reference``
  does for the lookup index) and everything else through the kernels.

The contract throughout: results, counters, postcards — bit-identical to
``SwitchPipeline.process_batch_interpreted``.
"""

from repro.fastpath.compiler import (
    SCALAR_ACTIONS,
    VECTOR_ACTIONS,
    CompiledChain,
    compile_chain,
)
from repro.fastpath.engine import FastPathEngine
from repro.fastpath.kernels import HAS_NUMPY, NumpyKernel, PythonKernel

__all__ = [
    "CompiledChain",
    "FastPathEngine",
    "HAS_NUMPY",
    "NumpyKernel",
    "PythonKernel",
    "SCALAR_ACTIONS",
    "VECTOR_ACTIONS",
    "compile_chain",
]
