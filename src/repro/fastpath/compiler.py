"""The chain compiler: one walk over a tenant's installed rules.

Compilation exploits two structural facts of the SFP virtualization model:

* Every virtualized rule matches on ``(tenant_id, pass_id)`` exact fields
  (Fig. 3), and within one batch group both are *constants* — all packets
  share the tenant and the kernel executes pass-by-pass.  So those match
  components are evaluated **once at compile time**: entries of other
  tenants/passes are filtered out of each table's step entirely, and tables
  whose whole key is ``{tenant_id, pass_id}`` (the controller's
  ``tenant_map``) fold to a single pre-decided winner.
* The recirculation plan is static: pass ``p`` executes the same table
  slice for every packet of the tenant, so the compiler emits one fused
  step list per pass up to ``max_passes`` and the kernel just follows it.

What comes out is a :class:`CompiledChain`: per pass, an ordered list of
:class:`FoldedStep` (uniform hit/miss + one pre-bound action for the whole
group) and :class:`MatchStep` (rank-ordered surviving entries with
vectorizable predicates over the remaining key fields).  Action parameters
are pre-coerced (the ``int()`` every action performs per packet happens
here, once) and classified:

* **vector** actions (``no_op``/``permit``/``drop``/``set_tenant``/
  ``set_dscp``/``set_dst``/``snat``/``forward``) become columnar writes;
* **scalar-safe** actions (``count``/``rate_limit``/``count_extern``) touch
  only per-packet scratch state, externs, drop and REC — never a header
  field — so the kernel calls the *real* registered function per matched
  packet, in a tight loop;
* anything else (``meter_police`` is genuinely order- and time-dependent
  across packets, and unknown/overridden registrations can do anything)
  makes the chain **uncompilable**: the plan carries a ``fallback_reason``
  and the engine routes the tenant's traffic to the interpreter.

The plan also records its invalidation keys: the pipeline's
``structure_generation``, every walked table's ``generation``, and the
``consts`` — the set of tenant IDs (raw + epoch wire IDs) the folds
depended on, which is what lets the engine invalidate *exactly* the
affected tenants on rule churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.dataplane import action as _act
from repro.dataplane.lookup_index import MatchKind, _match_one
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import MatchActionTable, TableEntry

#: Actions the kernels apply as columnar writes (semantics reimplemented,
#: guarded by a compile-time identity check against the canonical
#: implementations so overridden registrations fall back).
VECTOR_ACTIONS = frozenset(
    {"no_op", "permit", "drop", "set_tenant", "set_dscp", "set_dst", "snat", "forward"}
)

#: Actions applied by calling the real registered function per matched
#: packet: they read/write only per-packet scratch, externs, ``dropped``
#: and ``recirculate`` — never a matchable header field — so scalar
#: application order within a step cannot change any other packet's walk.
SCALAR_ACTIONS = frozenset({"count", "rate_limit", "count_extern"})

#: name -> the canonical implementation compiled semantics assume.
_CANONICAL = {
    "no_op": _act.act_no_op,
    "permit": _act.act_permit,
    "drop": _act.act_drop,
    "set_tenant": _act.act_set_tenant,
    "set_dscp": _act.act_set_dscp,
    "set_dst": _act.act_set_dst,
    "snat": _act.act_snat,
    "forward": _act.act_forward,
    "count": _act.act_count,
    "rate_limit": _act.act_rate_limit,
    "count_extern": _act.act_count_extern,
}

#: The two match-key fields that are constants within a kernel group.
_CONST_FIELDS = frozenset({"tenant_id", "pass_id"})


@dataclass(frozen=True)
class Binding:
    """One pre-compiled action application.

    ``kind`` is ``"vector"`` (columnar: ``writes``/``egress``/``drop``/
    ``rec`` below fully describe the effect) or ``"scalar"`` (call ``fn``
    with the original ``params`` on each matched :class:`Packet`).
    """

    action: str
    kind: str
    #: Pre-coerced ``(field_name, int_value)`` columnar header writes.
    writes: tuple = ()
    #: Egress port to assign (``forward``), ``None`` = leave alone.
    egress: int | None = None
    #: True = matched packets drop (and their REC flag freezes as-is).
    drop: bool = False
    #: The REC argument, pre-evaluated (``drop`` never honors it).
    rec: bool = False
    #: Scalar bindings only: the registered function and its raw params.
    fn: object = None
    params: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class CompiledEntry:
    """One surviving rule of a :class:`MatchStep`, in rank order.

    ``preds`` are the vectorizable predicates over the *non-constant* key
    fields, normalized to ``("exact", field, value)``,
    ``("mask", field, mask, want_masked)`` (ternary + LPM collapse to
    masked equality) or ``("range", field, lo, hi)``; wildcards and the
    constant-folded ``(tenant_id, pass_id)`` components are gone.
    """

    preds: tuple
    binding: Binding


@dataclass(frozen=True)
class FoldedStep:
    """A table application whose outcome is uniform for the whole group:
    either the table's key was entirely ``(tenant_id, pass_id)`` (probed
    once at compile time) or constant-filtering left no candidate entries
    (a uniform miss).  The kernel bumps hit/miss counters in bulk and
    applies one binding."""

    table: MatchActionTable
    hit: bool
    binding: Binding


@dataclass(frozen=True)
class MatchStep:
    """A table application that still needs per-packet matching over the
    non-constant key fields.  ``entries`` are rank-ordered (priority desc,
    LPM specificity desc, insertion order asc): the kernel assigns each
    packet the first entry whose predicates pass, default on none."""

    table: MatchActionTable
    entries: tuple[CompiledEntry, ...]
    default: Binding


class CompiledChain:
    """A tenant's flat execution plan plus its invalidation keys.

    ``passes[p-1]`` is the fused step list for recirculation pass ``p``.
    A chain with ``fallback_reason`` set is a *negative* cache entry: the
    tenant's traffic must take the interpreter, but the generations are
    still recorded so churn re-triggers compilation.
    """

    __slots__ = (
        "tenant_id",
        "passes",
        "consts",
        "table_gens",
        "structure_gen",
        "max_passes",
        "fallback_reason",
    )

    def __init__(
        self,
        tenant_id: int,
        passes: list,
        consts: frozenset,
        table_gens: dict,
        structure_gen: int,
        max_passes: int,
        fallback_reason: str | None = None,
    ) -> None:
        self.tenant_id = tenant_id
        self.passes = passes
        #: Tenant IDs (raw + wire) whose rules this plan baked in — the
        #: precise-invalidation key: a written entry affects this plan iff
        #: its ``tenant_id`` spec matches one of these (or wildcards).
        self.consts = consts
        #: ``id(table) -> [table, generation_at_compile]`` for every table
        #: in the walk; the generation slot is refreshed in place by the
        #: engine when a write provably did not affect this plan.
        self.table_gens = table_gens
        self.structure_gen = structure_gen
        self.max_passes = max_passes
        self.fallback_reason = fallback_reason

    def is_current(self, pipeline: SwitchPipeline) -> bool:
        """Always-correct lazy staleness check (O(#tables) int compares):
        covers mutations that bypass the RuntimeAPI notify hook (e.g. the
        virtualizer writing tables directly)."""
        if self.structure_gen != pipeline.structure_generation:
            return False
        if self.max_passes != pipeline.max_passes:
            return False
        for table, gen in self.table_gens.values():
            if table.generation != gen:
                return False
        return True

    def __repr__(self) -> str:
        status = (
            f"fallback={self.fallback_reason!r}"
            if self.fallback_reason
            else f"steps={sum(len(s) for s in self.passes)}"
        )
        return f"CompiledChain(tenant={self.tenant_id}, {status})"


class _Uncompilable(Exception):
    """Internal: abort the walk, the chain needs the interpreter."""


def _compile_binding(action: str, params: Mapping[str, object], registry) -> Binding:
    """Pre-bind one ``(action, params)`` pair; raises :class:`_Uncompilable`
    for anything the kernels cannot reproduce exactly."""
    try:
        fn = registry.resolve(action).fn
    except Exception:
        raise _Uncompilable(f"unknown action {action!r}") from None
    if fn is not _CANONICAL.get(action):
        raise _Uncompilable(f"action {action!r} is overridden in the registry")
    if action in SCALAR_ACTIONS:
        return Binding(action=action, kind="scalar", fn=fn, params=params)
    if action not in VECTOR_ACTIONS:
        raise _Uncompilable(f"action {action!r} is not batch-safe")
    rec = bool(params.get("rec"))
    try:
        if action == "drop":
            return Binding(action=action, kind="vector", drop=True)
        if action == "set_tenant":
            return Binding(
                action=action, kind="vector", rec=rec,
                writes=(("tenant_id", int(params["wire_id"])),),
            )
        if action == "set_dscp":
            return Binding(
                action=action, kind="vector", rec=rec,
                writes=(("dscp", int(params["dscp"])),),
            )
        if action == "set_dst":
            writes = [("dst_ip", int(params["dst_ip"]))]
            if "dst_port" in params:
                writes.append(("dst_port", int(params["dst_port"])))
            return Binding(action=action, kind="vector", rec=rec, writes=tuple(writes))
        if action == "snat":
            writes = [("src_ip", int(params["src_ip"]))]
            if "src_port" in params:
                writes.append(("src_port", int(params["src_port"])))
            return Binding(action=action, kind="vector", rec=rec, writes=tuple(writes))
        if action == "forward":
            return Binding(
                action=action, kind="vector", rec=rec, egress=int(params["port"])
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise _Uncompilable(f"action {action!r}: bad params ({exc!r})") from None
    # no_op / permit: REC is their only effect.
    return Binding(action=action, kind="vector", rec=rec)


def _probe_winner(table: MatchActionTable, probe: Packet) -> TableEntry | None:
    """The winning entry for ``probe`` *without* touching the table's
    hit/miss counters (the compile-time probe is not traffic).  Uses the
    lookup index when present, else a counter-free replica of
    :meth:`MatchActionTable.lookup_reference`'s ranking."""
    index = getattr(table, "_index", None)
    if index is not None:
        return index.lookup(probe)
    best: TableEntry | None = None
    best_rank: tuple | None = None
    for order, entry in enumerate(table.entries):
        ok = all(
            _match_one(f.kind, entry.match.get(f.name), probe.get_field(f.name))
            for f in table.key
        )
        if not ok:
            continue
        rank = (entry.priority, entry.lpm_specificity(table.key), -order)
        if best_rank is None or rank > best_rank:
            best, best_rank = entry, rank
    return best


def _normalize_pred(kind: MatchKind, fname: str, spec) -> tuple | None:
    """One field spec -> a vectorizable predicate (``None`` = wildcard)."""
    if spec is None:
        return None
    if kind is MatchKind.EXACT:
        return ("exact", fname, int(spec))
    if kind is MatchKind.TERNARY:
        want, mask = int(spec[0]), int(spec[1])
        if mask == 0:
            return None
        return ("mask", fname, mask, want & mask)
    if kind is MatchKind.LPM:
        prefix, length = int(spec[0]), int(spec[1])
        if length == 0:
            return None
        mask = ((1 << length) - 1) << (32 - length)
        return ("mask", fname, mask, prefix & mask)
    # RANGE
    lo, hi = int(spec[0]), int(spec[1])
    return ("range", fname, lo, hi)


def _compile_table(
    table: MatchActionTable, tenant_const: int, pass_const: int, registry
) -> FoldedStep | MatchStep:
    """Compile one table application under the group's constants."""
    key_names = set(table.key_fields)
    default = _compile_binding(table.default_action, table.default_params, registry)
    if key_names <= _CONST_FIELDS:
        # Whole key is constant for the group: decide the winner now.
        winner = _probe_winner(
            table, Packet(tenant_id=tenant_const, pass_id=pass_const)
        )
        if winner is None:
            return FoldedStep(table=table, hit=False, binding=default)
        binding = _compile_binding(winner.action, winner.params, registry)
        return FoldedStep(table=table, hit=True, binding=binding)
    if default.action == "set_tenant":
        raise _Uncompilable("set_tenant as a default action breaks group uniformity")
    consts = {"tenant_id": tenant_const, "pass_id": pass_const}
    ranked: list[tuple[tuple, CompiledEntry]] = []
    for order, entry in enumerate(table.entries):
        skip = False
        for f in table.key:
            if f.name in consts and not _match_one(
                f.kind, entry.match.get(f.name), consts[f.name]
            ):
                skip = True
                break
        if skip:
            continue
        preds = []
        for f in table.key:
            if f.name in consts:
                continue
            pred = _normalize_pred(f.kind, f.name, entry.match.get(f.name))
            if pred is not None:
                preds.append(pred)
        binding = _compile_binding(entry.action, entry.params, registry)
        if binding.action == "set_tenant":
            # Different packets could diverge in tenant mid-walk, breaking
            # the per-group constant the whole plan is folded on.
            raise _Uncompilable("set_tenant outside a foldable table")
        rank = (-entry.priority, -entry.lpm_specificity(table.key), order)
        ranked.append((rank, CompiledEntry(preds=tuple(preds), binding=binding)))
    if not ranked:
        # Constant filtering removed every candidate: uniform miss.
        return FoldedStep(table=table, hit=False, binding=default)
    ranked.sort(key=lambda item: item[0])
    return MatchStep(
        table=table,
        entries=tuple(ce for _rank, ce in ranked),
        default=default,
    )


def compile_chain(pipeline: SwitchPipeline, tenant_id: int) -> CompiledChain:
    """Walk ``tenant_id``'s installed rules once and emit its plan.

    Generations are snapshotted *before* the walk: if a concurrent write
    lands mid-compile the recorded generation is already stale and the
    plan self-invalidates on first use — the race resolves toward a
    recompile, never toward executing a wrong plan twice.

    Never raises on uncompilable chains: those come back as a negative
    plan (``fallback_reason`` set) the engine caches so the classification
    itself is not redone per batch.
    """
    tenant_id = int(tenant_id)
    structure_gen = pipeline.structure_generation
    table_gens = {
        id(t): [t, t.generation] for s in pipeline.stages for t in s.tables
    }
    consts = {tenant_id}
    registry = pipeline.actions
    passes: list[list] = []
    cur_tenant = tenant_id
    try:
        for pass_id in range(1, pipeline.max_passes + 1):
            steps: list = []
            for stage in pipeline.stages:
                for table in stage.tables:
                    step = _compile_table(table, cur_tenant, pass_id, registry)
                    steps.append(step)
                    if (
                        isinstance(step, FoldedStep)
                        and step.binding.action == "set_tenant"
                    ):
                        # The fold rewrites the whole group's tenant ID —
                        # track it so later steps filter on the wire ID.
                        cur_tenant = step.binding.writes[0][1]
                        consts.add(cur_tenant)
            passes.append(steps)
    except _Uncompilable as exc:
        return CompiledChain(
            tenant_id=tenant_id,
            passes=[],
            consts=frozenset(consts),
            table_gens=table_gens,
            structure_gen=structure_gen,
            max_passes=pipeline.max_passes,
            fallback_reason=str(exc),
        )
    return CompiledChain(
        tenant_id=tenant_id,
        passes=passes,
        consts=frozenset(consts),
        table_gens=table_gens,
        structure_gen=structure_gen,
        max_passes=pipeline.max_passes,
    )
