"""SFC dataset synthesis — the paper's §VI-A recipe.

"Each SFC randomly chooses different NFs to compose the chain, and the number
of rules for each NF uniformly ranges from 100 to 2100; the bandwidth
requirement ... follows the long-tail distribution."  Chain lengths are drawn
around a configurable average (the paper uses averages of 5 and a fixed 8 for
the recirculation study); NF types within one chain are sampled without
replacement ("different NFs").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.errors import WorkloadError
from repro.rng import make_rng
from repro.traffic.distributions import lognormal_bandwidth


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the §VI-A generator, defaulting to the paper's values."""

    num_sfcs: int = 25
    num_types: int = 10
    avg_chain_length: int = 5
    #: 0 -> every chain has exactly ``avg_chain_length`` NFs; otherwise
    #: lengths are uniform in [avg - spread, avg + spread].
    chain_length_spread: int = 2
    rules_min: int = 100
    rules_max: int = 2100
    #: Long-tail bandwidth demand.  The mean/cap are calibrated so the
    #: paper's regime holds: instances are memory-bound up to L~30-40 and
    #: the 400 Gbps backplane starts binding around L~50 (Figs. 6/10).
    mean_bandwidth_gbps: float = 6.0
    bandwidth_sigma: float = 1.0
    min_bandwidth_gbps: float = 0.5
    max_bandwidth_gbps: float = 60.0

    def __post_init__(self) -> None:
        if self.num_sfcs < 0:
            raise WorkloadError("num_sfcs must be >= 0")
        if self.num_types < 1:
            raise WorkloadError("num_types must be >= 1")
        lo = self.avg_chain_length - self.chain_length_spread
        hi = self.avg_chain_length + self.chain_length_spread
        if lo < 1:
            raise WorkloadError(
                f"chain length range [{lo}, {hi}] dips below 1; reduce spread"
            )
        if hi > self.num_types:
            raise WorkloadError(
                f"chain length range [{lo}, {hi}] exceeds the {self.num_types} "
                "distinct NF types (chains sample types without replacement)"
            )
        if not 0 <= self.rules_min <= self.rules_max:
            raise WorkloadError("need 0 <= rules_min <= rules_max")

    def with_num_sfcs(self, n: int) -> "WorkloadConfig":
        """A copy of this config with a different candidate count."""
        return replace(self, num_sfcs=n)


def make_sfcs(
    config: WorkloadConfig, rng: int | np.random.Generator | None = None
) -> list[SFC]:
    """Generate ``config.num_sfcs`` chains per the paper's recipe."""
    rng = make_rng(rng)
    lo = config.avg_chain_length - config.chain_length_spread
    hi = config.avg_chain_length + config.chain_length_spread
    lengths = rng.integers(lo, hi + 1, size=config.num_sfcs)
    bandwidths = lognormal_bandwidth(
        rng,
        config.num_sfcs,
        mean_gbps=config.mean_bandwidth_gbps,
        sigma=config.bandwidth_sigma,
        min_gbps=config.min_bandwidth_gbps,
        max_gbps=config.max_bandwidth_gbps,
    )
    sfcs: list[SFC] = []
    for l in range(config.num_sfcs):
        length = int(lengths[l])
        types = rng.choice(
            np.arange(1, config.num_types + 1), size=length, replace=False
        )
        rules = rng.integers(config.rules_min, config.rules_max + 1, size=length)
        sfcs.append(
            SFC(
                name=f"sfc-{l}",
                tenant_id=l,
                nf_types=tuple(int(t) for t in types),
                rules=tuple(int(r) for r in rules),
                bandwidth_gbps=float(bandwidths[l]),
            )
        )
    return sfcs


def make_instance(
    config: WorkloadConfig,
    switch: SwitchSpec | None = None,
    max_recirculations: int = 2,
    rng: int | np.random.Generator | None = None,
) -> ProblemInstance:
    """Generate a full placement problem (paper defaults: 8 stages, 20
    blocks of 1000 entries per stage, 400 Gbps backplane)."""
    return ProblemInstance(
        switch=switch if switch is not None else SwitchSpec(),
        sfcs=tuple(make_sfcs(config, rng)),
        num_types=config.num_types,
        max_recirculations=max_recirculations,
    )
