"""Synthetic workloads and traffic.

The paper synthesizes its SFC dataset (§VI-A): random chains over 10 NF
types, per-NF rule counts uniform in [100, 2100], long-tail per-chain
bandwidth, and data-center packet-size mixes for the data-plane experiments.
This package is that generator, fully seeded.
"""

from repro.traffic.distributions import (
    PacketSizeMix,
    lognormal_bandwidth,
    pareto_bandwidth,
)
from repro.traffic.flows import Flow, FlowGenerator
from repro.traffic.trace import (
    ReplayStats,
    Trace,
    TraceRecord,
    replay,
    synthesize_trace,
    trace_from_generator,
)
from repro.traffic.workload import WorkloadConfig, make_instance, make_sfcs

__all__ = [
    "Flow",
    "FlowGenerator",
    "PacketSizeMix",
    "ReplayStats",
    "Trace",
    "TraceRecord",
    "WorkloadConfig",
    "lognormal_bandwidth",
    "make_instance",
    "make_sfcs",
    "pareto_bandwidth",
    "replay",
    "synthesize_trace",
    "trace_from_generator",
]
