"""Packet-trace recording and replay.

The paper drives its data-plane experiments with "synthetic traffic workload
and trace [IMC'10]".  This module provides the trace substrate: a simple
timestamped packet-record format with JSONL on-disk persistence, a
synthesizer that lays packets out in time at a target offered load, a replay
driver for the pipeline, and summary statistics (throughput, latency
percentiles) — everything the Fig. 4/5 style measurements need without a
hardware traffic generator.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro import units
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.errors import WorkloadError
from repro.rng import make_rng
from repro.traffic.distributions import PacketSizeMix
from repro.traffic.flows import Flow, FlowGenerator


@dataclass(frozen=True)
class TraceRecord:
    """One packet in a trace."""

    timestamp_ns: float
    tenant_id: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int
    size_bytes: int

    def to_packet(self) -> Packet:
        """Materialize the pipeline packet this record describes."""
        return Packet(
            tenant_id=self.tenant_id,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=self.protocol,
            size_bytes=self.size_bytes,
            timestamp_ns=self.timestamp_ns,
        )


@dataclass
class Trace:
    """An ordered sequence of trace records."""

    records: list[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration_ns(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].timestamp_ns - self.records[0].timestamp_ns

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.records)

    def offered_gbps(self) -> float:
        """Average offered load over the trace's span (wire rate)."""
        if len(self.records) < 2 or self.duration_ns <= 0:
            return 0.0
        wire_bits = sum(
            (r.size_bytes + units.ETHERNET_OVERHEAD_BYTES) * 8 for r in self.records
        )
        return wire_bits / self.duration_ns  # bits/ns == Gbps

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write as JSONL (one record per line)."""
        path = Path(path)
        with path.open("w") as fh:
            for record in self.records:
                fh.write(json.dumps(asdict(record)) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        records = []
        with path.open() as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(TraceRecord(**json.loads(line)))
                except (json.JSONDecodeError, TypeError) as exc:
                    raise WorkloadError(f"{path}:{line_no}: bad trace record: {exc}")
        return cls(records=records)


def synthesize_trace(
    flows: Iterable[Flow],
    offered_gbps: float,
    duration_ms: float = 1.0,
    size_mix: PacketSizeMix | None = None,
    size_bytes: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Lay packets out in time at ``offered_gbps`` for ``duration_ms``.

    Inter-arrival times are exponential (Poisson arrivals) with the rate
    implied by the offered load and the mean packet size; flows are picked
    uniformly.  Exactly one of ``size_mix`` / ``size_bytes`` must be given.
    """
    flows = list(flows)
    if not flows:
        raise WorkloadError("need at least one flow")
    if (size_mix is None) == (size_bytes is None):
        raise WorkloadError("pass exactly one of size_mix / size_bytes")
    if offered_gbps <= 0 or duration_ms <= 0:
        raise WorkloadError("offered load and duration must be positive")
    rng = make_rng(rng)
    mean_bytes = size_mix.mean_bytes if size_mix is not None else float(size_bytes)
    rate_pps = units.gbps_to_pps(offered_gbps, int(round(mean_bytes)))
    mean_gap_ns = 1e9 / rate_pps

    records: list[TraceRecord] = []
    now = 0.0
    horizon = duration_ms * 1e6
    while now < horizon:
        flow = flows[int(rng.integers(0, len(flows)))]
        size = (
            int(size_mix.sample(rng, 1)[0]) if size_mix is not None else int(size_bytes)
        )
        records.append(
            TraceRecord(
                timestamp_ns=now,
                tenant_id=flow.tenant_id,
                src_ip=flow.src_ip,
                dst_ip=flow.dst_ip,
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                protocol=flow.protocol,
                size_bytes=size,
            )
        )
        now += float(rng.exponential(mean_gap_ns))
    return Trace(records=records)


@dataclass
class ReplayStats:
    """Outcome of replaying a trace through a pipeline."""

    packets: int
    delivered: int
    dropped: int
    recirculated: int
    achieved_gbps: float
    latency_ns_mean: float
    latency_ns_p50: float
    latency_ns_p99: float

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.packets if self.packets else 0.0


def replay(trace: Trace, pipeline: SwitchPipeline) -> ReplayStats:
    """Push every trace packet through ``pipeline`` and summarize."""
    if not len(trace):
        raise WorkloadError("empty trace")
    latencies = []
    delivered = 0
    recirculated = 0
    delivered_bytes = 0
    for record in trace:
        result = pipeline.process(record.to_packet())
        if result.delivered:
            delivered += 1
            delivered_bytes += record.size_bytes
            latencies.append(result.latency_ns)
        if result.recirculations:
            recirculated += 1
    lat = np.asarray(latencies) if latencies else np.zeros(1)
    duration = max(trace.duration_ns, 1.0)
    achieved = delivered_bytes * 8 / duration  # bits/ns == Gbps
    return ReplayStats(
        packets=len(trace),
        delivered=delivered,
        dropped=len(trace) - delivered,
        recirculated=recirculated,
        achieved_gbps=achieved,
        latency_ns_mean=float(lat.mean()),
        latency_ns_p50=float(np.percentile(lat, 50)),
        latency_ns_p99=float(np.percentile(lat, 99)),
    )


def trace_from_generator(
    tenants: dict[int, int],
    offered_gbps: float,
    duration_ms: float = 0.5,
    size_bytes: int = 64,
    rng: int | np.random.Generator | None = None,
) -> Trace:
    """Convenience: ``{tenant_id: num_flows}`` -> a mixed multi-tenant trace."""
    rng = make_rng(rng)
    generator = FlowGenerator(rng)
    flows: list[Flow] = []
    for tenant_id, count in tenants.items():
        flows.extend(generator.flows(count, tenant_id=tenant_id))
    return synthesize_trace(
        flows, offered_gbps, duration_ms=duration_ms, size_bytes=size_bytes, rng=rng
    )
