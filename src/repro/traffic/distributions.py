"""Stochastic building blocks for workload synthesis.

* **Long-tail bandwidth** — the paper says "the bandwidth requirement of each
  NF follows the long-tail distribution" (§VI-A).  Two standard heavy-tailed
  choices are provided: truncated lognormal (default) and bounded Pareto.
* **Packet-size mix** — the data-plane experiments sweep 64–1500 B packets
  "that cover most packet size [IMC'10]"; the IMC'10 data-center study found
  a bimodal mix (many small ACK-ish packets, many near-MTU packets), which
  :class:`PacketSizeMix` reproduces for trace generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.rng import make_rng

#: Packet sizes (bytes) the paper's Fig. 4/5 sweep.
PAPER_PACKET_SIZES = (64, 128, 256, 512, 1024, 1500)


def lognormal_bandwidth(
    rng: int | np.random.Generator | None,
    count: int,
    mean_gbps: float = 8.0,
    sigma: float = 1.0,
    min_gbps: float = 0.5,
    max_gbps: float = 100.0,
) -> np.ndarray:
    """Draw ``count`` long-tail bandwidth demands (Gbps), lognormal with the
    requested arithmetic mean, truncated to [min, max].

    The lognormal ``mu`` is solved from ``mean = exp(mu + sigma^2/2)`` so the
    *pre-truncation* mean equals ``mean_gbps``.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    if mean_gbps <= 0 or min_gbps <= 0 or max_gbps < min_gbps:
        raise WorkloadError("bandwidth parameters must be positive with max >= min")
    rng = make_rng(rng)
    mu = np.log(mean_gbps) - sigma**2 / 2.0
    draws = rng.lognormal(mean=mu, sigma=sigma, size=count)
    return np.clip(draws, min_gbps, max_gbps)


def pareto_bandwidth(
    rng: int | np.random.Generator | None,
    count: int,
    shape: float = 1.5,
    scale_gbps: float = 2.0,
    max_gbps: float = 100.0,
) -> np.ndarray:
    """Bounded-Pareto alternative for the long-tail bandwidth demand."""
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    if shape <= 0 or scale_gbps <= 0 or max_gbps < scale_gbps:
        raise WorkloadError("invalid Pareto parameters")
    rng = make_rng(rng)
    draws = scale_gbps * (1.0 + rng.pareto(shape, size=count))
    return np.clip(draws, scale_gbps, max_gbps)


@dataclass(frozen=True)
class PacketSizeMix:
    """A discrete packet-size distribution.

    The default follows the IMC'10 data-center observation of a bimodal
    shape: a heavy cluster of minimum-size packets and a cluster near the
    MTU, with a thin middle.
    """

    sizes: tuple[int, ...] = (64, 128, 256, 512, 1024, 1500)
    weights: tuple[float, ...] = (0.45, 0.10, 0.05, 0.05, 0.10, 0.25)

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights):
            raise WorkloadError("sizes and weights must have the same length")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise WorkloadError("weights must be non-negative and sum > 0")
        if any(s <= 0 for s in self.sizes):
            raise WorkloadError("packet sizes must be positive")

    @property
    def probabilities(self) -> np.ndarray:
        w = np.asarray(self.weights, dtype=float)
        return w / w.sum()

    @property
    def mean_bytes(self) -> float:
        return float(np.asarray(self.sizes) @ self.probabilities)

    def sample(self, rng: int | np.random.Generator | None, count: int) -> np.ndarray:
        """Draw ``count`` packet sizes (bytes)."""
        rng = make_rng(rng)
        return rng.choice(np.asarray(self.sizes), size=count, p=self.probabilities)
