"""Flow and packet-stream generation for the data-plane experiments.

The Fig. 4/5 experiments send fixed-size packets at a target offered load
through a 4-NF chain.  :class:`FlowGenerator` produces the per-tenant flows
(5-tuples) and packet batches the data-plane simulator consumes; everything
is seeded and sizes can come from a fixed value or a
:class:`~repro.traffic.distributions.PacketSizeMix`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataplane.packet import Packet
from repro.errors import WorkloadError
from repro.rng import make_rng
from repro.traffic.distributions import PacketSizeMix


@dataclass(frozen=True)
class Flow:
    """A 5-tuple flow owned by a tenant."""

    tenant_id: int
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def make_packet(self, size_bytes: int = 64) -> Packet:
        """A packet of this flow (tenant ID in the outer encapsulation)."""
        return Packet(
            tenant_id=self.tenant_id,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=self.protocol,
            size_bytes=size_bytes,
        )


class FlowGenerator:
    """Seeded generator of flows and packet batches."""

    def __init__(self, rng: int | np.random.Generator | None = None) -> None:
        self.rng = make_rng(rng)

    def flows(self, count: int, tenant_id: int = 0) -> list[Flow]:
        """``count`` random flows for one tenant (addresses in 10/8)."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        rng = self.rng
        src = 0x0A000000 + rng.integers(0, 2**24, size=count)
        dst = 0x0A000000 + rng.integers(0, 2**24, size=count)
        sport = rng.integers(1024, 65536, size=count)
        dport = rng.choice(np.array([80, 443, 8080, 53, 22]), size=count)
        proto = rng.choice(np.array([6, 17]), p=[0.85, 0.15], size=count)
        return [
            Flow(
                tenant_id=tenant_id,
                src_ip=int(src[i]),
                dst_ip=int(dst[i]),
                src_port=int(sport[i]),
                dst_port=int(dport[i]),
                protocol=int(proto[i]),
            )
            for i in range(count)
        ]

    def packets(
        self,
        flows: list[Flow],
        count: int,
        size_bytes: int | None = None,
        size_mix: PacketSizeMix | None = None,
    ) -> list[Packet]:
        """``count`` packets drawn uniformly over ``flows``.

        Sizes are fixed (``size_bytes``) or drawn from ``size_mix``; exactly
        one of the two must be given.
        """
        if (size_bytes is None) == (size_mix is None):
            raise WorkloadError("pass exactly one of size_bytes / size_mix")
        if not flows:
            raise WorkloadError("need at least one flow")
        picks = self.rng.integers(0, len(flows), size=count)
        if size_mix is not None:
            sizes = size_mix.sample(self.rng, count)
        else:
            sizes = np.full(count, size_bytes, dtype=int)
        return [flows[int(picks[i])].make_packet(int(sizes[i])) for i in range(count)]
