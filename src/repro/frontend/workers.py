"""Shard workers: one thread per fabric switch, single writer per shard.

:class:`ShardWorkerPool` spawns one :class:`ShardWorker` per switch.  Each
worker pulls intents routed to its shard from the shared
:class:`~repro.frontend.queue.IntentQueue` and drives them through the
orchestrator's single-shard fast paths
(:meth:`~repro.fabric.orchestrator.FabricOrchestrator.admit_local` and
friends), so admissions on different shards run concurrently: while one
worker's WAL fdatasync is parked in the kernel (the GIL is released for
the syscall), the other workers keep admitting, and concurrent committers
on the shared fabric journal ride the WAL's leader-based group commit.

The **single-writer rule**: a shard's state is only ever mutated by its
own worker's fast paths — or by a cross-shard intent (spillover,
stitching, drain) that any worker executes through the public fabric
methods, which take every shard lock in sorted-name order.  A fast path
holds exactly one shard lock and a cross-shard op holds them all, so the
two can never interleave on a shard, and the sorted acquisition order
makes cross-shard ops deadlock-free among themselves.

Starting the pool flips the fabric into concurrent mode: journaled
records stop embedding the fabric-wide digest (it reads every shard —
unreadable consistently under one shard lock) and auto-checkpoints are
suspended (they read the whole fabric; checkpoint at a quiesce point
instead).  :meth:`ShardWorkerPool.stop` restores both after the queue
drains — a stopped pool leaves the fabric exactly as serial callers
expect it.
"""

from __future__ import annotations

import threading

from repro.errors import FrontendError
from repro.fabric.orchestrator import FabricOrchestrator
from repro.frontend.queue import Intent, IntentQueue, IntentTicket


class ShardWorker(threading.Thread):
    """One shard's intent executor (see the module docstring)."""

    def __init__(
        self, pool: "ShardWorkerPool", switch: str, take_timeout: float
    ) -> None:
        super().__init__(name=f"sfp-worker-{switch}", daemon=True)
        self.pool = pool
        self.switch = switch
        self.take_timeout = take_timeout
        self.executed = 0
        self.escalated = 0

    # -- routing -------------------------------------------------------
    def route(self, intent: Intent) -> str | None:
        """The shard this intent belongs to: the partitioner's first
        choice for admits, the home shard for evict/modify.  ``None``
        (stitched tenants, unknown tenants, operator intents, all
        drained) means any worker may run it via the escalated path."""
        fabric = self.pool.fabric
        if intent.kind == "admit":
            assert intent.sfc is not None
            return fabric.preferred_switch(intent.sfc)
        if intent.kind in ("evict", "modify"):
            return fabric.home_switch(intent.tenant_id)
        return None

    # -- execution -----------------------------------------------------
    def execute(self, intent: Intent):
        """Run one intent: fast path when routed here, escalation to the
        fabric-wide lock order otherwise (or when the fast path defers)."""
        fabric = self.pool.fabric
        if intent.kind == "admit":
            assert intent.sfc is not None
            if intent.routed_to is not None:
                result = fabric.admit_local(intent.sfc, intent.routed_to)
                if result is not None:
                    return result
            self.escalated += 1
            return fabric.admit(intent.sfc)
        if intent.kind == "evict":
            result = fabric.evict_local(intent.tenant_id)
            if result is not None:
                return result
            self.escalated += 1
            return fabric.evict(intent.tenant_id)
        if intent.kind == "modify":
            assert intent.sfc is not None
            result = fabric.modify_local(intent.tenant_id, intent.sfc)
            if result is not None:
                return result
            self.escalated += 1
            return fabric.modify(intent.tenant_id, intent.sfc)
        if intent.kind == "drain":
            assert intent.switch is not None
            self.escalated += 1
            return fabric.drain(intent.switch)
        if intent.kind == "undrain":
            assert intent.switch is not None
            self.escalated += 1
            return fabric.undrain(intent.switch)
        raise FrontendError(f"unknown intent kind {intent.kind!r}")

    def run(self) -> None:  # pragma: no cover — exercised via the pool
        queue = self.pool.queue
        metrics = self.pool.fabric.metrics
        while True:
            ticket = queue.take(self.switch, self.route, self.take_timeout)
            if ticket is None:
                if queue.finished:
                    return
                continue
            try:
                result = self.execute(ticket.intent)
            except BaseException as exc:  # noqa: BLE001 — ticket carries it
                ticket.fail(exc)
                metrics.inc("frontend.intent_errors")
            else:
                ticket.resolve(result)
                self.executed += 1
                metrics.inc("frontend.intents_executed")
                metrics.inc(f"frontend.intents_executed.{self.switch}")
            finally:
                queue.complete(ticket)


class ShardWorkerPool:
    """The worker fleet plus the fabric's concurrent-mode switchery."""

    def __init__(
        self,
        fabric: FabricOrchestrator,
        queue: IntentQueue | None = None,
        take_timeout: float = 0.05,
        fence=None,
    ) -> None:
        """``fence`` (HA): a callable raising
        :class:`~repro.errors.FencedError` when this node no longer holds
        the primary lease — checked on every :meth:`submit`, so a deposed
        primary refuses intents at the door instead of failing them one
        WAL append later."""
        self.fabric = fabric
        self.queue = queue if queue is not None else IntentQueue()
        self.take_timeout = take_timeout
        self.fence = fence
        self.workers: list[ShardWorker] = []
        self._running = False
        self._saved_journal_digests = True
        self._saved_auto_checkpoints = True

    @property
    def num_workers(self) -> int:
        return len(self.fabric.topology.switch_names)

    def start(self) -> "ShardWorkerPool":
        """Spawn one worker per switch and flip the fabric into
        concurrent mode (no journaled digests, no auto-checkpoints)."""
        if self._running:
            raise FrontendError("worker pool already running")
        self._saved_journal_digests = self.fabric.journal_digests
        self.fabric.journal_digests = False
        if self.fabric.durability is not None:
            self._saved_auto_checkpoints = self.fabric.durability.auto_checkpoints
            self.fabric.durability.auto_checkpoints = False
        self.workers = [
            ShardWorker(self, name, self.take_timeout)
            for name in self.fabric.topology.switch_names
        ]
        self._running = True
        for worker in self.workers:
            worker.start()
        return self

    def submit(self, intent: Intent) -> IntentTicket:
        """Enqueue one intent (the in-process client calls this).  With a
        fence installed, a deposed primary raises
        :class:`~repro.errors.FencedError` here — before the intent is
        even queued."""
        if self.fence is not None:
            self.fence()
        return self.queue.submit(intent)

    def stop(self, timeout: float | None = 30.0) -> None:
        """Graceful shutdown: stop accepting, drain the backlog, join the
        workers, and restore the fabric's serial-mode journaling flags.
        The post-stop fabric is at a quiesce point — safe to digest,
        checkpoint, and audit.

        The serial-mode flags are restored only after a **confirmed**
        quiesce (queue drained and every worker joined).  On timeout,
        still-running workers may keep committing backlog intents, and a
        fabric-wide digest computed under a single shard lock would be
        torn — so the fabric is left in concurrent mode and a
        :class:`~repro.errors.FrontendError` is raised; a later
        :meth:`stop` may retry the drain."""
        if not self._running:
            return
        self.queue.close()
        drained = self.queue.join(timeout)
        stuck: list[str] = []
        for worker in self.workers:
            worker.join(timeout)
            if worker.is_alive():
                stuck.append(worker.switch)
        if not drained or stuck:
            detail = f"; workers still running: {stuck}" if stuck else ""
            raise FrontendError(
                f"worker pool stop timed out with a backlog{detail}"
            )
        self._running = False
        self.fabric.journal_digests = self._saved_journal_digests
        if self.fabric.durability is not None:
            self.fabric.durability.auto_checkpoints = self._saved_auto_checkpoints

    def snapshot(self) -> dict:
        """JSON-native pool state (per-worker execution counts)."""
        return {
            "running": self._running,
            "workers": {
                w.switch: {"executed": w.executed, "escalated": w.escalated}
                for w in self.workers
            },
            "queue": self.queue.snapshot(),
        }
