"""Front-end clients: in-process (tests/benches) and HTTP (wire checks).

:class:`FrontendClient` submits intents straight into a
:class:`~repro.frontend.workers.ShardWorkerPool`'s queue and blocks on
the ticket — the zero-serialization path benchmarks use, with exactly the
ordering/backpressure semantics of the HTTP server.

:class:`HttpFrontendClient` speaks the server's JSON protocol over
stdlib ``urllib`` — used by the server tests and the ``sfp serve`` demo
driver; no third-party HTTP stack."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import asdict

from repro.core.spec import SFC
from repro.errors import FrontendError, QueueFullError
from repro.fabric.orchestrator import DrainReport, FabricOpResult
from repro.frontend.queue import Intent
from repro.frontend.workers import ShardWorkerPool


def result_to_dict(result) -> dict:
    """JSON-native form of a worker result (``FabricOpResult``,
    ``DrainReport``, or ``None`` from undrain)."""
    if result is None:
        return {"ok": True}
    if isinstance(result, FabricOpResult):
        body = asdict(result)
        body["switches"] = list(result.switches)
        return body
    if isinstance(result, DrainReport):
        return {
            "ok": True,
            "op": "drain",
            "switch": result.switch,
            "rehomed": list(result.rehomed),
            "evicted": list(result.evicted),
        }
    raise FrontendError(f"unserializable result {type(result).__name__}")


class FrontendClient:
    """Blocking in-process client over a running worker pool."""

    def __init__(
        self, pool: ShardWorkerPool, timeout: float | None = 30.0
    ) -> None:
        self.pool = pool
        self.timeout = timeout

    def _run(self, intent: Intent):
        return self.pool.submit(intent).result(self.timeout)

    def admit(self, sfc: SFC) -> FabricOpResult:
        """Admit ``sfc`` (its ``tenant_id`` field names the tenant)."""
        return self._run(
            Intent(kind="admit", tenant_id=sfc.tenant_id, sfc=sfc)
        )

    def evict(self, tenant_id: int) -> FabricOpResult:
        """Evict ``tenant_id``'s chain from the fabric."""
        return self._run(Intent(kind="evict", tenant_id=tenant_id))

    def modify(self, tenant_id: int, new_chain: SFC) -> FabricOpResult:
        """Replace ``tenant_id``'s chain with ``new_chain``."""
        return self._run(
            Intent(kind="modify", tenant_id=tenant_id, sfc=new_chain)
        )

    def drain(self, switch: str) -> DrainReport:
        """Drain ``switch``, re-homing (or evicting) its tenants."""
        return self._run(Intent(kind="drain", switch=switch))

    def undrain(self, switch: str) -> None:
        """Return a drained ``switch`` to the routing rotation."""
        return self._run(Intent(kind="undrain", switch=switch))


class HttpFrontendClient:
    """Thin JSON-over-HTTP client for :class:`~repro.frontend.server.
    FrontendServer` (stdlib only).  Raises :class:`QueueFullError` on 429
    and :class:`FrontendError` on other protocol-level failures; fabric
    rejections come back as normal ``{"ok": false, ...}`` payloads."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            payload = exc.read().decode("utf-8", errors="replace")
            if exc.code == 429:
                raise QueueFullError(payload) from None
            raise FrontendError(
                f"{method} {path} -> {exc.code}: {payload}"
            ) from None

    def admit(self, sfc: SFC) -> dict:
        """POST the admit intent; returns the decided-result payload."""
        return self._request("POST", "/v1/tenants", {"sfc": sfc.to_dict()})

    def evict(self, tenant_id: int) -> dict:
        """DELETE the tenant; returns the decided-result payload."""
        return self._request("DELETE", f"/v1/tenants/{tenant_id}")

    def modify(self, tenant_id: int, new_chain: SFC) -> dict:
        """PUT the replacement chain; returns the decided-result payload."""
        return self._request(
            "PUT", f"/v1/tenants/{tenant_id}", {"sfc": new_chain.to_dict()}
        )

    def drain(self, switch: str) -> dict:
        """POST a drain of ``switch``; returns the drain report."""
        return self._request("POST", f"/v1/switches/{switch}/drain")

    def undrain(self, switch: str) -> dict:
        """POST an undrain of ``switch``."""
        return self._request("POST", f"/v1/switches/{switch}/undrain")

    def reoptimize(self, **options) -> dict:
        """POST a fleet-wide re-optimization pass (options: ``mode``,
        ``min_benefit``, ``max_moves``, ``execute``); returns its summary."""
        return self._request("POST", "/v1/reoptimize", options or {})

    def health(self) -> dict:
        """GET liveness + queue depth."""
        return self._request("GET", "/healthz")

    def summary(self) -> dict:
        """GET the fabric occupancy summary."""
        return self._request("GET", "/v1/summary")

    def queue(self) -> dict:
        """GET the queue + worker-pool snapshot."""
        return self._request("GET", "/v1/queue")

    def metrics(self) -> dict:
        """GET the fabric metrics snapshot."""
        return self._request("GET", "/v1/metrics")
