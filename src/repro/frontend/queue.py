"""The ordered intent queue: per-tenant FIFOs behind one scheduler.

Tenant intents (admit / evict / modify) and operator intents (drain /
undrain) enter the control plane through an :class:`IntentQueue`.  The
queue gives the concurrent front end its two ordering guarantees:

* **Per-tenant program order.**  Intents for one tenant are kept in one
  bounded FIFO, and at most one intent per tenant is ever in flight: a
  tenant's second intent cannot start executing until its first has
  completed, no matter how many shard workers are pulling.  Since the
  fabric journal is appended before an op's shard lock is released, the
  WAL's per-tenant record order equals each tenant's submission order.
* **Cross-tenant fairness.**  Ready tenants are served round-robin: when
  a tenant's in-flight intent completes and it still has queued intents,
  it re-enters the ready ring at the tail, so one chatty tenant cannot
  starve the rest.

Backpressure is explicit: :meth:`IntentQueue.submit` raises
:class:`~repro.errors.QueueFullError` when the global bound or the
submitting tenant's FIFO is full (the HTTP server maps this to 429), and
:class:`~repro.errors.FrontendError` once the queue is draining or closed
(503).  Completion is reported through the :class:`IntentTicket` returned
by ``submit`` — a tiny future the in-process client blocks on.

Routing is the queue's third job: a worker calls :meth:`IntentQueue.take`
with its shard name and a route function; the queue scans the ready ring
under its mutex, hands the worker the first head-of-line intent routed to
its shard (or routed nowhere in particular — cross-shard intents, which
any worker may execute under the fabric-wide lock order), and marks that
tenant in flight.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.spec import SFC
from repro.errors import FrontendError, QueueFullError

#: Intent kinds routed by tenant (per-tenant FIFO key = the tenant id).
TENANT_KINDS = ("admit", "evict", "modify")
#: Operator intents routed by switch (FIFO key = the switch name).
SWITCH_KINDS = ("drain", "undrain")

_seq = itertools.count(1)


@dataclass
class Intent:
    """One queued control-plane request.

    ``kind`` is one of :data:`TENANT_KINDS` / :data:`SWITCH_KINDS`;
    ``tenant_id`` + ``sfc`` carry tenant intents, ``switch`` carries
    operator intents.  ``seq`` is a process-wide submission sequence
    number (telemetry labels and test assertions only — ordering comes
    from the per-key FIFOs, not from ``seq``)."""

    kind: str
    tenant_id: int = 0
    sfc: SFC | None = None
    switch: str | None = None
    seq: int = field(default_factory=lambda: next(_seq))
    #: Set by :meth:`IntentQueue.take`: the shard the router chose, or
    #: ``None`` for cross-shard intents (worker escalates immediately).
    routed_to: str | None = None

    @property
    def key(self) -> tuple[str, object]:
        """The FIFO this intent serializes under."""
        if self.kind in SWITCH_KINDS:
            return ("switch", self.switch)
        return ("tenant", self.tenant_id)

    def validate(self) -> None:
        """Reject malformed intents at the door (server/client both call
        this before submission)."""
        if self.kind in TENANT_KINDS:
            if self.kind in ("admit", "modify") and self.sfc is None:
                raise FrontendError(f"{self.kind} intent needs an sfc")
            if self.tenant_id < 0:
                raise FrontendError(f"bad tenant id {self.tenant_id}")
        elif self.kind in SWITCH_KINDS:
            if not self.switch:
                raise FrontendError(f"{self.kind} intent needs a switch")
        else:
            raise FrontendError(f"unknown intent kind {self.kind!r}")


class IntentTicket:
    """A tiny future: resolved by the worker that executed the intent."""

    def __init__(self, intent: Intent) -> None:
        self.intent = intent
        self._done = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    def resolve(self, result) -> None:
        """Worker-side: record the op result and wake waiters."""
        self._result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        """Worker-side: record an execution error and wake waiters."""
        self._error = error
        self._done.set()

    def done(self) -> bool:
        """Whether the intent has executed (successfully or not)."""
        return self._done.is_set()

    def result(self, timeout: float | None = None):
        """Block until the intent executed; re-raise worker errors."""
        if not self._done.wait(timeout):
            raise FrontendError(
                f"intent #{self.intent.seq} ({self.intent.kind}) timed out"
            )
        if self._error is not None:
            raise self._error
        return self._result


class IntentQueue:
    """Bounded per-key FIFOs + the round-robin ready ring (see module
    docstring for the guarantees)."""

    def __init__(self, capacity: int = 4096, per_tenant: int = 64) -> None:
        if capacity < 1:
            raise FrontendError("capacity must be >= 1")
        if per_tenant < 1:
            raise FrontendError("per_tenant must be >= 1")
        self.capacity = capacity
        self.per_tenant = per_tenant
        self._cv = threading.Condition()
        self._fifos: dict[tuple, deque] = {}
        #: Keys with a queued head and no intent in flight, service order.
        self._ready: deque[tuple] = deque()
        self._in_flight: set[tuple] = set()
        self._size = 0
        self._accepting = True
        self._closed = False
        # -- counters (read via snapshot) --------------------------------
        self.submitted = 0
        self.completed = 0
        self.rejected_full = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, intent: Intent) -> IntentTicket:
        """Enqueue one intent; returns its ticket.  Raises
        :class:`QueueFullError` on backpressure and
        :class:`FrontendError` once draining/closed."""
        intent.validate()
        ticket = IntentTicket(intent)
        with self._cv:
            if not self._accepting:
                raise FrontendError("intent queue is draining or closed")
            if self._size >= self.capacity:
                self.rejected_full += 1
                raise QueueFullError(
                    f"intent queue full ({self.capacity} queued)"
                )
            key = intent.key
            fifo = self._fifos.get(key)
            if fifo is None:
                fifo = self._fifos[key] = deque()
            if len(fifo) >= self.per_tenant:
                self.rejected_full += 1
                raise QueueFullError(
                    f"tenant queue full ({self.per_tenant} queued for "
                    f"{key[0]} {key[1]})"
                )
            fifo.append(ticket)
            self._size += 1
            self.submitted += 1
            if len(fifo) == 1 and key not in self._in_flight:
                self._ready.append(key)
            self._cv.notify_all()
        return ticket

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def take(
        self,
        switch: str,
        route: Callable[[Intent], str | None],
        timeout: float = 0.1,
    ) -> IntentTicket | None:
        """Claim the next head-of-line intent for ``switch``.

        Scans the ready ring in service order and returns the first
        ticket whose head intent routes to ``switch`` — or routes to no
        live shard at all (``route`` returned ``None``), which any worker
        may execute.  Marks the key in flight (the per-tenant exclusivity
        the fabric's fast paths rely on).  Returns ``None`` on timeout,
        or when the queue is closed and empty (the worker's exit signal).
        """
        with self._cv:
            while True:
                for _ in range(len(self._ready)):
                    key = self._ready[0]
                    ticket = self._fifos[key][0]
                    target = route(ticket.intent)
                    if target is None or target == switch:
                        self._ready.popleft()
                        self._fifos[key].popleft()
                        self._in_flight.add(key)
                        ticket.intent.routed_to = target
                        return ticket
                    # Head routed elsewhere: rotate so the scan is fair
                    # and another shard's worker finds it at the front.
                    self._ready.rotate(-1)
                if self._closed and self._size == 0:
                    return None
                if not self._cv.wait(timeout):
                    return None

    def complete(self, ticket: IntentTicket) -> None:
        """Worker-side bookkeeping after the intent executed (success or
        failure): release the key's in-flight slot and, if more intents
        are queued for it, re-enter the ready ring at the tail."""
        key = ticket.intent.key
        with self._cv:
            self._in_flight.discard(key)
            self._size -= 1
            self.completed += 1
            fifo = self._fifos.get(key)
            if fifo:
                self._ready.append(key)
            elif fifo is not None:
                del self._fifos[key]
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Stop accepting new intents; queued intents keep executing."""
        with self._cv:
            self._accepting = False
            self._cv.notify_all()

    def close(self) -> None:
        """Drain and mark closed — workers exit once the backlog is
        empty."""
        with self._cv:
            self._accepting = False
            self._closed = True
            self._cv.notify_all()

    def join(self, timeout: float | None = None) -> bool:
        """Block until every queued intent has completed (including the
        in-flight ones); returns whether the queue emptied in time."""
        deadline = None if timeout is None else timeout
        with self._cv:
            return self._cv.wait_for(lambda: self._size == 0, deadline)

    @property
    def finished(self) -> bool:
        """Closed with an empty backlog — the workers' exit condition."""
        with self._cv:
            return self._closed and self._size == 0

    def snapshot(self) -> dict:
        """JSON-native queue state (the server's ``/v1/queue`` payload)."""
        with self._cv:
            return {
                "queued": self._size,
                "in_flight": len(self._in_flight),
                "tenants_waiting": len(self._ready),
                "accepting": self._accepting,
                "closed": self._closed,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected_full": self.rejected_full,
                "capacity": self.capacity,
                "per_tenant": self.per_tenant,
            }

    def __len__(self) -> int:
        with self._cv:
            return self._size
