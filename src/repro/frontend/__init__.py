"""The concurrent control-plane front end.

Tenant intents enter through :class:`~repro.frontend.server.FrontendServer`
(HTTP/JSON) or :class:`~repro.frontend.client.FrontendClient` (in-process),
are ordered by the bounded per-tenant
:class:`~repro.frontend.queue.IntentQueue`, and execute on the
one-worker-per-switch :class:`~repro.frontend.workers.ShardWorkerPool`
through the orchestrator's single-shard fast paths — concurrent admission
across shards with every fabric invariant intact.  See DESIGN.md §14.
"""

from repro.frontend.client import FrontendClient, HttpFrontendClient
from repro.frontend.queue import Intent, IntentQueue, IntentTicket
from repro.frontend.server import FrontendServer
from repro.frontend.workers import ShardWorker, ShardWorkerPool

__all__ = [
    "FrontendClient",
    "FrontendServer",
    "HttpFrontendClient",
    "Intent",
    "IntentQueue",
    "IntentTicket",
    "ShardWorker",
    "ShardWorkerPool",
]
