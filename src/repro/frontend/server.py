"""The tenant-facing HTTP/JSON API server (stdlib ``http.server``).

:class:`FrontendServer` exposes the fabric's tenant lifecycle over a
small JSON protocol, with every request funnelled through the ordered
intent queue and executed by the shard worker pool — the HTTP layer adds
no ordering or locking of its own:

====== ================================ =====================================
verb   path                             meaning
====== ================================ =====================================
POST   ``/v1/tenants``                  admit (body: ``{"sfc": {...}}``)
DELETE ``/v1/tenants/<id>``             evict
PUT    ``/v1/tenants/<id>``             modify (body: ``{"sfc": {...}}``)
POST   ``/v1/switches/<name>/drain``    drain a switch
POST   ``/v1/switches/<name>/undrain``  return a switch to routing
POST   ``/v1/reoptimize``               fleet-wide re-optimization pass
GET    ``/healthz``                     liveness + HA role/epoch + queue depth
GET    ``/v1/summary``                  fabric occupancy summary (+ HA block)
GET    ``/v1/queue``                    queue + worker-pool snapshot
GET    ``/v1/metrics``                  fabric metrics snapshot
====== ================================ =====================================

Status codes carry the backpressure semantics: **200** for every decided
fabric op (including rejections — the body's ``ok``/``reason`` tell the
tenant why), **429** with a ``Retry-After`` header when the intent queue
refuses the submission (per-tenant FIFO or global bound full), **503**
once the server is draining for shutdown, **400** for malformed JSON and
**404** for unknown routes.  Under HA, writes on a standby — or on a
primary whose lease fence tripped — return **503** with the primary's URL
in both the ``Location`` header and the body, so clients redirect instead
of retrying a node that can never acknowledge.

Shutdown is graceful: :meth:`FrontendServer.close` stops accepting new
connections, drains the intent queue through the pool, and (when the
fabric has durability attached) takes a quiesce checkpoint — so a
restarted server recovers the exact committed state without replaying the
whole journal.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.spec import SFC
from repro.errors import FencedError, FrontendError, QueueFullError, ReproError
from repro.fabric.orchestrator import FabricOrchestrator
from repro.frontend.client import result_to_dict
from repro.frontend.queue import Intent, IntentQueue
from repro.frontend.workers import ShardWorkerPool


class _Handler(BaseHTTPRequestHandler):
    """Request parsing + dispatch; one instance per request (stdlib)."""

    server_version = "sfp-frontend/1.0"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer subclass below carries the frontend ref.
    @property
    def frontend(self) -> "FrontendServer":
        return self.server.frontend  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the flight recorder and metrics are the log

    # -- plumbing ------------------------------------------------------
    def _send(self, code: int, body: dict, headers: dict | None = None) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(payload)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise FrontendError(f"bad JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise FrontendError("JSON body must be an object")
        return body

    def _send_not_primary(self, error: str) -> None:
        """503 with the primary's location (HA): the client must redirect
        its writes — this node either is a standby or just lost the lease."""
        frontend = self.frontend
        frontend.fabric.metrics.inc("frontend.http_not_primary")
        body = {
            "error": error,
            "role": getattr(frontend.fabric, "role", "primary"),
        }
        headers: dict[str, str] = {}
        if frontend.primary_url:
            body["primary"] = frontend.primary_url
            headers["Location"] = frontend.primary_url
        self._send(503, body, headers)

    def _run_intent(self, intent: Intent) -> None:
        """Submit one intent and reply with its executed result."""
        frontend = self.frontend
        if getattr(frontend.fabric, "role", "primary") != "primary":
            self._send_not_primary(
                "this node is a standby; writes go to the primary"
            )
            return
        try:
            ticket = frontend.pool.submit(intent)
        except FencedError as exc:
            self._send_not_primary(str(exc))
            return
        except QueueFullError as exc:
            frontend.fabric.metrics.inc("frontend.http_backpressure")
            self._send(429, {"error": str(exc)}, {"Retry-After": "1"})
            return
        except FrontendError as exc:
            self._send(503, {"error": str(exc)})
            return
        try:
            result = ticket.result(frontend.request_timeout)
        except FencedError as exc:
            # The lease was lost between submit and commit: the WAL fence
            # killed the append, so the op was never journaled.
            self._send_not_primary(str(exc))
            return
        except ReproError as exc:
            self._send(500, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 — a worker bug must still
            # produce an HTTP response, not a dropped keep-alive connection
            frontend.fabric.metrics.inc("frontend.http_internal_errors")
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send(200, result_to_dict(result))

    # -- routes --------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if method == "GET":
                self._get(parts)
            elif method == "POST":
                self._post(parts)
            elif method == "PUT":
                self._put(parts)
            elif method == "DELETE":
                self._delete(parts)
            else:  # pragma: no cover — stdlib routes known verbs only
                self._send(405, {"error": f"unsupported method {method}"})
        except FrontendError as exc:
            self._send(400, {"error": str(exc)})
        except ReproError as exc:
            self._send(500, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — see _run_intent
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _get(self, parts: list[str]) -> None:
        frontend = self.frontend
        if parts == ["healthz"]:
            body = {
                "ok": True,
                "draining": frontend.draining,
                "queued": len(frontend.queue),
            }
            body.update(frontend.ha_status())
            self._send(200, body)
        elif parts == ["v1", "summary"]:
            body = dict(frontend.fabric.summary())
            body["ha"] = frontend.ha_status()
            self._send(200, body)
        elif parts == ["v1", "queue"]:
            self._send(200, frontend.pool.snapshot())
        elif parts == ["v1", "metrics"]:
            self._send(200, frontend.fabric.metrics_snapshot())
        else:
            self._send(404, {"error": f"no route GET /{'/'.join(parts)}"})

    def _post(self, parts: list[str]) -> None:
        if parts == ["v1", "tenants"]:
            sfc = self._parse_sfc(self._body())
            self._run_intent(
                Intent(kind="admit", tenant_id=sfc.tenant_id, sfc=sfc)
            )
        elif (
            len(parts) == 4
            and parts[:2] == ["v1", "switches"]
            and parts[3] in ("drain", "undrain")
        ):
            self._run_intent(Intent(kind=parts[3], switch=parts[2]))
        elif parts == ["v1", "reoptimize"]:
            self._reoptimize(self._body())
        else:
            self._send(404, {"error": f"no route POST /{'/'.join(parts)}"})

    def _reoptimize(self, body: dict) -> None:
        """Run one global re-optimization pass and reply with its summary.
        Cross-shard by construction, so it bypasses the per-shard intent
        queue and executes directly under the fabric-wide lock order (the
        same role gate as writes applies: standbys refuse)."""
        frontend = self.frontend
        if getattr(frontend.fabric, "role", "primary") != "primary":
            self._send_not_primary(
                "this node is a standby; writes go to the primary"
            )
            return
        mode = body.get("mode", "auto")
        if mode not in ("auto", "ilp", "greedy"):
            raise FrontendError(f"bad reoptimize mode {mode!r}")
        try:
            min_benefit = float(body.get("min_benefit", 0.5))
            max_moves = (
                int(body["max_moves"]) if "max_moves" in body else None
            )
        except (TypeError, ValueError) as exc:
            raise FrontendError(f"bad reoptimize body: {exc}") from None
        report = frontend.fabric.reoptimize(
            mode=mode,
            min_benefit=min_benefit,
            max_moves=max_moves,
            execute=bool(body.get("execute", True)),
        )
        self._send(200, {"ok": report.ok, **report.summary()})

    def _put(self, parts: list[str]) -> None:
        if len(parts) == 3 and parts[:2] == ["v1", "tenants"]:
            tenant_id = self._parse_tenant_id(parts[2])
            sfc = self._parse_sfc(self._body())
            self._run_intent(
                Intent(kind="modify", tenant_id=tenant_id, sfc=sfc)
            )
        else:
            self._send(404, {"error": f"no route PUT /{'/'.join(parts)}"})

    def _delete(self, parts: list[str]) -> None:
        if len(parts) == 3 and parts[:2] == ["v1", "tenants"]:
            tenant_id = self._parse_tenant_id(parts[2])
            self._run_intent(Intent(kind="evict", tenant_id=tenant_id))
        else:
            self._send(404, {"error": f"no route DELETE /{'/'.join(parts)}"})

    # -- parsing -------------------------------------------------------
    @staticmethod
    def _parse_tenant_id(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise FrontendError(f"bad tenant id {raw!r}") from None

    @staticmethod
    def _parse_sfc(body: dict) -> SFC:
        record = body.get("sfc")
        if not isinstance(record, dict):
            raise FrontendError('body needs an "sfc" object')
        try:
            return SFC.from_dict(record)
        except (KeyError, TypeError, ValueError) as exc:
            raise FrontendError(f"bad sfc: {exc}") from None

    def do_GET(self) -> None:  # noqa: N802 — stdlib handler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, frontend: "FrontendServer") -> None:
        super().__init__(address, _Handler)
        self.frontend = frontend


class FrontendServer:
    """The API server: HTTP listener + intent queue + shard worker pool.

    Construct, :meth:`start`, drive (HTTP or the in-process client
    against :attr:`pool`), :meth:`close`.  Also usable as a context
    manager.  ``port=0`` binds an ephemeral port (tests);
    :attr:`address` reports the bound ``host:port``.
    """

    def __init__(
        self,
        fabric: FabricOrchestrator,
        host: str = "127.0.0.1",
        port: int = 8080,
        queue: IntentQueue | None = None,
        request_timeout: float = 30.0,
        primary_url: str | None = None,
        fence=None,
    ) -> None:
        """HA deployments pass ``fence`` (the lease coordinator's
        ``check_fence``, installed on the worker pool so a deposed
        primary's writes 503 at the door) and — on standbys — the
        ``primary_url`` clients are redirected to."""
        self.fabric = fabric
        self.queue = queue if queue is not None else IntentQueue()
        self.pool = ShardWorkerPool(fabric, queue=self.queue, fence=fence)
        self.request_timeout = request_timeout
        self.primary_url = primary_url
        self._httpd = _Server((host, port), self)
        self._serve_thread: threading.Thread | None = None
        self.draining = False

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    def ha_status(self) -> dict:
        """Role, fencing epoch, and committed LSN — merged into
        ``/healthz`` and ``/v1/summary`` so operators (and failover
        tooling) can read a node's HA position off either endpoint."""
        durability = self.fabric.durability
        status = {
            "role": getattr(self.fabric, "role", "primary"),
            "epoch": getattr(self.fabric, "epoch", 0),
            "committed_lsn": (
                durability.wal.last_lsn if durability is not None else 0
            ),
        }
        if self.primary_url:
            status["primary"] = self.primary_url
        return status

    @property
    def url(self) -> str:
        return f"http://{self.address}"

    def start(self) -> "FrontendServer":
        """Start the worker pool and the HTTP accept loop (both in
        background threads); returns self for chaining."""
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="sfp-frontend-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def close(self, timeout: float | None = 30.0) -> None:
        """Graceful shutdown: refuse new intents, drain the backlog, stop
        the workers, stop the listener, and take a quiesce checkpoint when
        durability is attached."""
        if self.draining:
            return
        self.draining = True
        self.queue.drain()
        self.pool.stop(timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)
        if self.fabric.durability is not None:
            self.fabric.durability.checkpoint(self.fabric)

    def __enter__(self) -> "FrontendServer":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.close()
