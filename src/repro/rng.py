"""Seeded randomness helpers.

Everything stochastic in this library (workload synthesis, randomized
rounding, traffic generation) threads an explicit
:class:`numpy.random.Generator`.  The global numpy RNG is never touched, so
any experiment is reproducible from its seed alone.
"""

from __future__ import annotations

import numpy as np

#: Default seed used by example scripts and benchmark defaults.  Chosen
#: arbitrarily; what matters is that it is fixed.
DEFAULT_SEED = 20220522


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh default seed), an integer seed, or an existing
    generator (returned unchanged, so call sites can be agnostic about
    whether the caller passed a seed or a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used when an experiment fans out over trials/datasets: each trial gets
    its own stream so per-trial results do not depend on evaluation order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
