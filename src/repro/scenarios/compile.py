"""Scenario compiler: a :class:`~repro.scenarios.dsl.ScenarioSpec` plus a
seed becomes a totally ordered, replayable event stream.

Arrivals are drawn per phase by *thinning* (rejection sampling a homogeneous
Poisson process at the curve's peak rate), so any :class:`LoadCurve` shape
yields an exact non-homogeneous Poisson stream from one
:func:`~repro.rng.make_rng` generator.  Lifetimes, modify draws, fault
schedules and burst-modify coin flips all come from the same generator in a
fixed order, so **the same (spec, seed) always compiles to the same
stream** — byte for byte.  :func:`trace_digest` pins that down: it hashes
the canonical JSONL encoding of every event, and
:func:`save_campaign`/:func:`load_campaign` write/verify it in the trace
header.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, replace
from hashlib import blake2b
from pathlib import Path
from typing import Iterable

from repro.controller.events import ChurnEvent, EventKind
from repro.core.spec import SFC
from repro.errors import ScenarioError
from repro.rng import make_rng
from repro.scenarios.dsl import ScenarioSpec
from repro.traffic.workload import make_sfcs

#: Trace format version written into campaign headers.
CAMPAIGN_TRACE_VERSION = 1

#: Event kinds, in same-timestamp replay order: the phase marker first,
#: then administrative undrain/drain, then tenant lifecycle, then the
#: global ``reoptimize`` pass (appended last so pre-existing traces keep
#: their byte-identical ordering; a re-optimization sees the instant's
#: churn already applied).
EVENT_KINDS = (
    "phase", "undrain", "drain", "departure", "modify", "arrival", "reoptimize"
)

_KIND_RANK = {kind: rank for rank, kind in enumerate(EVENT_KINDS)}

#: Scenario event kinds that map 1:1 onto churn-stream lifecycle kinds.
LIFECYCLE_KINDS = ("arrival", "departure", "modify")


@dataclass(frozen=True)
class ScenarioEvent:
    """One compiled campaign event.

    Lifecycle kinds (``arrival``/``departure``/``modify``) carry a
    ``tenant_id`` (and an ``sfc`` for arrivals/modifies) and convert to
    :class:`~repro.controller.events.ChurnEvent` via :meth:`to_churn_event`;
    administrative kinds (``drain``/``undrain``) carry a ``switch`` while
    ``reoptimize`` triggers a fabric-wide pass; the ``phase`` marker opens
    each phase.  ``seq`` makes replay order total.
    """

    time_s: float
    seq: int
    kind: str
    phase: str
    tenant_id: int = -1
    switch: str | None = None
    sfc: SFC | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_RANK:
            raise ScenarioError(
                f"unknown event kind {self.kind!r}; choices: {EVENT_KINDS}"
            )

    @property
    def lifecycle(self) -> bool:
        """Whether this event is a tenant lifecycle event (vs admin/marker)."""
        return self.kind in LIFECYCLE_KINDS

    def to_churn_event(self) -> ChurnEvent:
        """This event as the churn-stream type the fabric engine replays
        (lifecycle kinds only)."""
        if not self.lifecycle:
            raise ScenarioError(f"{self.kind} events have no churn equivalent")
        return ChurnEvent(
            time_s=self.time_s,
            seq=self.seq,
            kind=EventKind(self.kind),
            tenant_id=self.tenant_id,
            sfc=self.sfc,
        )

    def to_dict(self) -> dict:
        """JSON-native form (one JSONL trace record; exact inverse of
        :meth:`from_dict`)."""
        record = {
            "time_s": self.time_s,
            "seq": self.seq,
            "kind": self.kind,
            "phase": self.phase,
            "tenant_id": self.tenant_id,
        }
        if self.switch is not None:
            record["switch"] = self.switch
        if self.sfc is not None:
            record["sfc"] = self.sfc.to_dict()
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "ScenarioEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            time_s=float(record["time_s"]),
            seq=int(record["seq"]),
            kind=record["kind"],
            phase=record["phase"],
            tenant_id=int(record["tenant_id"]),
            switch=record.get("switch"),
            sfc=SFC.from_dict(record["sfc"]) if "sfc" in record else None,
        )


def trace_digest(events: Iterable[ScenarioEvent]) -> str:
    """Stable blake2b digest of the canonical JSONL encoding of a stream.
    Two streams digest equal iff their serialized traces are byte-identical
    — the replayability guarantee the property suite asserts."""
    h = blake2b(digest_size=16)
    for event in events:
        line = json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


@dataclass(frozen=True)
class CompiledCampaign:
    """A compiled campaign: the source spec, the seed actually used, and
    the totally ordered event stream."""

    spec: ScenarioSpec
    seed: int
    events: tuple[ScenarioEvent, ...]

    @property
    def num_events(self) -> int:
        """Events in the stream (markers and admin events included)."""
        return len(self.events)

    def digest(self) -> str:
        """The stream's :func:`trace_digest`."""
        return trace_digest(self.events)

    def counts(self) -> dict[str, int]:
        """Events per kind (diagnostic view)."""
        out: dict[str, int] = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            out[event.kind] += 1
        return out


def _draw_arrivals(rng, load, duration: float) -> list[float]:
    """Thinning: candidate points at the envelope rate, each kept with
    probability rate(t)/envelope — an exact non-homogeneous Poisson
    sample for any bounded curve."""
    envelope = load.max_rate(duration)
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / envelope))
        if t >= duration:
            return times
        if float(rng.random()) * envelope <= load.rate_at(t, duration):
            times.append(t)


def compile_scenario(
    spec: ScenarioSpec, seed: int | None = None
) -> CompiledCampaign:
    """Compile ``spec`` into its deterministic event stream.

    ``seed`` defaults to ``spec.seed``.  Tenant IDs are campaign-wide
    arrival indices (0, 1, ...); departures/modifies that a lifetime pushes
    past the campaign horizon are dropped (the tenant survives the
    campaign), exactly like the plain churn synthesizer.
    """
    used_seed = spec.seed if seed is None else int(seed)
    rng = make_rng(used_seed)
    horizon = spec.duration_s
    bounds = spec.phase_bounds()
    starts = [start for _name, start, _end in bounds]

    def phase_of(t: float) -> str:
        return bounds[max(0, bisect_right(starts, t) - 1)][0]

    # (time, rank, tenant_id, tiebreak) -> raw record; sorted at the end.
    raw: list[tuple[tuple, dict]] = []

    def push(time_s: float, kind: str, **fields) -> None:
        key = (
            time_s,
            _KIND_RANK[kind],
            fields.get("tenant_id", -1),
            fields.get("switch") or "",
        )
        raw.append((key, {"time_s": time_s, "kind": kind, **fields}))

    tenant_counter = 0
    arrival_at: dict[int, float] = {}
    depart_at: dict[int, float] = {}

    for phase, (name, start, _end) in zip(spec.phases, bounds):
        push(start, "phase", phase_name=name)
        for action in phase.faults:
            push(start + action.at_s, action.kind, switch=action.switch)
        times = _draw_arrivals(rng, phase.load, phase.duration_s)
        n = len(times)
        chains = make_sfcs(spec.workload.with_num_sfcs(n), rng)
        lifetimes = rng.exponential(phase.mean_lifetime_s, size=n)
        modify_mask = rng.random(size=n) < phase.modify_fraction
        modify_frac = rng.random(size=n)
        mod_chains = make_sfcs(
            spec.workload.with_num_sfcs(int(modify_mask.sum())), rng
        )
        mod_idx = 0
        for idx, offset in enumerate(times):
            tenant = tenant_counter
            tenant_counter += 1
            at = start + offset
            arrival_at[tenant] = at
            sfc = replace(
                chains[idx], tenant_id=tenant, name=f"tenant-{tenant}"
            )
            push(at, "arrival", tenant_id=tenant, sfc=sfc)
            lifetime = float(lifetimes[idx])
            if modify_mask[idx]:
                new_chain = replace(
                    mod_chains[mod_idx],
                    tenant_id=tenant,
                    name=f"tenant-{tenant}-v2",
                )
                mod_idx += 1
                modifies_at = at + lifetime * float(modify_frac[idx])
                if modifies_at < horizon:
                    push(modifies_at, "modify", tenant_id=tenant, sfc=new_chain)
            departs = at + lifetime
            if departs < horizon:
                depart_at[tenant] = departs
                push(departs, "departure", tenant_id=tenant)

    # Burst-modify storms: one coin per stream-live tenant per burst, in
    # (phase, burst, tenant-id) order so the draw sequence is fixed.
    for phase, (_name, start, _end) in zip(spec.phases, bounds):
        for burst in phase.bursts:
            at = start + burst.at_s
            live = sorted(
                t
                for t, arrived in arrival_at.items()
                if arrived <= at and depart_at.get(t, horizon + 1.0) > at
            )
            chosen = [t for t in live if float(rng.random()) < burst.fraction]
            burst_chains = make_sfcs(
                spec.workload.with_num_sfcs(len(chosen)), rng
            )
            for idx, tenant in enumerate(chosen):
                new_chain = replace(
                    burst_chains[idx],
                    tenant_id=tenant,
                    name=f"tenant-{tenant}-burst",
                )
                push(at, "modify", tenant_id=tenant, sfc=new_chain)

    raw.sort(key=lambda pair: pair[0])
    events = []
    for seq, (_key, fields) in enumerate(raw):
        kind = fields.pop("kind")
        time_s = fields.pop("time_s")
        name = fields.pop("phase_name", None)
        events.append(
            ScenarioEvent(
                time_s=time_s,
                seq=seq,
                kind=kind,
                phase=name if name is not None else phase_of(time_s),
                **fields,
            )
        )
    return CompiledCampaign(spec=spec, seed=used_seed, events=tuple(events))


def save_campaign(path: str | Path, campaign: CompiledCampaign) -> None:
    """Write a compiled campaign as JSONL: one header record carrying the
    spec, seed, event count and trace digest, then one record per event —
    the file alone re-verifies and replays the run."""
    header = {
        "header": True,
        "version": CAMPAIGN_TRACE_VERSION,
        "kind": "scenario-campaign",
        "num_events": campaign.num_events,
        "seed": campaign.seed,
        "digest": campaign.digest(),
        "spec": campaign.spec.to_dict(),
    }
    with Path(path).open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in campaign.events:
            fh.write(
                json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
                + "\n"
            )


def load_campaign(path: str | Path) -> CompiledCampaign:
    """Read a campaign written by :func:`save_campaign`, verifying the
    header digest against the events actually read (a corrupted or edited
    trace fails loudly)."""
    path = Path(path)
    header: dict | None = None
    events: list[ScenarioEvent] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("header"):
                header = record
                continue
            events.append(ScenarioEvent.from_dict(record))
    if header is None:
        raise ScenarioError(f"{path} has no campaign header record")
    if header.get("kind") != "scenario-campaign":
        raise ScenarioError(f"{path} is not a scenario campaign trace")
    campaign = CompiledCampaign(
        spec=ScenarioSpec.from_dict(header["spec"]),
        seed=int(header["seed"]),
        events=tuple(events),
    )
    digest = campaign.digest()
    if digest != header["digest"]:
        raise ScenarioError(
            f"{path}: trace digest {digest} != header {header['digest']} "
            "(corrupted or hand-edited trace)"
        )
    if len(events) != int(header["num_events"]):
        raise ScenarioError(
            f"{path}: {len(events)} events != header count {header['num_events']}"
        )
    return campaign


__all__ = [
    "CAMPAIGN_TRACE_VERSION",
    "CompiledCampaign",
    "EVENT_KINDS",
    "LIFECYCLE_KINDS",
    "ScenarioEvent",
    "compile_scenario",
    "load_campaign",
    "save_campaign",
    "trace_digest",
]
