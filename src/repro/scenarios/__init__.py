"""Declarative scenario campaigns + the million-tenant scale harness.

This package turns hand-written campaign specs into deterministic seeded
event streams that drive the real multi-switch fabric:

``repro.scenarios.dsl``
    The declarative spec layer — :class:`ScenarioSpec` (phases, load
    curves, fault schedules, burst-modify schedules) with exact
    JSON/YAML round-tripping.
``repro.scenarios.compile``
    Spec → stream compiler: a seeded, totally ordered
    :class:`ScenarioEvent` list with a byte-stable trace digest and JSONL
    save/load.
``repro.scenarios.runner``
    Replays a compiled campaign against a :class:`~repro.fabric.
    orchestrator.FabricOrchestrator` (drains, undrains and lifecycle
    events alike), checking the fabric bit-identity invariant at every
    phase boundary and reporting per-phase + campaign-wide summaries.
``repro.scenarios.library``
    Production-shaped campaign library (diurnal, flash crowd, correlated
    failures at peak, rolling upgrade, noisy neighbor, burst modifies).
``repro.scenarios.scale``
    Capacity-planning scale mode: a slim columnar fabric model that
    replicates the greedy placement walk exactly but holds per-tenant
    state in a few numpy rows, reaching 10^5-10^6 tenants.
"""

from repro.scenarios.compile import (
    CompiledCampaign,
    ScenarioEvent,
    compile_scenario,
    load_campaign,
    save_campaign,
    trace_digest,
)
from repro.scenarios.dsl import (
    FaultAction,
    LoadCurve,
    ModifyBurst,
    PhaseSpec,
    ScenarioSpec,
    TopologySpec,
    load_spec,
    save_spec,
)
from repro.scenarios.library import CAMPAIGNS, campaign_names, get_campaign
from repro.scenarios.runner import (
    CampaignReport,
    PhaseReport,
    ScenarioRunner,
    build_fabric,
    run_campaign,
)
from repro.scenarios.scale import FillReport, ScaleFabric, run_fill

__all__ = [
    "CAMPAIGNS",
    "CampaignReport",
    "CompiledCampaign",
    "FaultAction",
    "FillReport",
    "LoadCurve",
    "ModifyBurst",
    "PhaseReport",
    "PhaseSpec",
    "ScaleFabric",
    "ScenarioEvent",
    "ScenarioRunner",
    "ScenarioSpec",
    "TopologySpec",
    "build_fabric",
    "campaign_names",
    "compile_scenario",
    "get_campaign",
    "load_campaign",
    "load_spec",
    "run_campaign",
    "run_fill",
    "save_campaign",
    "save_spec",
    "trace_digest",
]
