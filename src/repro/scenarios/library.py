"""The production-shaped campaign library.

Eight seeded campaigns, each a :class:`~repro.scenarios.dsl.ScenarioSpec`
over a small, deliberately tight 4-switch fabric (low per-stage SRAM and
backplane so churn actually produces spillover, stitching and rejections):

* ``steady-state`` — constant-rate baseline with a warmup and cooldown.
* ``diurnal`` — a day compressed: quiet night, morning ramp, sinusoidal
  peak hours, evening ramp-down.
* ``flash-crowd`` — a viral spike: short-lived tenants arrive at ~7x the
  baseline rate for a third of the crowd phase.
* ``correlated-failure`` — two switches drained back-to-back at peak load
  (the fault-at-peak drill), then undrained during recovery.
* ``rolling-upgrade`` — a serial fleet upgrade: each switch drained at the
  start of its phase and undrained near the end, under background churn.
* ``noisy-neighbor`` — a rule-churn storm: heavy-rule chains renegotiated
  at a 90% modify mix while the rest of the fleet runs normally.
* ``burst-modify`` — synchronized modify storms: half the live tenants
  re-negotiate at three scheduled instants.
* ``defrag-cadence`` — the fragmentation drill: long-lived heavy chains
  interleave with a short-lived exodus, then scheduled ``reoptimize``
  passes defragment the fleet under continued churn.

Every campaign is registered in :data:`CAMPAIGNS` under its name; the
acceptance suite replays each one and asserts the fabric bit-identity
invariant at every phase boundary.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.spec import SwitchSpec
from repro.errors import ScenarioError
from repro.scenarios.dsl import (
    FaultAction,
    LoadCurve,
    ModifyBurst,
    PhaseSpec,
    ScenarioSpec,
    TopologySpec,
)
from repro.traffic.workload import WorkloadConfig

#: The library's per-switch spec: 4 stages x 6 blocks of 100 entries and a
#: 60 Gbps backplane — small enough that tens of tenants fill a switch.
CAMPAIGN_SWITCH = SwitchSpec(
    stages=4,
    blocks_per_stage=6,
    block_bits=6400,
    rule_bits=64,
    capacity_gbps=60.0,
)

#: The library's default 4-switch full mesh (R=1, so K=8 virtual stages).
CAMPAIGN_TOPOLOGY = TopologySpec(
    kind="full_mesh",
    num_switches=4,
    switch=CAMPAIGN_SWITCH,
    max_recirculations=1,
    link_capacity_gbps=100.0,
)

#: The library's chain workload: short chains, 1-4 blocks-worth of rules,
#: sub-4 Gbps demands (the durability sweep's proven churn mix).
CAMPAIGN_WORKLOAD = WorkloadConfig(
    num_sfcs=0,
    num_types=6,
    avg_chain_length=3,
    chain_length_spread=2,
    rules_min=1,
    rules_max=4,
    mean_bandwidth_gbps=1.0,
    max_bandwidth_gbps=4.0,
)


def _steady_state() -> ScenarioSpec:
    """Constant-rate baseline: warmup, a long steady plateau, cooldown."""
    return ScenarioSpec(
        name="steady-state",
        description="constant-rate baseline with warmup and cooldown",
        seed=1101,
        topology=CAMPAIGN_TOPOLOGY,
        workload=CAMPAIGN_WORKLOAD,
        phases=(
            PhaseSpec(
                name="warmup",
                duration_s=20.0,
                load=LoadCurve(kind="constant", rate_per_s=4.0),
                mean_lifetime_s=10.0,
            ),
            PhaseSpec(
                name="steady",
                duration_s=60.0,
                load=LoadCurve(kind="constant", rate_per_s=8.0),
                mean_lifetime_s=8.0,
                modify_fraction=0.2,
            ),
            PhaseSpec(
                name="cooldown",
                duration_s=20.0,
                load=LoadCurve(kind="constant", rate_per_s=2.0),
                mean_lifetime_s=4.0,
            ),
        ),
    )


def _diurnal() -> ScenarioSpec:
    """A compressed day: night trough, morning ramp, sinusoidal peak
    hours, evening ramp-down."""
    return ScenarioSpec(
        name="diurnal",
        description="diurnal load curve: night, ramp, sine peak, ramp-down",
        seed=1102,
        topology=CAMPAIGN_TOPOLOGY,
        workload=CAMPAIGN_WORKLOAD,
        phases=(
            PhaseSpec(
                name="night",
                duration_s=30.0,
                load=LoadCurve(kind="constant", rate_per_s=2.0),
                mean_lifetime_s=15.0,
            ),
            PhaseSpec(
                name="morning",
                duration_s=30.0,
                load=LoadCurve(kind="ramp", rate_per_s=2.0, peak_per_s=10.0),
                mean_lifetime_s=10.0,
                modify_fraction=0.1,
            ),
            PhaseSpec(
                name="peak",
                duration_s=40.0,
                load=LoadCurve(
                    kind="sine", rate_per_s=6.0, peak_per_s=12.0, period_s=20.0
                ),
                mean_lifetime_s=8.0,
                modify_fraction=0.2,
            ),
            PhaseSpec(
                name="evening",
                duration_s=30.0,
                load=LoadCurve(kind="ramp", rate_per_s=10.0, peak_per_s=2.0),
                mean_lifetime_s=6.0,
            ),
        ),
    )


def _flash_crowd() -> ScenarioSpec:
    """A viral event: short-lived tenants arrive at ~7x baseline for a
    third of the crowd phase, then the fabric recovers."""
    return ScenarioSpec(
        name="flash-crowd",
        description="tenant flash crowd: 7x arrival spike of short-lived chains",
        seed=1103,
        topology=CAMPAIGN_TOPOLOGY,
        workload=CAMPAIGN_WORKLOAD,
        phases=(
            PhaseSpec(
                name="baseline",
                duration_s=30.0,
                load=LoadCurve(kind="constant", rate_per_s=4.0),
                mean_lifetime_s=10.0,
            ),
            PhaseSpec(
                name="crowd",
                duration_s=20.0,
                load=LoadCurve(
                    kind="spike",
                    rate_per_s=4.0,
                    peak_per_s=30.0,
                    spike_start_frac=0.3,
                    spike_width_frac=0.3,
                ),
                mean_lifetime_s=2.0,
            ),
            PhaseSpec(
                name="recovery",
                duration_s=30.0,
                load=LoadCurve(kind="constant", rate_per_s=4.0),
                mean_lifetime_s=10.0,
                modify_fraction=0.1,
            ),
        ),
    )


def _correlated_failure() -> ScenarioSpec:
    """The fault-at-peak drill: two of four switches drained back-to-back
    while load is highest, undrained during recovery."""
    return ScenarioSpec(
        name="correlated-failure",
        description="two switches drained back-to-back at peak load",
        seed=1104,
        topology=CAMPAIGN_TOPOLOGY,
        workload=CAMPAIGN_WORKLOAD,
        phases=(
            PhaseSpec(
                name="rampup",
                duration_s=25.0,
                load=LoadCurve(kind="ramp", rate_per_s=3.0, peak_per_s=10.0),
                mean_lifetime_s=12.0,
            ),
            PhaseSpec(
                name="peak-failure",
                duration_s=30.0,
                load=LoadCurve(kind="constant", rate_per_s=10.0),
                mean_lifetime_s=10.0,
                modify_fraction=0.15,
                faults=(
                    FaultAction(at_s=10.0, kind="drain", switch="sw1"),
                    FaultAction(at_s=12.0, kind="drain", switch="sw2"),
                ),
            ),
            PhaseSpec(
                name="recovery",
                duration_s=25.0,
                load=LoadCurve(kind="constant", rate_per_s=6.0),
                mean_lifetime_s=8.0,
                faults=(
                    FaultAction(at_s=5.0, kind="undrain", switch="sw1"),
                    FaultAction(at_s=8.0, kind="undrain", switch="sw2"),
                ),
            ),
        ),
    )


def _rolling_upgrade() -> ScenarioSpec:
    """A serial fleet upgrade: every switch drained at the start of its
    own phase and returned near the end, under steady background churn."""
    upgrade_phases = tuple(
        PhaseSpec(
            name=f"upgrade-sw{i}",
            duration_s=20.0,
            load=LoadCurve(kind="constant", rate_per_s=5.0),
            mean_lifetime_s=10.0,
            modify_fraction=0.1,
            faults=(
                FaultAction(at_s=2.0, kind="drain", switch=f"sw{i}"),
                FaultAction(at_s=18.0, kind="undrain", switch=f"sw{i}"),
            ),
        )
        for i in range(4)
    )
    return ScenarioSpec(
        name="rolling-upgrade",
        description="serial drain/undrain of every switch under churn",
        seed=1105,
        topology=CAMPAIGN_TOPOLOGY,
        workload=CAMPAIGN_WORKLOAD,
        phases=upgrade_phases
        + (
            PhaseSpec(
                name="settle",
                duration_s=15.0,
                load=LoadCurve(kind="constant", rate_per_s=4.0),
                mean_lifetime_s=8.0,
            ),
        ),
    )


def _noisy_neighbor() -> ScenarioSpec:
    """A rule-churn storm: heavy-rule chains arriving faster and
    re-negotiating almost every lifetime, squeezing everyone's SRAM."""
    heavy = replace(CAMPAIGN_WORKLOAD, rules_min=2, rules_max=8)
    return ScenarioSpec(
        name="noisy-neighbor",
        description="rule-churn storm of heavy-rule chains (90% modify mix)",
        seed=1106,
        topology=CAMPAIGN_TOPOLOGY,
        workload=heavy,
        phases=(
            PhaseSpec(
                name="quiet",
                duration_s=25.0,
                load=LoadCurve(kind="constant", rate_per_s=4.0),
                mean_lifetime_s=10.0,
                modify_fraction=0.1,
            ),
            PhaseSpec(
                name="storm",
                duration_s=30.0,
                load=LoadCurve(kind="constant", rate_per_s=8.0),
                mean_lifetime_s=6.0,
                modify_fraction=0.9,
            ),
            PhaseSpec(
                name="calm",
                duration_s=25.0,
                load=LoadCurve(kind="constant", rate_per_s=4.0),
                mean_lifetime_s=10.0,
                modify_fraction=0.1,
            ),
        ),
    )


def _burst_modify() -> ScenarioSpec:
    """Synchronized modify storms: at three scheduled instants, half of
    all live tenants re-negotiate their chains at once."""
    return ScenarioSpec(
        name="burst-modify",
        description="half the live tenants modify at three scheduled instants",
        seed=1107,
        topology=CAMPAIGN_TOPOLOGY,
        workload=CAMPAIGN_WORKLOAD,
        phases=(
            PhaseSpec(
                name="fill",
                duration_s=20.0,
                load=LoadCurve(kind="constant", rate_per_s=5.0),
                mean_lifetime_s=15.0,
            ),
            PhaseSpec(
                name="storms",
                duration_s=40.0,
                load=LoadCurve(kind="constant", rate_per_s=5.0),
                mean_lifetime_s=12.0,
                bursts=(
                    ModifyBurst(at_s=10.0, fraction=0.5),
                    ModifyBurst(at_s=20.0, fraction=0.5),
                    ModifyBurst(at_s=30.0, fraction=0.5),
                ),
            ),
            PhaseSpec(
                name="settle",
                duration_s=20.0,
                load=LoadCurve(kind="constant", rate_per_s=3.0),
                mean_lifetime_s=8.0,
            ),
        ),
    )


def _defrag_cadence() -> ScenarioSpec:
    """The fragmentation drill: heavy-rule, heavy-bandwidth tenants fill
    the fleet past comfort, a short-lived exodus leaves holes everywhere,
    then refill churn runs with scheduled fabric-wide ``reoptimize``
    passes consolidating the survivors between waves."""
    heavy = replace(
        CAMPAIGN_WORKLOAD,
        rules_min=2,
        rules_max=8,
        mean_bandwidth_gbps=2.0,
        max_bandwidth_gbps=6.0,
    )
    return ScenarioSpec(
        name="defrag-cadence",
        description="fragmenting churn with periodic global re-optimization",
        seed=1108,
        topology=CAMPAIGN_TOPOLOGY,
        workload=heavy,
        phases=(
            PhaseSpec(
                name="pressure",
                duration_s=25.0,
                load=LoadCurve(kind="constant", rate_per_s=12.0),
                mean_lifetime_s=18.0,
                modify_fraction=0.2,
            ),
            PhaseSpec(
                name="exodus",
                duration_s=20.0,
                load=LoadCurve(kind="constant", rate_per_s=2.0),
                mean_lifetime_s=4.0,
                faults=(FaultAction(at_s=10.0, kind="reoptimize"),),
            ),
            PhaseSpec(
                name="refill",
                duration_s=30.0,
                load=LoadCurve(kind="constant", rate_per_s=8.0),
                mean_lifetime_s=10.0,
                modify_fraction=0.15,
                faults=(
                    FaultAction(at_s=10.0, kind="reoptimize"),
                    FaultAction(at_s=20.0, kind="reoptimize"),
                ),
            ),
            PhaseSpec(
                name="settle",
                duration_s=15.0,
                load=LoadCurve(kind="constant", rate_per_s=3.0),
                mean_lifetime_s=6.0,
                faults=(FaultAction(at_s=8.0, kind="reoptimize"),),
            ),
        ),
    )


#: Name -> zero-argument factory for every library campaign.
CAMPAIGNS = {
    "steady-state": _steady_state,
    "diurnal": _diurnal,
    "flash-crowd": _flash_crowd,
    "correlated-failure": _correlated_failure,
    "rolling-upgrade": _rolling_upgrade,
    "noisy-neighbor": _noisy_neighbor,
    "burst-modify": _burst_modify,
    "defrag-cadence": _defrag_cadence,
}


def campaign_names() -> list[str]:
    """All library campaign names, sorted."""
    return sorted(CAMPAIGNS)


def get_campaign(name: str) -> ScenarioSpec:
    """The library campaign called ``name`` (a fresh spec each call)."""
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown campaign {name!r}; choices: {campaign_names()}"
        ) from None
    spec = factory()
    if spec.name != name:
        raise ScenarioError(
            f"campaign registry mismatch: {name!r} built spec {spec.name!r}"
        )
    return spec
