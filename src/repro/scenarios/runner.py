"""Campaign replay against the real fabric, phase by phase.

:class:`ScenarioRunner` drives a :class:`~repro.fabric.orchestrator.
FabricOrchestrator` with a compiled campaign stream: lifecycle events go
through the normal :class:`~repro.fabric.engine.FabricChurnEngine` dispatch
(admit / evict / modify), ``drain``/``undrain`` events call the fabric's
failover API, ``reoptimize`` events run a fabric-wide global
re-optimization pass (hitless migration included), and every ``phase``
marker closes the previous phase with a
**bit-identity audit** — :meth:`FabricOrchestrator.check_invariant` plus
the fabric digest — so each campaign asserts the paper-critical invariant
at every phase boundary, not just at the end.

Reports keep the PR-3 convention: a phase (or a whole campaign) with zero
successful admits reports explicit ``None`` latency percentiles, never NaN.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.controller.events import ChurnReport
from repro.errors import ScenarioError
from repro.fabric.engine import FabricChurnEngine
from repro.fabric.orchestrator import FabricOrchestrator
from repro.fabric.partitioner import make_partitioner
from repro.scenarios.compile import (
    CompiledCampaign,
    compile_scenario,
)
from repro.scenarios.dsl import ScenarioSpec


def build_fabric(
    spec: ScenarioSpec,
    with_dataplane: bool = False,
    partitioner: str | None = None,
    **kwargs,
) -> FabricOrchestrator:
    """The fabric a campaign describes: topology built from the spec,
    catalog sized to the spec's workload, partitioner from the spec (or
    the ``partitioner`` override).  Control-plane only by default —
    campaigns measure placement behaviour, and the behavioural data plane
    costs ~10x wall time; pass ``with_dataplane=True`` to mirror installs.
    Extra keyword arguments go to :class:`FabricOrchestrator`."""
    return FabricOrchestrator(
        spec.topology.build(),
        num_types=spec.workload.num_types,
        partitioner=make_partitioner(partitioner or spec.partitioner),
        with_dataplane=with_dataplane,
        **kwargs,
    )


@dataclass
class PhaseReport:
    """One phase's outcome: the lifecycle replay report, administrative
    action counts, and the phase-boundary audit (invariant problems +
    fabric digest at the boundary)."""

    name: str
    start_s: float
    end_s: float
    churn: ChurnReport = field(default_factory=ChurnReport)
    drains: int = 0
    undrains: int = 0
    reoptimizes: int = 0
    #: Migration moves executed by this phase's reoptimize passes.
    reopt_moves: int = 0
    invariant_problems: list[str] = field(default_factory=list)
    digest: str = ""
    #: Phase-boundary traffic probe (0 packets when the runner has traffic
    #: disabled or the fabric runs control-plane only).
    traffic_packets: int = 0
    traffic_delivered: int = 0
    traffic_pps: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the fabric invariant held at this phase's boundary."""
        return not self.invariant_problems

    def summary(self) -> dict:
        """The phase's flat numbers: the churn summary (``None`` — not
        NaN — percentiles on zero admits) plus admin counts and the
        boundary audit result."""
        out = dict(self.churn.summary())
        out["drains"] = float(self.drains)
        out["undrains"] = float(self.undrains)
        out["reoptimizes"] = float(self.reoptimizes)
        out["reopt_moves"] = float(self.reopt_moves)
        out["invariant_ok"] = self.ok
        if self.traffic_packets:
            out["traffic_packets"] = float(self.traffic_packets)
            out["traffic_delivered"] = float(self.traffic_delivered)
            out["traffic_pps"] = self.traffic_pps
        return out

    def describe(self) -> str:
        """One human-readable line (the CLI's per-phase output)."""
        s = self.summary()
        if s["admit_p50_ms"] is None:
            latency = "admit latency n/a (no successful admits)"
        else:
            latency = (
                f"admit p50={s['admit_p50_ms']:.3f}ms "
                f"p99={s['admit_p99_ms']:.3f}ms"
            )
        admin = ""
        if self.drains or self.undrains:
            admin = f"; {self.drains} drains, {self.undrains} undrains"
        if self.reoptimizes:
            admin += (
                f"; {self.reoptimizes} reoptimizes "
                f"({self.reopt_moves} moves)"
            )
        traffic = ""
        if self.traffic_packets:
            traffic = (
                f"; traffic {self.traffic_delivered}/{self.traffic_packets} "
                f"delivered @ {self.traffic_pps:,.0f} pps"
            )
        return (
            f"[{self.name}] {int(s['events'])} events: "
            f"{int(s['admitted'])} admitted, {int(s['modified'])} modified, "
            f"{int(s['evicted'])} evicted, {int(s['rejected'])} rejected; "
            f"{latency}{admin}{traffic}; "
            f"invariant {'OK' if self.ok else self.invariant_problems}"
        )


@dataclass
class CampaignReport:
    """A whole campaign's outcome: per-phase reports plus the merged
    campaign-wide churn view and the final fabric digest."""

    scenario: str
    seed: int
    trace_digest: str
    phases: list[PhaseReport] = field(default_factory=list)
    wall_seconds: float = 0.0
    final_digest: str = ""

    @property
    def ok(self) -> bool:
        """Whether the fabric invariant held at every phase boundary."""
        return all(phase.ok for phase in self.phases)

    @property
    def overall(self) -> ChurnReport:
        """All phases' lifecycle results merged into one report."""
        return ChurnReport.merged(phase.churn for phase in self.phases)

    def summary(self) -> dict:
        """Campaign-wide flat numbers plus one summary dict per phase."""
        merged = self.overall
        out = dict(merged.summary())
        out["events_per_sec"] = (
            merged.num_events / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )
        out["drains"] = float(sum(p.drains for p in self.phases))
        out["undrains"] = float(sum(p.undrains for p in self.phases))
        out["reoptimizes"] = float(sum(p.reoptimizes for p in self.phases))
        out["reopt_moves"] = float(sum(p.reopt_moves for p in self.phases))
        out["invariant_ok"] = self.ok
        out["phases"] = [
            {"name": p.name, **p.summary()} for p in self.phases
        ]
        return out

    def describe(self) -> str:
        """Multi-line human-readable campaign summary."""
        lines = [
            f"campaign {self.scenario!r} (seed {self.seed}, "
            f"trace {self.trace_digest}):"
        ]
        lines.extend(f"  {phase.describe()}" for phase in self.phases)
        s = self.overall.summary()
        lines.append(
            f"  total: {int(s['events'])} events in {self.wall_seconds:.2f}s, "
            f"{int(s['admitted'])} admitted, {int(s['rejected'])} rejected; "
            f"invariant {'OK' if self.ok else 'VIOLATED'}"
        )
        return "\n".join(lines)


class ScenarioRunner:
    """Replays a compiled campaign against one fabric orchestrator."""

    def __init__(
        self,
        fabric: FabricOrchestrator,
        check_invariants: bool = True,
        traffic_packets: int = 0,
        traffic_seed: int = 0,
    ) -> None:
        self.fabric = fabric
        self.engine = FabricChurnEngine(fabric)
        #: Audit the fabric at every phase boundary (the acceptance mode).
        #: Switching it off skips the O(state) recompute for pure
        #: throughput measurements; digests are still recorded.
        self.check_invariants = check_invariants
        #: Per-tenant packets injected at every phase boundary (0 = off).
        #: Needs a fabric with the data plane; with fast-path engines
        #: attached this is what drives campaign traffic through the
        #: compiled kernels end to end.
        self.traffic_packets = traffic_packets
        self.traffic_seed = traffic_seed

    def _run_traffic(self, phase: PhaseReport) -> None:
        """Inject ``traffic_packets`` packets per live tenant through each
        tenant's home shard pipeline (one batch per shard, so compiled
        kernels see real multi-tenant batches), in deterministic order."""
        if self.traffic_packets <= 0 or not self.fabric.with_dataplane:
            return
        from repro.traffic.flows import FlowGenerator

        by_switch: dict[str, list[int]] = {}
        for tenant_id in sorted(self.fabric.tenants):
            record = self.fabric.tenants[tenant_id]
            by_switch.setdefault(record.segments[0].switch, []).append(tenant_id)
        sent = delivered = 0
        start = time.perf_counter()
        for switch in sorted(by_switch):
            shard = self.fabric.shards[switch]
            assert shard.pipeline is not None
            batch = []
            for tenant_id in by_switch[switch]:
                gen = FlowGenerator(self.traffic_seed + tenant_id)
                flows = gen.flows(4, tenant_id=tenant_id)
                batch.extend(
                    gen.packets(flows, self.traffic_packets, size_bytes=64)
                )
            results = shard.pipeline.process_batch(batch)
            sent += len(results)
            delivered += sum(r.delivered for r in results)
        elapsed = time.perf_counter() - start
        phase.traffic_packets = sent
        phase.traffic_delivered = delivered
        phase.traffic_pps = sent / elapsed if elapsed > 0 else 0.0
        self.fabric.metrics.inc("scenario.traffic_packets", sent)

    def _close_phase(self, phase: PhaseReport) -> None:
        self._run_traffic(phase)
        if self.check_invariants:
            phase.invariant_problems = self.fabric.check_invariant()
            if phase.invariant_problems:
                self.fabric.metrics.inc("scenario.invariant_violations")
        phase.digest = self.fabric.digest()

    def run(self, campaign: CompiledCampaign) -> CampaignReport:
        """Apply every event in order; returns the campaign report with
        one :class:`PhaseReport` per phase marker encountered."""
        report = CampaignReport(
            scenario=campaign.spec.name,
            seed=campaign.seed,
            trace_digest=campaign.digest(),
        )
        bounds = {
            name: (start, end)
            for name, start, end in campaign.spec.phase_bounds()
        }
        current: PhaseReport | None = None
        start_wall = time.perf_counter()
        for event in campaign.events:
            if event.kind == "phase":
                if current is not None:
                    self._close_phase(current)
                start, end = bounds.get(event.phase, (event.time_s, event.time_s))
                current = PhaseReport(name=event.phase, start_s=start, end_s=end)
                report.phases.append(current)
                self.fabric.metrics.inc("scenario.phases")
                continue
            if current is None:
                raise ScenarioError(
                    f"event at t={event.time_s} precedes the first phase marker"
                )
            if event.kind == "drain":
                assert event.switch is not None
                self.fabric.drain(event.switch)
                current.drains += 1
                self.fabric.metrics.inc("scenario.drains")
            elif event.kind == "undrain":
                assert event.switch is not None
                self.fabric.undrain(event.switch)
                current.undrains += 1
                self.fabric.metrics.inc("scenario.undrains")
            elif event.kind == "reoptimize":
                reopt = self.fabric.reoptimize(mode="greedy")
                current.reoptimizes += 1
                if reopt.migration is not None:
                    current.reopt_moves += reopt.migration.executed
                self.fabric.metrics.inc("scenario.reoptimizes")
            else:
                result = self.engine.apply(event.to_churn_event())
                current.churn.results.append((event, result))
        if current is not None:
            self._close_phase(current)
        report.wall_seconds = time.perf_counter() - start_wall
        for phase in report.phases:
            phase.churn.wall_seconds = report.wall_seconds * (
                phase.churn.num_events / max(1, sum(
                    p.churn.num_events for p in report.phases
                ))
            )
        report.final_digest = self.fabric.digest()
        return report


def run_campaign(
    spec: ScenarioSpec,
    seed: int | None = None,
    with_dataplane: bool = False,
    wal_dir: str | None = None,
    fsync: str = "batch",
    partitioner: str | None = None,
    check_invariants: bool = True,
    fastpath: bool = False,
    fastpath_backend: str = "auto",
    traffic_packets: int = 0,
) -> tuple[FabricOrchestrator, CampaignReport]:
    """Compile ``spec``, build its fabric (journaling to ``wal_dir`` when
    given) and replay the campaign; returns the live fabric and the
    report.

    ``fastpath=True`` attaches a compiled fast-path engine to every shard
    pipeline (implies the data plane); ``traffic_packets`` injects that
    many packets per live tenant at each phase boundary, which is what
    makes campaign phases exercise the compiled kernels end to end.
    """
    campaign = compile_scenario(spec, seed)
    fabric = build_fabric(
        spec,
        with_dataplane=with_dataplane or fastpath,
        partitioner=partitioner,
        fastpath=fastpath,
        fastpath_backend=fastpath_backend,
    )
    durability = None
    if wal_dir is not None:
        from repro.durability import FabricDurability

        durability = FabricDurability(wal_dir, fsync=fsync).attach(fabric)
    try:
        report = ScenarioRunner(
            fabric,
            check_invariants=check_invariants,
            traffic_packets=traffic_packets,
        ).run(campaign)
    finally:
        if durability is not None:
            durability.close()
    return fabric, report
