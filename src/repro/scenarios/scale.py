"""Capacity-planning scale mode: a slim columnar fabric for 10^5-10^6
tenants.

A full :class:`~repro.fabric.orchestrator.FabricOrchestrator` keeps rich
per-tenant state (SFC objects, per-shard directories, flight-recorder
entries, dataplane mirrors) — perfect for correctness work, far too heavy
for million-tenant capacity sweeps.  :class:`ScaleFabric` keeps only what
placement *decisions* need, in numpy columns:

* per switch: free blocks per stage (int), installed-physical-NF bitmap,
  committed backplane Gbps (float);
* per tenant: home-switch index, per-stage block charge, recirculation
  passes, bandwidth — ~30 bytes/tenant at S=4.

Its admit path replicates the greedy walk of
:func:`repro.core.greedy.try_place_chain` **operation for operation**
(same scan order, same lookahead bound, same physical-NF preference, same
``+1e-9`` backplane tolerance) under the accounting mode
``consolidate=False, reserve_physical_block=False`` — in that mode a
logical NF's block charge is exactly ``blocks_for_entries(rules)``
independent of co-located NFs, so per-stage *totals* suffice and per-(type,
stage) entry matrices can be dropped.  Routing is the registered
``modulo`` partitioner over the same lexicographically sorted switch
names the real topology uses.  The differential test in
``tests/scenarios/test_scale.py`` pins the decision-equivalence down
against a real fabric, admit by admit.

Lazy/aggregated accounting: the fabric never materializes per-tenant SFC
objects during a fill (:func:`synthesize_fill` draws the whole workload
into flat arrays), and :meth:`ScaleFabric.check` audits the aggregate
state — per-stage block totals recomputed exactly from live tenants,
backplane recomputed to float tolerance — the scale-mode analogue of the
fabric bit-identity invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import SFC, SwitchSpec
from repro.errors import ScenarioError
from repro.rng import make_rng
from repro.traffic.distributions import lognormal_bandwidth
from repro.traffic.workload import WorkloadConfig


@dataclass
class FillArrays:
    """A whole fill workload as flat arrays (no per-tenant objects):
    ``types``/``rules`` are ``(n, max_len)`` with row ``i`` valid up to
    ``lengths[i]``."""

    lengths: np.ndarray
    types: np.ndarray
    rules: np.ndarray
    bandwidths: np.ndarray

    @property
    def num_tenants(self) -> int:
        """Rows in the workload."""
        return len(self.lengths)

    def sfc(self, i: int) -> SFC:
        """Row ``i`` materialized as a real :class:`SFC` (differential
        tests replay the same workload through a real fabric)."""
        j = int(self.lengths[i])
        return SFC(
            name=f"tenant-{i}",
            tenant_id=i,
            nf_types=tuple(int(t) for t in self.types[i, :j]),
            rules=tuple(int(r) for r in self.rules[i, :j]),
            bandwidth_gbps=float(self.bandwidths[i]),
        )


def synthesize_fill(
    workload: WorkloadConfig,
    num_tenants: int,
    rng: int | np.random.Generator | None = None,
    grid_bandwidth: bool = False,
) -> FillArrays:
    """Draw ``num_tenants`` chains as flat arrays — the vectorized twin of
    :func:`~repro.traffic.workload.make_sfcs` (same recipe: uniform
    lengths, types sampled without replacement, uniform rules, long-tail
    bandwidth).  ``grid_bandwidth=True`` snaps demands to a 0.5 Gbps grid
    so every bandwidth sum is exact in floating point regardless of
    accumulation order — the mode differential tests use."""
    rng = make_rng(rng)
    lo = workload.avg_chain_length - workload.chain_length_spread
    hi = workload.avg_chain_length + workload.chain_length_spread
    lengths = rng.integers(lo, hi + 1, size=num_tenants).astype(np.int16)
    # Types without replacement, vectorized: each row's types are the
    # first `length` columns of a random permutation of the catalog.
    keys = rng.random((num_tenants, workload.num_types))
    types = (np.argsort(keys, axis=1)[:, :hi] + 1).astype(np.int16)
    rules = rng.integers(
        workload.rules_min, workload.rules_max + 1, size=(num_tenants, hi)
    ).astype(np.int32)
    if grid_bandwidth:
        bandwidths = 0.5 * rng.integers(1, 9, size=num_tenants).astype(np.float64)
    else:
        bandwidths = lognormal_bandwidth(
            rng,
            num_tenants,
            mean_gbps=workload.mean_bandwidth_gbps,
            sigma=workload.bandwidth_sigma,
            min_gbps=workload.min_bandwidth_gbps,
            max_gbps=workload.max_bandwidth_gbps,
        )
    return FillArrays(
        lengths=lengths, types=types, rules=rules, bandwidths=bandwidths
    )


class ScaleFabric:
    """A slim N-switch fabric holding per-tenant state in numpy columns.

    Mirrors a real fabric built as ``FabricOrchestrator(full-mesh-less
    topology, consolidate=False, reserve_physical_block=False,
    policy=AdmissionPolicy(check_memory=False, check_backplane=False),
    partitioner=ModuloPartitioner(), with_dataplane=False)`` decision for
    decision, without stitching (capacity planning treats the stitch path
    as spillover's last resort, not the common case)."""

    def __init__(
        self,
        num_switches: int,
        switch: SwitchSpec | None = None,
        max_recirculations: int = 1,
        num_types: int = 6,
        capacity_hint: int = 1024,
    ) -> None:
        if num_switches < 1:
            raise ScenarioError("a fabric needs at least one switch")
        self.switch = switch if switch is not None else SwitchSpec()
        self.num_types = num_types
        self.max_recirculations = max_recirculations
        #: Lexicographically sorted names — the same canonical order
        #: :attr:`FabricTopology.switch_names` yields ("sw10" < "sw2").
        self.switch_names: list[str] = sorted(
            f"sw{i}" for i in range(num_switches)
        )
        n = num_switches
        S = self.switch.stages
        self.S = S
        self.K = S * (max_recirculations + 1)
        self._epb = self.switch.entries_per_block
        self._capacity = self.switch.capacity_gbps
        #: Free SRAM blocks per (switch, stage).
        self.stage_free = np.full((n, S), self.switch.blocks_per_stage, np.int64)
        #: Installed physical NFs per (switch, type, stage).
        self.physical = np.zeros((n, num_types, S), bool)
        #: Committed backplane Gbps per switch.
        self.used_bw = np.zeros(n, np.float64)
        # Per-tenant columns, grown geometrically; switch -1 = not live.
        cap = max(16, capacity_hint)
        self._t_switch = np.full(cap, -1, np.int32)
        self._t_blocks = np.zeros((cap, S), np.uint16)
        self._t_passes = np.zeros(cap, np.uint8)
        self._t_bw = np.zeros(cap, np.float64)
        self.live_tenants = 0
        self.admitted = 0
        self.rejected = 0
        self.spillovers = 0

    # ------------------------------------------------------------------
    def _grow(self, tenant_id: int) -> None:
        cap = len(self._t_switch)
        if tenant_id < cap:
            return
        new = max(cap * 2, tenant_id + 1)
        for name, fill in (
            ("_t_switch", -1),
            ("_t_blocks", 0),
            ("_t_passes", 0),
            ("_t_bw", 0.0),
        ):
            old = getattr(self, name)
            shape = (new,) + old.shape[1:]
            grown = np.full(shape, fill, dtype=old.dtype)
            grown[:cap] = old
            setattr(self, name, grown)

    def _blocks_for(self, rules: int) -> int:
        return -(-int(rules) // self._epb)

    def _try_place(
        self, sw: int, types, rules, bandwidth: float
    ) -> tuple[list[int], int] | None:
        """The greedy walk of :func:`try_place_chain`, verbatim: nearest
        next stage with the physical NF installed first, nearest next
        installable stage second, suffix-lookahead bound, rollback on
        failure, Eq. 12 backplane check with the same 1e-9 tolerance."""
        S, K = self.S, self.K
        free = self.stage_free[sw]
        phys = self.physical[sw]
        J = len(types)
        chosen_ks: list[int] = []
        undo: list[tuple[int, int, int, bool]] = []
        prev_k = 0
        failed = False
        for j in range(J):
            i = int(types[j]) - 1
            need = self._blocks_for(int(rules[j]))
            last_usable = K - (J - 1 - j)
            chosen = None
            for k in range(prev_k + 1, last_usable + 1):
                s = (k - 1) % S
                if phys[i, s] and need <= free[s]:
                    chosen = k
                    break
            if chosen is None:
                for k in range(prev_k + 1, last_usable + 1):
                    s = (k - 1) % S
                    if not phys[i, s] and need <= free[s]:
                        chosen = k
                        break
            if chosen is None:
                failed = True
                break
            s = (chosen - 1) % S
            undo.append((s, need, i, bool(phys[i, s])))
            free[s] -= need
            phys[i, s] = True
            chosen_ks.append(chosen)
            prev_k = chosen
        passes = 0
        if not failed:
            passes = -(-chosen_ks[-1] // S)
            if (
                self.used_bw[sw] + passes * bandwidth
                > self._capacity + 1e-9
            ):
                failed = True
        if failed:
            for s, need, i, was in reversed(undo):
                free[s] += need
                phys[i, s] = was
            return None
        return chosen_ks, passes

    # ------------------------------------------------------------------
    def admit(
        self, tenant_id: int, types, rules, bandwidth_gbps: float
    ) -> tuple[bool, int, str | None]:
        """Admit one chain: modulo-preferred switch first, spillover in
        ring order.  Returns ``(ok, spillover_rank, reject_reason)``."""
        self._grow(tenant_id)
        if self._t_switch[tenant_id] >= 0:
            self.rejected += 1
            return False, 0, "duplicate-tenant"
        if len(types) > self.K:
            self.rejected += 1
            return False, 0, "chain-too-long"
        if max(int(t) for t in types) > self.num_types:
            self.rejected += 1
            return False, 0, "unknown-nf-type"
        n = len(self.switch_names)
        start = tenant_id % n
        for rank in range(n):
            sw = (start + rank) % n
            placed = self._try_place(sw, types, rules, bandwidth_gbps)
            if placed is None:
                continue
            chosen_ks, passes = placed
            self.used_bw[sw] += passes * bandwidth_gbps
            row_blocks = self._t_blocks[tenant_id]
            row_blocks[:] = 0
            for j, k in enumerate(chosen_ks):
                row_blocks[(k - 1) % self.S] += self._blocks_for(int(rules[j]))
            self._t_switch[tenant_id] = sw
            self._t_passes[tenant_id] = passes
            self._t_bw[tenant_id] = bandwidth_gbps
            self.live_tenants += 1
            self.admitted += 1
            if rank:
                self.spillovers += 1
            return True, rank, None
        self.rejected += 1
        return False, 0, "no-feasible-placement"

    def evict(self, tenant_id: int) -> bool:
        """Tenant departure: return its blocks and backplane share.  False
        for tenants that are not live."""
        if tenant_id >= len(self._t_switch) or self._t_switch[tenant_id] < 0:
            return False
        sw = int(self._t_switch[tenant_id])
        self.stage_free[sw] += self._t_blocks[tenant_id].astype(np.int64)
        self.used_bw[sw] -= int(self._t_passes[tenant_id]) * float(
            self._t_bw[tenant_id]
        )
        self._t_switch[tenant_id] = -1
        self._t_blocks[tenant_id] = 0
        self.live_tenants -= 1
        return True

    # ------------------------------------------------------------------
    def check(self) -> list[str]:
        """Aggregated invariant audit: per-stage free-block totals must
        equal an exact integer recomputation over live tenants, backplane
        loads a float recomputation (1e-6 Gbps tolerance), and the live
        counter the column scan.  Empty list = state is consistent."""
        problems: list[str] = []
        n = len(self.switch_names)
        live = self._t_switch >= 0
        expected_free = np.full(
            (n, self.S), self.switch.blocks_per_stage, np.int64
        )
        expected_bw = np.zeros(n, np.float64)
        for row in np.flatnonzero(live):
            sw = int(self._t_switch[row])
            expected_free[sw] -= self._t_blocks[row]
            expected_bw[sw] += int(self._t_passes[row]) * float(self._t_bw[row])
        if not np.array_equal(expected_free, self.stage_free):
            bad = np.argwhere(expected_free != self.stage_free)
            problems.append(
                f"stage free-block totals drifted at (switch, stage) "
                f"{bad[:4].tolist()}"
            )
        drift = np.abs(expected_bw - self.used_bw)
        if drift.max(initial=0.0) > 1e-6:
            problems.append(
                f"backplane drifted by up to {drift.max():.3g} Gbps"
            )
        if int(live.sum()) != self.live_tenants:
            problems.append(
                f"live counter {self.live_tenants} != column scan "
                f"{int(live.sum())}"
            )
        if (self.stage_free < 0).any():
            problems.append("negative free blocks")
        return problems

    def summary(self) -> dict:
        """Aggregate occupancy: live tenants, per-switch backplane and
        free-block totals, admission counters."""
        return {
            "switches": len(self.switch_names),
            "live_tenants": self.live_tenants,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "spillovers": self.spillovers,
            "backplane_gbps": [float(b) for b in self.used_bw],
            "free_blocks": self.stage_free.sum(axis=1).tolist(),
        }


@dataclass
class FillReport:
    """Outcome of one capacity fill: counters plus successful-admit
    latencies (seconds)."""

    switches: int
    offered: int
    admitted: int = 0
    rejected: int = 0
    spillovers: int = 0
    evicted: int = 0
    wall_seconds: float = 0.0
    latencies_s: np.ndarray = field(default_factory=lambda: np.zeros(0))
    check_problems: list[str] = field(default_factory=list)

    @property
    def admission_rate(self) -> float:
        """Admitted / offered (0.0 on an empty fill)."""
        return self.admitted / self.offered if self.offered else 0.0

    @property
    def spillover_rate(self) -> float:
        """Off-preferred-switch admits / offered (0.0 on an empty fill)."""
        return self.spillovers / self.offered if self.offered else 0.0

    def latency_percentile(self, q: float) -> float | None:
        """``q``-th percentile of successful-admit latency in seconds —
        explicit ``None`` when nothing was admitted (the PR-3 NaN-free
        convention)."""
        if len(self.latencies_s) == 0:
            return None
        return float(np.percentile(self.latencies_s, q))

    def summary(self) -> dict:
        """The flat numbers ``bench_scale.py`` serializes per fleet size."""
        p50 = self.latency_percentile(50)
        p99 = self.latency_percentile(99)
        return {
            "switches": self.switches,
            "offered_tenants": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "spillovers": self.spillovers,
            "admission_rate": self.admission_rate,
            "spillover_rate": self.spillover_rate,
            "admit_p50_us": None if p50 is None else p50 * 1e6,
            "admit_p99_us": None if p99 is None else p99 * 1e6,
            "tenants_per_sec": (
                self.offered / self.wall_seconds if self.wall_seconds > 0 else 0.0
            ),
            "wall_s": self.wall_seconds,
            "check_ok": not self.check_problems,
        }


def run_fill(
    fabric: ScaleFabric,
    workload: FillArrays,
    churn_fraction: float = 0.0,
    rng: int | np.random.Generator | None = None,
    check: bool = True,
) -> FillReport:
    """Offer every workload row to ``fabric`` in tenant-id order, timing
    each admit.  With ``churn_fraction`` > 0, each admitted tenant is
    followed with that probability by the eviction of a uniformly chosen
    earlier live tenant — steady-state churn rather than a pure fill.
    Ends with an aggregate :meth:`ScaleFabric.check` audit."""
    if not 0.0 <= churn_fraction <= 1.0:
        raise ScenarioError("churn_fraction must be in [0, 1]")
    rng = make_rng(rng)
    n = workload.num_tenants
    report = FillReport(switches=len(fabric.switch_names), offered=n)
    latencies = np.zeros(n, np.float64)
    n_lat = 0
    churn_coins = (
        rng.random(size=n) < churn_fraction if churn_fraction > 0 else None
    )
    live: list[int] = []
    perf = time.perf_counter
    start_wall = perf()
    for i in range(n):
        j = int(workload.lengths[i])
        types = workload.types[i, :j]
        rules = workload.rules[i, :j]
        t0 = perf()
        ok, rank, _reason = fabric.admit(
            i, types, rules, float(workload.bandwidths[i])
        )
        t1 = perf()
        if ok:
            latencies[n_lat] = t1 - t0
            n_lat += 1
            report.admitted += 1
            if rank:
                report.spillovers += 1
            live.append(i)
        else:
            report.rejected += 1
        if churn_coins is not None and ok and churn_coins[i] and live:
            victim = live.pop(int(rng.integers(0, len(live))))
            if fabric.evict(victim):
                report.evicted += 1
    report.wall_seconds = perf() - start_wall
    report.latencies_s = latencies[:n_lat]
    if check:
        report.check_problems = fabric.check()
    return report


__all__ = [
    "FillArrays",
    "FillReport",
    "ScaleFabric",
    "run_fill",
    "synthesize_fill",
]
